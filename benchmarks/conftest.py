"""Shared helpers for the figure/table regeneration benchmarks.

Every file here regenerates one experiment of the paper (see
DESIGN.md §4 for the index).  Conventions:

* each benchmark uses ``benchmark.pedantic(..., rounds=1)`` — a figure
  regeneration is a full parameter sweep, not a microbenchmark;
* the regenerated series text is written to ``benchmarks/results/`` so
  ``EXPERIMENTS.md`` claims can be re-checked after any run;
* assertions check the paper's *shape* (who wins, monotonicity),
  never absolute numbers.
"""

from __future__ import annotations

import os

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@pytest.fixture(scope="session")
def record_figure():
    """Writer: persist a regenerated figure's text under results/."""
    os.makedirs(RESULTS_DIR, exist_ok=True)

    def _write(name: str, text: str) -> None:
        path = os.path.join(RESULTS_DIR, f"{name}.txt")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(f"\n{text}\n[saved to {path}]")

    return _write
