"""Ablation — lower-bound composition (Section 4.1).

Runs PrunedDP++ with each bound individually and combined, on a
power-law graph (where the paper says tour bounds shine) asserting:
every configuration stays exact; the combined bound explores no more
states than any individual bound; and the tour bounds beat the
one-label bound on this topology.
"""

from __future__ import annotations

import pytest

from repro.bench.workloads import make_workload
from repro.core.algorithms import PrunedDPPlusPlusSolver

CONFIGS = {
    "one-label only": dict(use_one_label=True, use_tour1=False, use_tour2=False),
    "tour1 only": dict(use_one_label=False, use_tour1=True, use_tour2=False),
    "tour2 only": dict(use_one_label=False, use_tour1=False, use_tour2=True),
    "combined": dict(use_one_label=True, use_tour1=True, use_tour2=True),
}


def run_ablation():
    graph, queries = make_workload(
        "livejournal", scale="small", knum=5, kwf=8, num_queries=2, seed=31
    )
    rows = {}
    for name, flags in CONFIGS.items():
        weights, states = [], []
        for labels in queries:
            result = PrunedDPPlusPlusSolver(graph, labels, **flags).solve()
            assert result.optimal, name
            weights.append(result.weight)
            states.append(result.stats.states_popped)
        rows[name] = (weights, sum(states) / len(states))
    return rows


def test_ablation_bounds(benchmark, record_figure):
    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)

    lines = ["== ablation: lower bounds on power-law graph (states popped) =="]
    for name, (_, states) in rows.items():
        lines.append(f"{name:16s} {states:10.0f}")
    record_figure("ablation_bounds", "\n".join(lines))

    reference = rows["combined"][0]
    for name, (weights, _) in rows.items():
        assert weights == pytest.approx(reference), name

    combined = rows["combined"][1]
    for name in ("one-label only", "tour1 only", "tour2 only"):
        assert combined <= rows[name][1] * 1.05 + 5, name

    # Paper Fig 14 narrative: tour-based bounds dominate one-label on
    # power-law topology.
    assert rows["tour1 only"][1] <= rows["one-label only"][1] * 1.10 + 5
