"""Ablation — the conditional tree merging factor (Theorem 2, §3.2).

The paper proves 2/3 is the *optimal* (smallest safe) merge factor.
This ablation runs PrunedDP with the factor disabled, at 1.0, and at
the paper's 2/3, asserting (a) all variants stay exact — the theorem's
"without loss of optimality" — and (b) the 2/3 gate explores no more
states than the weaker gates, i.e. the pruning actually helps.
"""

from __future__ import annotations

import pytest

from repro.bench.workloads import make_workload
from repro.core.algorithms import PrunedDPSolver


class PrunedDPNoMergeGate(PrunedDPSolver):
    algorithm_name = "PrunedDP[no-merge-gate]"
    merge_factor = None


class PrunedDPFullMergeGate(PrunedDPSolver):
    algorithm_name = "PrunedDP[factor=1.0]"
    merge_factor = 1.0


class PrunedDPNoHalfPrune(PrunedDPSolver):
    algorithm_name = "PrunedDP[no-half-prune]"
    prune_half = False
    complement_shortcut = False
    merge_factor = None


VARIANTS = [
    PrunedDPNoHalfPrune,
    PrunedDPNoMergeGate,
    PrunedDPFullMergeGate,
    PrunedDPSolver,  # the paper's configuration
]


def run_ablation():
    graph, queries = make_workload(
        "dblp", scale="small", knum=5, kwf=8, num_queries=2, seed=23
    )
    rows = {}
    for variant in VARIANTS:
        weights, states = [], []
        for labels in queries:
            result = variant(graph, labels).solve()
            assert result.optimal
            weights.append(result.weight)
            states.append(result.stats.states_popped)
        rows[variant.algorithm_name] = (weights, sum(states) / len(states))
    return rows


def test_ablation_merge_factor(benchmark, record_figure):
    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)

    lines = ["== ablation: Theorem 1/2 pruning knobs (states popped) =="]
    for name, (_, states) in rows.items():
        lines.append(f"{name:28s} {states:10.0f}")
    record_figure("ablation_merge_factor", "\n".join(lines))

    # (a) every variant returns identical optimal weights.
    reference = rows["PrunedDP"][0]
    for name, (weights, _) in rows.items():
        assert weights == pytest.approx(reference), name

    # (b) tighter gates explore no more states.
    assert rows["PrunedDP"][1] <= rows["PrunedDP[factor=1.0]"][1] + 1e-9
    assert (
        rows["PrunedDP[factor=1.0]"][1]
        <= rows["PrunedDP[no-half-prune]"][1] + 1e-9
    )
    # The full PrunedDP configuration beats the unpruned variant clearly.
    assert rows["PrunedDP"][1] < rows["PrunedDP[no-half-prune]"][1]
