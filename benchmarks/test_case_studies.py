"""Figures 11/12 and 17/18 — case studies: exact vs BANKS-II answers.

The paper compares the *answers* qualitatively: the exact GST found by
PrunedDP++ is more compact (fewer edges / nodes) and never heavier than
the BANKS-II answer.  We regenerate both answer trees on the keyword
search application (DBLP-style bibliography) and on the team-formation
application (IMDB-style collaboration flavour) and assert compactness.
"""

from __future__ import annotations

from repro.baselines import Banks2Solver
from repro.bench.workloads import make_workload
from repro.core import PrunedDPPlusPlusSolver


def run_case(dataset: str, knum: int, seed: int):
    graph, queries = make_workload(
        dataset, scale="small", knum=knum, kwf=8, num_queries=1, seed=seed
    )
    labels = list(queries)[0]
    exact = PrunedDPPlusPlusSolver(graph, labels).solve()
    banks = Banks2Solver(graph, labels).solve()
    return graph, labels, exact, banks


def test_case_study_dblp(benchmark, record_figure):
    graph, labels, exact, banks = benchmark.pedantic(
        run_case, args=("dblp", 5, 11), rounds=1, iterations=1
    )
    text = (
        f"== case study DBLP (query={list(labels)}) ==\n"
        f"-- PrunedDP++ (exact, weight={exact.weight:g}, "
        f"{len(exact.tree.nodes)} nodes) --\n"
        f"{exact.tree.render(graph)}\n\n"
        f"-- BANKS-II (weight={banks.weight:g}, "
        f"{len(banks.tree.nodes)} nodes) --\n"
        f"{banks.tree.render(graph)}"
    )
    record_figure("fig11_12_case_dblp", text)

    exact.tree.validate(graph, labels)
    banks.tree.validate(graph, labels)
    assert exact.optimal
    assert exact.weight <= banks.weight + 1e-9
    # Compactness: the exact answer never needs more edges.
    assert exact.tree.num_edges <= banks.tree.num_edges


def test_case_study_imdb(benchmark, record_figure):
    graph, labels, exact, banks = benchmark.pedantic(
        run_case, args=("imdb", 5, 17), rounds=1, iterations=1
    )
    text = (
        f"== case study IMDB (query={list(labels)}) ==\n"
        f"-- PrunedDP++ (exact, weight={exact.weight:g}, "
        f"{len(exact.tree.nodes)} nodes) --\n"
        f"{exact.tree.render(graph)}\n\n"
        f"-- BANKS-II (weight={banks.weight:g}, "
        f"{len(banks.tree.nodes)} nodes) --\n"
        f"{banks.tree.render(graph)}"
    )
    record_figure("fig17_18_case_imdb", text)

    exact.tree.validate(graph, labels)
    banks.tree.validate(graph, labels)
    assert exact.optimal
    assert exact.weight <= banks.weight + 1e-9
