"""Chaos benchmark — crash recovery overhead and bounded work loss.

The durability claim quantified: ``kill -9`` of a process worker
mid-search loses at most one checkpoint interval of work.  A batch of
progressive queries runs three ways over the same shared index —

* **inline** (thread isolation, no checkpointing): the baseline cost;
* **process + checkpoints**: the same batch through
  :class:`~repro.service.durability.ProcessWorkerPool` with a
  checkpoint cadence, measuring the durability tax;
* **process + chaos**: one worker is SIGKILLed after its second
  checkpoint; the batch must still complete with every answer equal to
  the baseline, and the killed query's *redone* work (resumed pops
  minus baseline pops) must stay under one checkpoint interval plus
  the engine's limit-check granularity.

Run directly (``python benchmarks/test_chaos_recovery.py``) or via
pytest.  Not part of tier-1: lives in benchmarks/, collected only when
this directory is targeted explicitly.
"""

from __future__ import annotations

import random
import time

from repro.core.engine import _LIMIT_CHECK_INTERVAL
from repro.graph import generators
from repro.service import GraphIndex, ProcessWorkerPool, WorkerPolicy

ALGORITHM = "pruneddp++"
CHECKPOINT_EVERY = 100
NUM_QUERIES = 6


def build_workload():
    """A graph whose 5-label queries pop 1000+ states each."""
    graph = generators.random_graph(
        400, 1200, num_query_labels=8, label_frequency=8, seed=7
    )
    rng = random.Random(23)
    pool = [f"q{i}" for i in range(8)]
    queries = [tuple(rng.sample(pool, 5)) for _ in range(NUM_QUERIES)]
    return graph, queries


def run_chaos_comparison():
    graph, queries = build_workload()
    index = GraphIndex(graph)

    # Baseline: inline, no durability machinery.
    started = time.perf_counter()
    baseline = [
        index.execute(labels, algorithm=ALGORITHM) for labels in queries
    ]
    inline_seconds = time.perf_counter() - started
    assert all(o.ok for o in baseline)
    weights = [o.result.weight for o in baseline]
    pops = [o.result.stats.states_popped for o in baseline]

    def run_pool(tmp_dir, policy):
        pool = ProcessWorkerPool(index, checkpoint_dir=tmp_dir, policy=policy)
        try:
            started = time.perf_counter()
            outcomes = [
                pool.execute(labels, algorithm=ALGORITHM)
                for labels in queries
            ]
            return outcomes, time.perf_counter() - started
        finally:
            pool.shutdown()

    import tempfile

    with tempfile.TemporaryDirectory() as tmp:
        durable, durable_seconds = run_pool(
            tmp,
            WorkerPolicy(
                checkpoint_every_pops=CHECKPOINT_EVERY,
                checkpoint_every_seconds=None,
            ),
        )
    with tempfile.TemporaryDirectory() as tmp:
        chaos, chaos_seconds = run_pool(
            tmp,
            WorkerPolicy(
                checkpoint_every_pops=CHECKPOINT_EVERY,
                checkpoint_every_seconds=None,
                chaos_kill_after_checkpoints=2,
            ),
        )

    # Correctness under chaos: every query answered, every weight equal
    # to the uninterrupted baseline, exactly one worker killed.
    assert all(o.ok for o in durable)
    assert all(o.ok for o in chaos)
    for got, want in zip(durable, weights):
        assert abs(got.result.weight - want) < 1e-9
    for got, want in zip(chaos, weights):
        assert abs(got.result.weight - want) < 1e-9
    restarts = sum(o.trace.worker_restarts for o in chaos)
    assert restarts >= 1, "the chaos hook must have killed one worker"

    # Bounded work loss: the killed query's cumulative pops exceed its
    # baseline by at most one checkpoint interval plus the limit-check
    # granularity (the engine only reaches its consistent point every
    # _LIMIT_CHECK_INTERVAL pops).
    max_redone = 0
    for got, base_pops in zip(chaos, pops):
        if got.trace.worker_restarts:
            redone = got.result.stats.states_popped - base_pops
            max_redone = max(max_redone, redone)
            assert redone <= CHECKPOINT_EVERY + _LIMIT_CHECK_INTERVAL, (
                f"lost {redone} pops — more than one checkpoint interval"
            )

    checkpoints = sum(o.trace.checkpoints for o in durable)
    lines = [
        "chaos recovery: %d queries, %s" % (NUM_QUERIES, ALGORITHM),
        "  inline (threads, no durability) : %6.3f s" % inline_seconds,
        "  process + checkpoints every %3d : %6.3f s  (%d checkpoints)"
        % (CHECKPOINT_EVERY, durable_seconds, checkpoints),
        "  process + kill -9 mid-search    : %6.3f s  (%d restarts, "
        "max %d pops redone)" % (chaos_seconds, restarts, max_redone),
    ]
    return "\n".join(lines)


def test_chaos_recovery_bounded_loss(record_figure):
    text = run_chaos_comparison()
    record_figure("chaos_recovery", text)


if __name__ == "__main__":
    print(run_chaos_comparison())
