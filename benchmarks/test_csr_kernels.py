"""CSR snapshot speedup gates — the flat-kernel refactor's claim.

Two measurements on the DBLP-like generator family (integer weights,
so the snapshot's Dial bucket-queue fast lane is active), each gated
at **>= 1.3x**:

1. *Per-label preprocessing*: the Section 3.1 sweep — one multi-source
   Dijkstra per query label — on the frozen CSR snapshot versus the
   legacy adjacency-list kernel.
2. *End-to-end PrunedDP++*: full solves on a frozen graph (CSR engine
   loop: packed state keys, snapshot adjacency, memoized feasible
   construction) versus the identical graph left unfrozen (legacy
   loop).  The freeze itself is counted against the CSR side, as a
   one-off amortized over the query batch — the service shape, where
   ``GraphIndex`` freezes once and serves many queries.

Both sides are best-of-``REPEATS`` to shave scheduler noise, and both
kernels' answers are asserted identical before any timing is trusted.
"""

from __future__ import annotations

import time

from repro.core.algorithms import PrunedDPPlusPlusSolver
from repro.graph import generators
from repro.graph.shortest_paths import (
    multi_source_dijkstra_csr,
    multi_source_dijkstra_legacy,
)

MIN_SPEEDUP = 1.3
REPEATS = 3
SOLVES_PER_REP = 3

GRAPH_KW = dict(
    num_papers=900,
    num_authors=600,
    num_query_labels=8,
    label_frequency=16,
    seed=7,
)
QUERY = [f"q{i}" for i in range(6)]


def _dblp_pair():
    """Two structurally identical graphs: one to freeze, one legacy."""
    legacy = generators.dblp_like(**GRAPH_KW)
    frozen = generators.dblp_like(**GRAPH_KW)
    return legacy, frozen


def _best_of(repeats, fn):
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def run_preprocessing_comparison():
    """Parity-checked per-label Dijkstra timings (legacy vs CSR/Dial)."""
    legacy_graph, frozen_graph = _dblp_pair()
    csr = frozen_graph.freeze()
    assert csr.integer_weights, "DBLP-like weights should take the Dial lane"
    groups = [
        list(legacy_graph.nodes_with_label(f"q{i}"))
        for i in range(GRAPH_KW["num_query_labels"])
    ]
    groups = [g for g in groups if g]

    # Parity before speed: identical distance tables per label.
    for members in groups:
        legacy_dist, _ = multi_source_dijkstra_legacy(legacy_graph, members)
        csr_dist, _ = multi_source_dijkstra_csr(csr, members)
        assert legacy_dist == csr_dist

    legacy_time = _best_of(
        REPEATS,
        lambda: [
            multi_source_dijkstra_legacy(legacy_graph, members)
            for members in groups
        ],
    )
    csr_time = _best_of(
        REPEATS,
        lambda: [multi_source_dijkstra_csr(csr, members) for members in groups],
    )
    return {
        "legacy_seconds": legacy_time,
        "csr_seconds": csr_time,
        "speedup": legacy_time / csr_time,
    }


def test_per_label_preprocessing_speedup(record_figure):
    rows = run_preprocessing_comparison()
    legacy_time, csr_time = rows["legacy_seconds"], rows["csr_seconds"]
    speedup = rows["speedup"]
    record_figure(
        "csr_kernels_preprocessing",
        "per-label preprocessing (one multi-source Dijkstra per label)\n"
        f"legacy: {legacy_time * 1e3:.1f} ms   csr/dial: {csr_time * 1e3:.1f} ms\n"
        f"speedup: {speedup:.2f}x (gate: >= {MIN_SPEEDUP}x)",
    )
    assert speedup >= MIN_SPEEDUP, (
        f"CSR per-label preprocessing only {speedup:.2f}x over legacy "
        f"(gate {MIN_SPEEDUP}x)"
    )


def run_end_to_end_comparison():
    """Parity-checked full pruneddp++ solve timings (legacy vs CSR)."""
    legacy_graph, frozen_graph = _dblp_pair()

    def solve(graph):
        return PrunedDPPlusPlusSolver(graph, QUERY).solve()

    # Parity before speed: both kernels prove the same optimum.
    reference = solve(legacy_graph)
    assert reference.optimal

    def csr_batch():
        # Freeze inside the timed region: the one-off snapshot build is
        # charged to the CSR side and amortized over the batch.
        frozen_graph.freeze()
        for _ in range(SOLVES_PER_REP):
            result = solve(frozen_graph)
            assert result.optimal and result.weight == reference.weight

    def legacy_batch():
        for _ in range(SOLVES_PER_REP):
            result = solve(legacy_graph)
            assert result.optimal and result.weight == reference.weight

    legacy_time = _best_of(REPEATS, legacy_batch)
    csr_time = _best_of(REPEATS, csr_batch)
    return {
        "legacy_seconds": legacy_time,
        "csr_seconds": csr_time,
        "speedup": legacy_time / csr_time,
    }


def test_end_to_end_pruneddp_speedup(record_figure):
    rows = run_end_to_end_comparison()
    legacy_time, csr_time = rows["legacy_seconds"], rows["csr_seconds"]
    speedup = rows["speedup"]
    record_figure(
        "csr_kernels_end_to_end",
        f"end-to-end pruneddp++ ({SOLVES_PER_REP} solves/rep, "
        "freeze amortized)\n"
        f"legacy: {legacy_time * 1e3:.1f} ms   csr: {csr_time * 1e3:.1f} ms\n"
        f"speedup: {speedup:.2f}x (gate: >= {MIN_SPEEDUP}x)",
    )
    assert speedup >= MIN_SPEEDUP, (
        f"CSR end-to-end pruneddp++ only {speedup:.2f}x over legacy "
        f"(gate {MIN_SPEEDUP}x)"
    )
