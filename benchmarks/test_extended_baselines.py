"""Extended baseline comparison (beyond the paper's Table 2/3).

Positions every algorithm in the package on one workload:
the five exact solvers plus the three heuristics, reporting answer
quality (ratio to the optimum) against explored work.  Asserts the
expected Pareto structure:

* all exact solvers return the same weight; the heuristics never beat it;
* heuristic cost ordering: DistanceNetwork (one scan) < BANKS variants;
* exact-solver work ordering: PrunedDP++ <= PrunedDP+ <= PrunedDP <= Basic.
"""

from __future__ import annotations

import pytest

from repro.bench import figures


def regenerate():
    fig = figures.table_all_algorithms(
        "dblp", scale="small", knum=5, kwf=8, num_queries=2, seed=42
    )
    return fig


def test_extended_baseline_comparison(benchmark, record_figure):
    fig = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    suite = fig.suites[("all",)]
    optimum = suite.mean_weight("DPBF")
    record_figure("extended_baselines", fig.text)

    # Exact solvers agree.
    for algorithm in ("Basic", "PrunedDP", "PrunedDP+", "PrunedDP++"):
        assert suite.mean_weight(algorithm) == pytest.approx(optimum)
        assert suite.all_optimal(algorithm)
    # Heuristics are feasible but never better than the optimum.
    for algorithm in ("BANKS-I", "BANKS-II", "BLINKS", "DistanceNetwork"):
        assert suite.mean_weight(algorithm) >= optimum - 1e-9
        assert not suite.all_optimal(algorithm)
    # Work orderings.
    assert suite.mean_states("PrunedDP++") <= suite.mean_states("PrunedDP+")
    assert suite.mean_states("PrunedDP+") <= suite.mean_states("PrunedDP")
    assert suite.mean_states("PrunedDP") <= suite.mean_states("Basic")
    assert (
        suite.mean_total_seconds("DistanceNetwork")
        <= suite.mean_total_seconds("BANKS-II")
    )
