"""Figure 4 — query time vs approximation ratio, varying knum, DBLP.

Paper claim: the processing-time ordering at ratio 1 is
Basic > PrunedDP > PrunedDP+ > PrunedDP++, with PrunedDP++ more than
two orders of magnitude faster than Basic at knum=6+.  On the scaled
dataset we assert the ordering on popped-state counts (the robust,
machine-independent proxy the times are proportional to).
"""

from __future__ import annotations

from repro.bench import figures
from repro.bench.runner import RATIO_CHECKPOINTS

KNUMS = (4, 5)
NUM_QUERIES = 2


def regenerate():
    return figures.figure_time_vs_ratio_knum(
        "dblp", scale="small", knums=KNUMS, num_queries=NUM_QUERIES, seed=4
    )


def test_fig04_time_vs_ratio_knum_dblp(benchmark, record_figure):
    fig = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    record_figure("fig04_time_knum_dblp", fig.text)

    for knum in KNUMS:
        suite = fig.suites[(knum,)]
        # Exactness everywhere.
        for algorithm in suite.algorithms():
            assert suite.all_optimal(algorithm)
        # Paper's ordering on explored states.
        assert suite.mean_states("PrunedDP") <= suite.mean_states("Basic")
        assert suite.mean_states("PrunedDP+") <= suite.mean_states("PrunedDP")
        assert suite.mean_states("PrunedDP++") <= suite.mean_states("PrunedDP+")
        # The pruned algorithms are dramatically smaller, not marginally.
        assert suite.mean_states("PrunedDP++") < 0.5 * suite.mean_states("Basic")
        # Time-to-ratio curves are monotone along the checkpoints.
        for algorithm in suite.algorithms():
            times = [
                suite.mean_time_to_ratio(algorithm, t) for t in RATIO_CHECKPOINTS
            ]
            assert times == sorted(times)
