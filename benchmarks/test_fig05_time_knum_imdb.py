"""Figure 5 — query time vs approximation ratio, varying knum, IMDB.

Same experiment as Figure 4 on the movie/person graph; the paper finds
"the results on these two datasets are very similar", which is exactly
what the assertions re-check here.
"""

from __future__ import annotations

from repro.bench import figures

KNUMS = (4, 5)
NUM_QUERIES = 2


def regenerate():
    return figures.figure_time_vs_ratio_knum(
        "imdb", scale="small", knums=KNUMS, num_queries=NUM_QUERIES, seed=5
    )


def test_fig05_time_vs_ratio_knum_imdb(benchmark, record_figure):
    fig = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    record_figure("fig05_time_knum_imdb", fig.text)

    for knum in KNUMS:
        suite = fig.suites[(knum,)]
        for algorithm in suite.algorithms():
            assert suite.all_optimal(algorithm)
        assert suite.mean_states("PrunedDP") <= suite.mean_states("Basic")
        assert suite.mean_states("PrunedDP++") <= suite.mean_states("PrunedDP+")
        assert suite.mean_states("PrunedDP++") < 0.5 * suite.mean_states("Basic")

    # Paper: processing effort grows with knum for the unpruned baseline.
    assert (
        fig.suites[(KNUMS[-1],)].mean_states("Basic")
        >= fig.suites[(KNUMS[0],)].mean_states("Basic")
    )
