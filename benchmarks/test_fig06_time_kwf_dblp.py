"""Figure 6 — query time vs ratio, varying label frequency (kwf), DBLP.

Paper claims reproduced here:
* Basic / PrunedDP get *cheaper* as kwf grows (smaller optimal trees);
* PrunedDP++ is largely insensitive to kwf;
* the PrunedDP+ vs PrunedDP++ gap narrows as kwf grows (the one-label
  bound tightens when groups are everywhere).
"""

from __future__ import annotations

from repro.bench import figures
from repro.bench.datasets import KWF_VALUES

KNUM = 4
NUM_QUERIES = 2


def regenerate():
    return figures.figure_time_vs_ratio_kwf(
        "dblp", scale="small", knum=KNUM, kwfs=KWF_VALUES,
        num_queries=NUM_QUERIES, seed=6,
    )


def test_fig06_time_vs_ratio_kwf_dblp(benchmark, record_figure):
    fig = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    record_figure("fig06_time_kwf_dblp", fig.text)

    for kwf in KWF_VALUES:
        suite = fig.suites[(kwf,)]
        for algorithm in suite.algorithms():
            assert suite.all_optimal(algorithm)
        assert suite.mean_states("PrunedDP++") <= suite.mean_states("Basic")

    # Basic's exploration shrinks as labels get more frequent
    # (compare the sweep's endpoints).
    lo, hi = KWF_VALUES[0], KWF_VALUES[-1]
    assert (
        fig.suites[(hi,)].mean_states("Basic")
        <= fig.suites[(lo,)].mean_states("Basic")
    )

    # PrunedDP++ stays within a modest band across the whole sweep
    # (paper: "not largely influenced by kwf").
    pp_states = [fig.suites[(kwf,)].mean_states("PrunedDP++") for kwf in KWF_VALUES]
    assert max(pp_states) <= 25 * max(1.0, min(pp_states))
