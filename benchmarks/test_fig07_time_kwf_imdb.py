"""Figure 7 — query time vs ratio, varying label frequency (kwf), IMDB."""

from __future__ import annotations

from repro.bench import figures
from repro.bench.datasets import KWF_VALUES

KNUM = 4
NUM_QUERIES = 2


def regenerate():
    return figures.figure_time_vs_ratio_kwf(
        "imdb", scale="small", knum=KNUM, kwfs=KWF_VALUES,
        num_queries=NUM_QUERIES, seed=7,
    )


def test_fig07_time_vs_ratio_kwf_imdb(benchmark, record_figure):
    fig = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    record_figure("fig07_time_kwf_imdb", fig.text)

    for kwf in KWF_VALUES:
        suite = fig.suites[(kwf,)]
        for algorithm in suite.algorithms():
            assert suite.all_optimal(algorithm)
        # The full ordering of the paper.
        assert suite.mean_states("PrunedDP") <= suite.mean_states("Basic")
        assert suite.mean_states("PrunedDP++") <= suite.mean_states("Basic")
