"""Figure 8 — memory vs approximation ratio, varying knum, DBLP.

Paper: "the curves for memory consumption ... are very similar to those
for query processing time ... because both the memory and time overhead
for each algorithm are roughly proportional to the number of states
generated", and PrunedDP++ is the most memory-efficient by a wide
margin.  We assert the per-algorithm peak-byte ordering.
"""

from __future__ import annotations

from repro.bench import figures

KNUMS = (4, 5)


def regenerate():
    return figures.figure_memory_vs_ratio_knum(
        "dblp", scale="small", knums=KNUMS, num_queries=2, seed=8
    )


def test_fig08_memory_vs_ratio_knum(benchmark, record_figure):
    fig = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    record_figure("fig08_memory_knum_dblp", fig.text)

    for knum in KNUMS:
        peak = {
            algorithm: fig.series[(knum, algorithm)][0]
            for algorithm in ("Basic", "PrunedDP", "PrunedDP+", "PrunedDP++")
        }
        states = {
            algorithm: fig.series[(knum, algorithm)][1]
            for algorithm in peak
        }
        # Memory ordering mirrors the state-count ordering.
        assert peak["PrunedDP"] <= peak["Basic"]
        assert states["PrunedDP+"] <= states["PrunedDP"]
        assert states["PrunedDP++"] <= states["PrunedDP+"]
        # PrunedDP++ uses a fraction of Basic's live state memory even
        # after paying for its 2^k route tables.
        assert peak["PrunedDP++"] < peak["Basic"]

    # Memory grows with knum for the DP algorithms (2^k state space).
    assert (
        fig.series[(KNUMS[-1], "Basic")][0]
        >= fig.series[(KNUMS[0], "Basic")][0]
    )
