"""Figure 9 — memory vs approximation ratio, varying kwf, DBLP."""

from __future__ import annotations

from repro.bench import figures
from repro.bench.datasets import KWF_VALUES


def regenerate():
    return figures.figure_memory_vs_ratio_kwf(
        "dblp", scale="small", knum=4, kwfs=KWF_VALUES, num_queries=2, seed=9
    )


def test_fig09_memory_vs_ratio_kwf(benchmark, record_figure):
    fig = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    record_figure("fig09_memory_kwf_dblp", fig.text)

    for kwf in KWF_VALUES:
        peak = {
            algorithm: fig.series[(kwf, algorithm)][0]
            for algorithm in ("Basic", "PrunedDP", "PrunedDP+", "PrunedDP++")
        }
        assert peak["PrunedDP"] <= peak["Basic"]
        assert peak["PrunedDP++"] <= peak["Basic"]
