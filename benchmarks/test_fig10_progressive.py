"""Figure 10 — progressive performance: UB and LB over time.

Paper claims re-checked: for every algorithm LB monotonically
increases, UB monotonically decreases, and the gap closes; the
A*-search algorithms start with a non-trivial LB immediately (their
first report already carries a bound), whereas Basic/PrunedDP's LB
stays at the popped-cost level which starts at 0; and PrunedDP++
closes the gap with the fewest explored states.
"""

from __future__ import annotations

import pytest

from repro.bench import figures


def regenerate_dblp():
    return figures.figure_progressive_bounds(
        "dblp", scale="small", knum=6, kwf=8, seed=10
    )


def regenerate_imdb():
    return figures.figure_progressive_bounds(
        "imdb", scale="small", knum=5, kwf=8, seed=10
    )


def _check_traces(fig):
    finals = {}
    for algorithm in ("Basic", "PrunedDP", "PrunedDP+", "PrunedDP++"):
        trace = fig.series[("trace", algorithm)]
        assert trace, algorithm
        ubs = [ub for _, ub, _ in trace]
        lbs = [lb for _, _, lb in trace]
        assert all(b <= a + 1e-9 for a, b in zip(ubs, ubs[1:])), algorithm
        assert all(b >= a - 1e-9 for a, b in zip(lbs, lbs[1:])), algorithm
        assert ubs[-1] == pytest.approx(lbs[-1]), algorithm
        finals[algorithm] = ubs[-1]
    # All four converge to the same optimum.
    assert len({round(v, 9) for v in finals.values()}) == 1


def test_fig10_progressive_dblp(benchmark, record_figure):
    fig = benchmark.pedantic(regenerate_dblp, rounds=1, iterations=1)
    record_figure("fig10_progressive_dblp", fig.text)
    _check_traces(fig)
    # A*-search reports a positive lower bound from its first event.
    for algorithm in ("PrunedDP+", "PrunedDP++"):
        first_lb = fig.series[("trace", algorithm)][0][2]
        assert first_lb > 0.0


def test_fig10_progressive_imdb(benchmark, record_figure):
    fig = benchmark.pedantic(regenerate_imdb, rounds=1, iterations=1)
    record_figure("fig10_progressive_imdb", fig.text)
    _check_traces(fig)
