"""Figure 14 — varying knum on LiveJournal (power-law topology).

Paper: on the power-law graph PrunedDP++ wins by orders of magnitude
and the tour-based bounds clearly beat the one-label bound ("the
one-label based lower bound is typically much smaller than the
tour-based lower bound" on power-law graphs).
"""

from __future__ import annotations

from repro.bench import figures

KNUMS = (4, 5)


def regenerate():
    return figures.figure_time_vs_ratio_knum(
        "livejournal", scale="small", knums=KNUMS, num_queries=2, seed=14
    )


def test_fig14_powerlaw(benchmark, record_figure):
    fig = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    record_figure("fig14_powerlaw", fig.text)

    for knum in KNUMS:
        suite = fig.suites[(knum,)]
        for algorithm in suite.algorithms():
            assert suite.all_optimal(algorithm)
        assert suite.mean_states("PrunedDP") <= suite.mean_states("Basic")
        assert suite.mean_states("PrunedDP++") <= suite.mean_states("PrunedDP+")
        # Order-of-magnitude style win for the pruned A* algorithms.
        assert suite.mean_states("PrunedDP++") < 0.4 * suite.mean_states("Basic")
