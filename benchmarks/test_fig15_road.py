"""Figure 15 — varying knum on RoadUSA (near-planar topology).

Paper: on the road network the PrunedDP++ vs PrunedDP+ gap is *much
smaller* than on power-law graphs, "because RoadUSA is a near planar
graph, in which the difference between the one-label based lower bound
and the tour-based lower bound is usually small".  We assert both the
correctness ordering and that relative-gap contrast against Fig 14's
dataset.
"""

from __future__ import annotations

from repro.bench import figures

KNUMS = (4, 5)


def regenerate():
    road = figures.figure_time_vs_ratio_knum(
        "roadusa", scale="small", knums=KNUMS, num_queries=2, seed=15
    )
    power = figures.figure_time_vs_ratio_knum(
        "livejournal", scale="small", knums=(KNUMS[-1],), num_queries=2, seed=15
    )
    return road, power


def test_fig15_road(benchmark, record_figure):
    road, power = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    record_figure("fig15_road", road.text)

    for knum in KNUMS:
        suite = road.suites[(knum,)]
        for algorithm in suite.algorithms():
            assert suite.all_optimal(algorithm)
        assert suite.mean_states("PrunedDP++") <= suite.mean_states("Basic")

    # Topology contrast: the +→++ improvement factor on the road
    # network is smaller than on the power-law network.
    knum = KNUMS[-1]
    road_suite = road.suites[(knum,)]
    power_suite = power.suites[(knum,)]
    road_gain = road_suite.mean_states("PrunedDP+") / max(
        1.0, road_suite.mean_states("PrunedDP++")
    )
    power_gain = power_suite.mean_states("PrunedDP+") / max(
        1.0, power_suite.mean_states("PrunedDP++")
    )
    assert road_gain <= power_gain * 1.5  # road gains modest vs power-law
