"""Figure 16 — PrunedDP++ at relatively large knum (paper: 9 and 10).

Paper: PrunedDP++ still converges at the largest query sizes and —
the progressive headline — produces a near-optimal (ratio <= ~1.3)
answer in a small fraction of the total solve time.  Scaled run uses
knum 6/7 on the small DBLP graph (the paper's 9/10 on 15.8M nodes).
"""

from __future__ import annotations

from repro.bench import figures

KNUMS = (6, 7)


def regenerate():
    return figures.figure_large_knum(
        "dblp", scale="small", knums=KNUMS, seed=16
    )


def test_fig16_large_knum(benchmark, record_figure):
    fig = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    record_figure("fig16_large_knum", fig.text)

    for knum in KNUMS:
        trace = fig.series[(knum, "PrunedDP++")]
        assert trace
        elapsed_total = trace[-1][0]
        ub_final, lb_final = trace[-1][1], trace[-1][2]
        assert abs(ub_final - lb_final) < 1e-9  # optimum proven

        # A 1.5-approximation is available well before completion.
        t_near = next(
            (t for t, ub, lb in trace if lb > 0 and ub / lb <= 1.5),
            None,
        )
        assert t_near is not None
        assert t_near <= elapsed_total
