"""Fleet throughput — shared-memory workers vs the single-process path.

The serving-fleet claim: a 4-worker :class:`repro.service.FleetPool`
(persistent pre-forked processes attached to one shared-memory CSR
segment) answers a CPU-bound batch at >= 2x the queries/sec of the
single-process executor, because each query runs on its own core
instead of time-slicing the GIL.  This is the service-throughput
workload family (the 5000-node graph and 8-hot-label pool of
``test_service_throughput.py``) pushed into its compute-bound regime —
5-label queries whose PrunedDP+ search dominates the per-query cost,
the exact traffic shape the fleet exists for.  The IPC tax the fleet
pays per query (a pickled label set out, a pickled outcome back) must
be amortized by real multi-core search time to clear the gate.

Answers are never taken on faith: every fleet outcome is re-certified
against the graph from first principles (:func:`repro.verify.
certify_result`) and its canonical serialization — weight plus the
sorted ``(u, v, w)`` edge triples — must be byte-identical to the
single-process executor's answer for the same query.

The >= 2x assertion needs hardware parallelism, so it is skipped on
hosts with fewer than 4 usable cores (the equivalence/certification
test still runs everywhere); CI's ``perf-regression`` job provides the
4-core floor that actually gates merges.
"""

from __future__ import annotations

import json
import os
import random
import time

import pytest

from repro.graph import generators
from repro.service import GraphIndex, QueryExecutor
from repro.verify import certify_result

ALGORITHM = "pruneddp+"
WORKERS = 4
NUM_QUERIES = 40
LABELS_PER_QUERY = 5
MIN_SPEEDUP = 2.0


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


def build_workload(
    *, num_queries: int = NUM_QUERIES, labels_per_query: int = LABELS_PER_QUERY
):
    """The service-throughput graph with compute-bound unique queries.

    Queries are deduplicated so neither side's result cache collapses
    the batch — every query is a real solve on both executors, which
    is what a throughput ratio between them actually measures.
    """
    graph = generators.random_graph(
        5000, 12000, num_query_labels=8, label_frequency=60, seed=5
    )
    rng = random.Random(17)
    pool = [f"q{i}" for i in range(8)]
    seen, queries = set(), []
    while len(queries) < num_queries:
        labels = tuple(sorted(rng.sample(pool, labels_per_query)))
        if labels not in seen:
            seen.add(labels)
            queries.append(list(labels))
    return graph, queries


def canonical_answer(outcome) -> bytes:
    """A query answer's canonical bytes: weight + sorted edge triples."""
    assert outcome.ok, outcome.error
    return json.dumps(
        {
            "weight": outcome.result.weight,
            "edges": sorted(outcome.result.tree.edges),
        },
        sort_keys=True,
    ).encode("utf-8")


def run_fleet_comparison(*, workers: int = WORKERS, **workload_kw):
    """Time the same batch on both executors; certify the fleet's answers."""
    graph, queries = build_workload(**workload_kw)

    # Single-process baseline: threads share one interpreter, so the
    # batch is GIL-bound regardless of thread count.  Same thread count
    # as the fleet's submitting side keeps the scheduling symmetric.
    single_index = GraphIndex(graph)
    with QueryExecutor(
        single_index, algorithm=ALGORITHM, max_workers=workers
    ) as executor:
        started = time.perf_counter()
        single_outcomes = executor.run_batch(queries)
        single_seconds = time.perf_counter() - started

    # Fleet: pre-fork before timing (a deployment forks once and serves
    # for hours); each worker's own label-cache warmup stays inside the
    # timed batch, charged against the fleet.
    fleet_index = GraphIndex(graph)
    with QueryExecutor(
        fleet_index, algorithm=ALGORITHM, isolation="fleet", workers=workers
    ) as executor:
        fleet_stats = executor.worker_pool.stats()
        started = time.perf_counter()
        fleet_outcomes = executor.run_batch(queries)
        fleet_seconds = time.perf_counter() - started

    # Certification before any speed claim: every fleet answer is
    # re-validated from first principles and byte-identical to the
    # single-process answer for the same query.
    for labels, single, fleet in zip(queries, single_outcomes, fleet_outcomes):
        assert single.ok and fleet.ok, (single.error, fleet.error)
        certify_result(graph, fleet.result, labels=labels).raise_if_failed()
        assert canonical_answer(fleet) == canonical_answer(single), labels
        assert fleet.trace.fleet_worker is not None

    return {
        "queries": len(queries),
        "single_seconds": single_seconds,
        "single_qps": len(queries) / single_seconds,
        "fleet_seconds": fleet_seconds,
        "fleet_qps": len(queries) / fleet_seconds,
        "speedup": single_seconds / fleet_seconds,
        "workers": workers,
        "shm_bytes": fleet_stats["shm"]["size_bytes"],
        "per_worker_queries": [
            worker["queries"] for worker in fleet_stats["per_worker"]
        ],
    }


def test_fleet_answers_certify_identical():
    """Everywhere (even 1 core): fleet answers are byte-identical to the
    single-process executor's and pass first-principles certification."""
    rows = run_fleet_comparison(
        workers=2, num_queries=8, labels_per_query=3
    )
    assert rows["queries"] == 8


@pytest.mark.skipif(
    _usable_cpus() < WORKERS,
    reason=f"fleet speedup gate needs >= {WORKERS} usable cores "
    f"(found {_usable_cpus()}); CI provides them",
)
def test_fleet_throughput_2x_single_process(benchmark, record_figure):
    rows = benchmark.pedantic(run_fleet_comparison, rounds=1, iterations=1)

    record_figure(
        "fleet_throughput",
        "\n".join(
            [
                "== Fleet throughput: 4 shared-memory workers vs 1 process ==",
                f"workload: {rows['queries']} unique {LABELS_PER_QUERY}-label "
                f"queries, {ALGORITHM}",
                f"single : {rows['single_seconds']:6.2f}s = "
                f"{rows['single_qps']:6.1f} q/s",
                f"fleet  : {rows['fleet_seconds']:6.2f}s = "
                f"{rows['fleet_qps']:6.1f} q/s  "
                f"({rows['workers']} workers, "
                f"{rows['shm_bytes'] / 1e6:.1f} MB shm)",
                f"speedup: {rows['speedup']:.2f}x (gate: >= {MIN_SPEEDUP}x)",
            ]
        ),
    )

    # Every worker actually served traffic (no dead lanes).
    assert all(count > 0 for count in rows["per_worker_queries"]), rows

    # Acceptance: the fleet serves >= 2x the single-process queries/sec.
    assert rows["speedup"] >= MIN_SPEEDUP, (
        f"fleet speedup {rows['speedup']:.2f}x < {MIN_SPEEDUP}x"
    )
