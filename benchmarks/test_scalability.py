"""Scalability check — PrunedDP++ on the medium-scale datasets.

The paper's headline operational claim: PrunedDP++ answers knum≈6
queries on 10M+-node graphs in seconds because its explored region is
tiny relative to the graph.  At our scale the analogous claim is that
PrunedDP++'s popped-state count grows far slower than the graph: the
medium datasets are ~3× the small ones, while the explored states stay
within a small multiple.
"""

from __future__ import annotations

from repro.bench.runner import run_query
from repro.bench.workloads import make_workload


def run_scaling():
    rows = {}
    for scale in ("small", "medium"):
        graph, queries = make_workload(
            "livejournal", scale=scale, knum=5, kwf=8, num_queries=1, seed=77
        )
        labels = list(queries)[0]
        run = run_query("PrunedDP++", graph, labels)
        assert run.result.optimal
        rows[scale] = (graph.num_nodes, run.states_popped, run.result.stats.total_seconds)
    return rows


def test_scalability_medium(benchmark, record_figure):
    rows = benchmark.pedantic(run_scaling, rounds=1, iterations=1)

    lines = ["== PrunedDP++ scalability (livejournal, knum=5) =="]
    for scale, (n, states, seconds) in rows.items():
        lines.append(
            f"{scale:7s} n={n:6d} states={states:7d} time={seconds:7.2f}s "
            f"explored={states / n:6.2f} states/node"
        )
    record_figure("scalability", "\n".join(lines))

    small_n, small_states, _ = rows["small"]
    medium_n, medium_states, _ = rows["medium"]
    graph_growth = medium_n / small_n
    state_growth = medium_states / max(1, small_states)
    # The explored region grows sub-linearly in graph size (paper:
    # "PrunedDP++ visits only a part of the graph").
    assert state_growth < 3.0 * graph_growth
