"""Serving throughput — batch execution over one shared GraphIndex.

The query-service claim: answering a 50-query workload with
overlapping labels through one shared :class:`repro.service.GraphIndex`
is at least 2× the queries/sec of sequential cold ``solve_gst`` calls,
because the per-label Dijkstras (the dominant fixed cost of every
solve, Section 3.1) are paid once per *label* instead of once per
*query*.  The workers are GIL-bound threads, so the win measured here
is cache amortization, not CPU parallelism — a single worker makes the
accounting exact.

Also checks the telemetry contract: every query's stage timings
(context build, bound preparation, search, feasible construction) sum
to within 10% of its measured wall time.
"""

from __future__ import annotations

import random
import time

from repro.bench.runner import run_throughput
from repro.core.solver import solve_gst
from repro.graph import generators
from repro.service import GraphIndex

ALGORITHM = "pruneddp+"
NUM_QUERIES = 50


def build_workload():
    """A 5000-node graph and 50 queries drawn from 8 hot labels."""
    graph = generators.random_graph(
        5000, 12000, num_query_labels=8, label_frequency=60, seed=5
    )
    rng = random.Random(17)
    pool = [f"q{i}" for i in range(8)]
    queries = [rng.sample(pool, rng.choice((2, 3))) for _ in range(NUM_QUERIES)]
    return graph, queries


def run_serving_comparison():
    graph, queries = build_workload()

    # Cold baseline: each query pays its own index (fresh caches).
    started = time.perf_counter()
    cold_weights = [
        solve_gst(graph, labels, algorithm=ALGORITHM).weight for labels in queries
    ]
    cold_seconds = time.perf_counter() - started
    cold_qps = len(queries) / cold_seconds

    # Service path: one shared index, batch through the executor.  The
    # index build is charged to the batch — the speedup must survive it.
    started = time.perf_counter()
    index = GraphIndex(graph)
    throughput = run_throughput(
        index, queries, algorithm=ALGORITHM, max_workers=1
    )
    warm_seconds = time.perf_counter() - started
    warm_qps = len(queries) / warm_seconds

    return {
        "cold_seconds": cold_seconds,
        "cold_qps": cold_qps,
        "warm_seconds": warm_seconds,
        "warm_qps": warm_qps,
        "speedup": warm_qps / cold_qps,
        "cold_weights": cold_weights,
        "throughput": throughput,
        "cache_info": index.cache_info(),
    }


def test_shared_index_doubles_throughput(benchmark, record_figure):
    rows = benchmark.pedantic(run_serving_comparison, rounds=1, iterations=1)
    throughput = rows["throughput"]

    record_figure(
        "service_throughput",
        "\n".join(
            [
                "== Serving throughput: shared GraphIndex vs cold solve_gst ==",
                f"workload: {NUM_QUERIES} queries, 8-label pool, {ALGORITHM}",
                f"cold  : {rows['cold_seconds']:6.2f}s = {rows['cold_qps']:6.1f} q/s",
                f"shared: {rows['warm_seconds']:6.2f}s = {rows['warm_qps']:6.1f} q/s",
                f"speedup: {rows['speedup']:.2f}x  "
                f"(cache: {rows['cache_info']['hits']} hits / "
                f"{rows['cache_info']['misses']} misses)",
            ]
        ),
    )

    # Answers are identical to the cold path, query by query.
    assert all(outcome.ok for outcome in throughput.outcomes)
    for outcome, cold_weight in zip(throughput.outcomes, rows["cold_weights"]):
        assert abs(outcome.result.weight - cold_weight) < 1e-9

    # Label overlap amortizes the Dijkstras: at most one miss per label.
    assert rows["cache_info"]["misses"] <= 8

    # Acceptance: the service path serves at least 2x the queries/sec.
    assert rows["speedup"] >= 2.0, f"speedup {rows['speedup']:.2f}x < 2x"

    # Telemetry contract: every query's stage timings account for its
    # wall time to within 10%.
    for outcome in throughput.outcomes:
        trace = outcome.trace
        assert abs(trace.stage_total - trace.wall_seconds) <= 0.1 * trace.wall_seconds, (
            f"query {trace.query_id}: stages sum to {trace.stage_total:.6f}s "
            f"vs wall {trace.wall_seconds:.6f}s"
        )
