"""Warm-start speedup — the persistent precompute store's claim.

The ``repro.store`` contract: a store built offline (one multi-source
Dijkstra per label, Section 3.1) makes a later process's first pass
over the workload at least **1.5× faster** than a cold index, because
the per-label tables load as arrays instead of being recomputed.  The
workload here uses disjoint label pairs so the cold index cannot
amortize across queries — every query pays its own Dijkstras, exactly
the cost the store removes.

Also checks the epsilon-aware result cache: after persisting the first
pass's proven answers, a second pass over the same workload is served
entirely from the cache (every trace says ``result_cache="hit"``).
"""

from __future__ import annotations

import shutil
import tempfile
import time

from repro.graph import generators
from repro.service import GraphIndex
from repro.store import build_store

ALGORITHM = "pruneddp+"
NUM_LABELS = 24


def build_workload():
    """A 4000-node graph and 12 label-disjoint 2-label queries."""
    graph = generators.random_graph(
        4000, 10000, num_query_labels=NUM_LABELS, label_frequency=25, seed=9
    )
    labels = [f"q{i}" for i in range(NUM_LABELS)]
    queries = [labels[i:i + 2] for i in range(0, NUM_LABELS, 2)]
    return graph, queries


def run_workload(index, queries, **kwargs):
    outcomes = [index.execute(labels, algorithm=ALGORITHM, **kwargs)
                for labels in queries]
    assert all(outcome.ok for outcome in outcomes), [
        outcome.trace.error for outcome in outcomes if not outcome.ok
    ]
    return outcomes


def run_warmstart_comparison():
    graph, queries = build_workload()
    store_path = tempfile.mkdtemp(prefix="gst-warmstart-")
    try:
        report = build_store(
            graph, store_path, top_k=NUM_LABELS, workload=queries
        )

        # Cold first pass: a fresh index pays every Dijkstra live.
        cold_index = GraphIndex(graph)
        started = time.perf_counter()
        run_workload(cold_index, queries)
        cold_seconds = time.perf_counter() - started

        # Warm first pass: a fresh index preloads the stored tables.
        warm_index = GraphIndex(graph)
        attach_started = time.perf_counter()
        warmed = warm_index.attach_store(store_path)
        attach_seconds = time.perf_counter() - attach_started
        started = time.perf_counter()
        run_workload(warm_index, queries)
        warm_seconds = time.perf_counter() - started

        # Persist the proven answers; a second process serves from them.
        persisted = warm_index.save_results()
        second = GraphIndex(graph)
        second.attach_store(store_path)
        started = time.perf_counter()
        cached_outcomes = run_workload(second, queries)
        cached_seconds = time.perf_counter() - started

        return {
            "build_seconds": report.seconds,
            "cold_seconds": cold_seconds,
            "warm_seconds": warm_seconds,
            "attach_seconds": attach_seconds,
            "cached_seconds": cached_seconds,
            "speedup": cold_seconds / warm_seconds,
            "warmed": warmed,
            "persisted": persisted,
            "cold_cache": cold_index.cache_info(),
            "warm_cache": warm_index.cache_info(),
            "cached_traces": [o.trace for o in cached_outcomes],
        }
    finally:
        shutil.rmtree(store_path, ignore_errors=True)


def test_warm_start_beats_cold_by_1_5x(benchmark, record_figure):
    rows = benchmark.pedantic(run_warmstart_comparison, rounds=1, iterations=1)

    record_figure(
        "store_warmstart",
        "\n".join(
            [
                "== Warm start: precompute store vs cold index ==",
                f"workload: 12 disjoint 2-label queries, {ALGORITHM}",
                f"offline build : {rows['build_seconds']:6.3f}s "
                f"({rows['warmed']} label tables)",
                f"cold pass     : {rows['cold_seconds']:6.3f}s",
                f"warm pass     : {rows['warm_seconds']:6.3f}s "
                f"(+{rows['attach_seconds']:.3f}s attach)",
                f"speedup       : {rows['speedup']:.2f}x",
                f"cached pass   : {rows['cached_seconds'] * 1e3:6.2f} ms "
                f"({rows['persisted']} persisted answers)",
            ]
        ),
    )

    # The tentpole claim: warm serving is at least 1.5x cold serving.
    assert rows["speedup"] >= 1.5, rows

    # The warm pass computed no Dijkstra for stored labels...
    assert rows["warm_cache"]["misses"] == 0
    assert rows["warm_cache"]["warm_loads"] == rows["warmed"]
    # ... while the cold pass paid one per label.
    assert rows["cold_cache"]["misses"] == NUM_LABELS

    # Second process: every query served straight from the result cache.
    for trace in rows["cached_traces"]:
        assert trace.result_cache == "hit"
        assert trace.store_hit
