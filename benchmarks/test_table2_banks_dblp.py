"""Table 2 — comparison with BANKS-II on DBLP.

Paper columns: BANKS-II total time and approximation ratio; PrunedDP++
total time; and T_r, the time PrunedDP++ needs to emit an answer at
least as good as BANKS-II's.  Claims re-checked: PrunedDP++ is exact
(ratio exactly 1 by construction), BANKS-II's ratio is >= 1, and
T_r <= the full PrunedDP++ solve time (in the paper T_r also
undercuts BANKS-II's own time — asserted on explored work below).
"""

from __future__ import annotations

from repro.bench import figures
from repro.bench.workloads import make_workload
from repro.baselines import Banks2Solver
from repro.core import PrunedDPPlusPlusSolver

CONFIGURATIONS = ((4, 8), (5, 8), (4, 4), (4, 16))


def regenerate():
    return figures.table_banks_comparison(
        "dblp", scale="small", configurations=CONFIGURATIONS,
        num_queries=2, seed=2,
    )


def test_table2_banks_dblp(benchmark, record_figure):
    table = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    record_figure("table2_banks_dblp", table.text)

    for config in CONFIGURATIONS:
        banks_time, banks_ratio, pp_time, tr = table.series[config]
        assert banks_ratio >= 1.0 - 1e-9
        assert tr <= pp_time + 1e-9


def test_table2_exploration_contrast(benchmark):
    """BANKS-II settles ~k·n node/group pairs; PrunedDP++ visits far
    fewer states (the paper's explanation of the speedup)."""

    def run():
        graph, queries = make_workload(
            "dblp", scale="small", knum=5, kwf=8, num_queries=1, seed=2
        )
        labels = list(queries)[0]
        banks = Banks2Solver(graph, labels).solve()
        pp = PrunedDPPlusPlusSolver(graph, labels).solve()
        return graph, banks, pp

    graph, banks, pp = benchmark.pedantic(run, rounds=1, iterations=1)
    assert banks.stats.states_popped >= graph.num_nodes
    assert pp.stats.states_popped < banks.stats.states_popped
    assert pp.weight <= banks.weight + 1e-9
