"""Table 3 — comparison with BANKS-II on IMDB (Appendix A.2)."""

from __future__ import annotations

from repro.bench import figures

CONFIGURATIONS = ((4, 8), (5, 8), (4, 4), (4, 16))


def regenerate():
    return figures.table_banks_comparison(
        "imdb", scale="small", configurations=CONFIGURATIONS,
        num_queries=2, seed=3,
    )


def test_table3_banks_imdb(benchmark, record_figure):
    table = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    record_figure("table3_banks_imdb", table.text)

    for config in CONFIGURATIONS:
        banks_time, banks_ratio, pp_time, tr = table.series[config]
        # BANKS-II never beats the exact optimum; T_r is the early-exit
        # point of the progressive solve.
        assert banks_ratio >= 1.0 - 1e-9
        assert tr <= pp_time + 1e-9
