"""Extension experiment — approximate vs exact top-r answers.

The paper's remark proposes harvesting near-optimal trees from the
progressive search as approximate top-r answers; this package also
implements exact enumeration.  This benchmark quantifies the trade:
exact answers are never heavier at any rank, and the approximate
harvest costs a single solve while exact enumeration pays roughly one
solve per answer edge.
"""

from __future__ import annotations

import time

import pytest

from repro.bench.metrics import format_seconds, format_table
from repro.bench.workloads import make_workload
from repro.core.topr import exact_top_r_trees, top_r_trees

R = 4


def regenerate():
    graph, queries = make_workload(
        "dblp", scale="small", knum=4, kwf=8, num_queries=2, seed=55
    )
    rows = []
    for labels in queries:
        started = time.perf_counter()
        approx = top_r_trees(graph, labels, R)
        approx_seconds = time.perf_counter() - started
        started = time.perf_counter()
        exact = exact_top_r_trees(graph, labels, R)
        exact_seconds = time.perf_counter() - started
        rows.append((labels, approx, approx_seconds, exact, exact_seconds))
    return rows


def test_topr_modes(benchmark, record_figure):
    rows = benchmark.pedantic(regenerate, rounds=1, iterations=1)

    table_rows = []
    for labels, approx, at, exact, et in rows:
        table_rows.append(
            [
                ",".join(str(l) for l in labels)[:28],
                " ".join(f"{t.weight:g}" for t in approx),
                format_seconds(at),
                " ".join(f"{t.weight:g}" for t in exact),
                format_seconds(et),
            ]
        )
    text = format_table(
        ["query", "approx top-r weights", "t", "exact top-r weights", "t"],
        table_rows,
        title=f"== top-{R}: progressive harvest vs exact enumeration ==",
    )
    record_figure("topr_modes", text)

    for labels, approx, _, exact, _ in rows:
        # Same proven optimum at rank 1.
        assert approx[0].weight == pytest.approx(exact[0].weight)
        # Exact ranks dominate the approximate ones pairwise.
        for a, e in zip(approx, exact):
            assert e.weight <= a.weight + 1e-9
        # Exact sequence is sorted and distinct.
        weights = [t.weight for t in exact]
        assert weights == sorted(weights)
        assert len({(t.edges, t.nodes) for t in exact}) == len(exact)
