#!/usr/bin/env python
"""Beyond the paper: library features a production deployment would use.

* PreparedGraph — amortize per-label Dijkstras across queries;
* algorithm="auto" — the planner picks the right solver;
* exact_top_r_trees — true top-r reduced answers;
* classic Steiner trees via the GST reduction;
* BLINKS with the bi-level block index.

Run:  python examples/advanced_features_demo.py
"""

import time

from repro import exact_top_r_trees, solve_gst, top_r_trees
from repro.baselines.blinks import BlinksIndex, BlinksSolver
from repro.bench import make_workload
from repro.core import PreparedGraph, steiner_tree
from repro.core.planner import plan_algorithm


def main() -> None:
    graph, queries = make_workload(
        "dblp", scale="small", knum=4, kwf=8, num_queries=4, seed=9
    )
    print(f"graph: {graph}\n")

    # --- PreparedGraph: warm per-label distance cache ------------------
    prepared = PreparedGraph(graph)
    batch = list(queries)
    started = time.perf_counter()
    for labels in batch:
        prepared.solve(labels)
    warm = time.perf_counter() - started
    print(f"4-query batch via PreparedGraph : {warm * 1e3:7.1f} ms "
          f"(cache: {prepared.cache.hits} hits / {prepared.cache.misses} misses)")

    started = time.perf_counter()
    for labels in batch:
        solve_gst(graph, labels)
    cold = time.perf_counter() - started
    print(f"same batch, cold solver         : {cold * 1e3:7.1f} ms\n")

    # --- the planner ----------------------------------------------------
    labels = batch[0]
    name, reason = plan_algorithm(graph, labels)
    print(f"planner picks {name!r}: {reason}")
    result = solve_gst(graph, labels, algorithm="auto")
    print(f"auto solve: weight={result.weight:g} via {result.algorithm}\n")

    # --- top-r: approximate vs exact ------------------------------------
    approx = top_r_trees(graph, labels, 3)
    exact = exact_top_r_trees(graph, labels, 3)
    print("top-3 answers (approximate harvest vs exact enumeration):")
    for i in range(max(len(approx), len(exact))):
        a = f"{approx[i].weight:g}" if i < len(approx) else "-"
        e = f"{exact[i].weight:g}" if i < len(exact) else "-"
        print(f"  #{i + 1}: approx={a:>8}  exact={e:>8}")
    print()

    # --- classic Steiner tree -------------------------------------------
    terminals = sorted(exact[0].nodes)[:3]
    st = steiner_tree(graph, terminals)
    print(f"classic Steiner tree over terminals {terminals}: "
          f"weight={st.weight:g} (optimal={st.optimal})\n")

    # --- BLINKS with the bi-level index ----------------------------------
    index = BlinksIndex(graph, block_size=32)
    plain_result = BlinksSolver(graph, labels, k_answers=3).solve()
    indexed = BlinksSolver(graph, labels, k_answers=3, index=index)
    indexed_result = indexed.solve()
    print("BLINKS top-3 roots (bi-level index on):")
    for answer in indexed.top_roots():
        print(f"  root={answer.root} score={answer.score:g} "
              f"tree-weight={answer.tree.weight:g}")
    print(f"settled pairs: plain={plain_result.stats.states_popped} "
          f"indexed={indexed_result.stats.states_popped}")


if __name__ == "__main__":
    main()
