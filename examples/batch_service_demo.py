#!/usr/bin/env python
"""Batch query serving: one shared GraphIndex, many concurrent queries.

Builds a synthetic keyword graph, then answers a 20-query workload two
ways — cold one-shot `solve_gst` calls versus a shared
:class:`repro.service.GraphIndex` drained by a
:class:`repro.service.QueryExecutor` — and prints the throughput of
each plus the per-stage telemetry the service records.

Run:  python examples/batch_service_demo.py
"""

import io
import json
import random
import time

from repro import Budget, GraphIndex, QueryExecutor, TraceSink, solve_gst
from repro.graph import generators


def main() -> None:
    # A graph with 8 "hot" query labels that recur across queries —
    # the workload shape the service layer is built for.
    graph = generators.random_graph(
        2000, 5000, num_query_labels=8, label_frequency=40, seed=3
    )
    rng = random.Random(42)
    pool = [f"q{i}" for i in range(8)]
    queries = [rng.sample(pool, rng.choice((2, 3))) for _ in range(20)]
    queries.append(["q0", "no-such-label"])  # one poisoned query

    # --- Cold baseline: every solve pays its own per-label Dijkstras.
    started = time.perf_counter()
    for labels in queries[:-1]:
        solve_gst(graph, labels, algorithm="pruneddp+")
    cold = time.perf_counter() - started
    print(f"cold one-shot solves : {len(queries) - 1} queries "
          f"in {cold:.3f}s = {(len(queries) - 1) / cold:.1f} q/s")

    # --- Service path: build the index once, batch everything through
    # a worker pool, stream traces as JSONL.
    buffer = io.StringIO()
    index = GraphIndex(graph)
    started = time.perf_counter()
    with QueryExecutor(
        index,
        max_workers=4,
        algorithm="pruneddp+",
        budget=Budget(time_limit=10.0),
        trace_sink=TraceSink(buffer),
    ) as executor:
        outcomes = executor.run_batch(queries, deadline=30.0)
    warm = time.perf_counter() - started
    ok = sum(1 for outcome in outcomes if outcome.ok)
    print(f"shared-index batch   : {len(queries)} queries "
          f"in {warm:.3f}s = {len(queries) / warm:.1f} q/s "
          f"({ok} ok, {len(queries) - ok} failed)")
    print(f"label cache          : {index.cache_info()}")

    # Failures stay isolated: the poisoned query reports, others solve.
    poisoned = outcomes[-1]
    print(f"\npoisoned query       : status={poisoned.trace.status} "
          f"({poisoned.trace.error})")

    # Per-stage telemetry for one query.
    trace = outcomes[0].trace
    print(f"\nquery 0 telemetry    : status={trace.status} "
          f"weight={trace.weight:g} wall={trace.wall_seconds * 1e3:.2f}ms")
    for stage, seconds in trace.stages.items():
        print(f"  {stage:13s} {seconds * 1e3:8.3f}ms")

    # The JSONL stream is one strict-JSON record per query.
    first = json.loads(buffer.getvalue().splitlines()[0])
    print(f"\nJSONL trace fields   : {sorted(first)}")


if __name__ == "__main__":
    main()
