#!/usr/bin/env python
"""Drive the benchmark harness programmatically and render results.

Shows the public `repro.bench` API end to end: build a workload, run a
suite across algorithms, render an ASCII convergence chart, and dump a
machine-readable JSON record — everything the `benchmarks/` regressions
use, available to downstream experiments.

Run:  python examples/benchmark_report_demo.py
"""

import json

from repro.bench import make_workload, run_query, run_suite
from repro.bench.metrics import format_seconds, format_table
from repro.bench.plotting import progressive_chart
from repro.bench.reporting import suite_to_dict
from repro.bench.runner import PROGRESSIVE_ALGORITHMS, RATIO_CHECKPOINTS


def main() -> None:
    graph, queries = make_workload(
        "livejournal", scale="small", knum=5, kwf=8, num_queries=2, seed=3
    )
    print(f"workload: {graph} queries={len(queries)} knum={queries.knum}\n")

    # --- the paper's time-to-ratio table (one Figure 14 panel) ---------
    suite = run_suite(graph, list(queries), PROGRESSIVE_ALGORITHMS)
    rows = []
    for algorithm in PROGRESSIVE_ALGORITHMS:
        rows.append(
            [algorithm]
            + [
                format_seconds(suite.mean_time_to_ratio(algorithm, t))
                for t in RATIO_CHECKPOINTS
            ]
            + [f"{suite.mean_states(algorithm):.0f}"]
        )
    print(
        format_table(
            ["algorithm"] + [f"r<={t:g}" for t in RATIO_CHECKPOINTS] + ["states"],
            rows,
            title="time to proven ratio (mean over queries)",
        )
    )

    # --- Figure 10-style convergence chart -----------------------------
    labels = list(queries)[0]
    run = run_query("PrunedDP++", graph, labels)
    trace = [(p.elapsed, p.best_weight, p.lower_bound) for p in run.result.trace]
    print("\nPrunedDP++ convergence (UB down, LB up):")
    print(progressive_chart({"PrunedDP++": trace}, width=56, height=12))

    # --- machine-readable record ---------------------------------------
    record = suite_to_dict(
        suite, metadata={"dataset": "livejournal", "knum": queries.knum}
    )
    summary = {
        algorithm: {
            "mean_states": entry["mean_states_popped"],
            "all_optimal": entry["all_optimal"],
        }
        for algorithm, entry in record["algorithms"].items()
    }
    print("\nJSON record summary:")
    print(json.dumps(summary, indent=2))


if __name__ == "__main__":
    main()
