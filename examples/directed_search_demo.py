#!/usr/bin/env python
"""Directed keyword search: answers must follow foreign-key direction.

The paper's GST is undirected; the keyword-search lineage it builds on
(DPBF, BANKS) uses *directed* tuple graphs where an answer is a rooted
tree of forward references.  This demo shows where the two models
diverge on the same database: queries whose undirected answer "reads
against the arrows" become infeasible or costlier when direction is
enforced.

Run:  python examples/directed_search_demo.py
"""

from repro import InfeasibleQueryError, solve_gst
from repro.apps import Database
from repro.core import DirectedGSTSolver


def build_citations() -> Database:
    db = Database()
    papers = db.create_relation("paper", ["title"])
    authors = db.create_relation("author", ["name"])

    papers.insert("pagerank", title="The PageRank Citation Ranking")
    papers.insert("hits", title="Authoritative Sources Hyperlinks")
    papers.insert("survey", title="Web Search Survey")
    authors.insert("brin", name="Sergey Brin")
    authors.insert("kleinberg", name="Jon Kleinberg")

    # Authorship: author -> paper.  Citations: newer -> older.
    db.add_reference("author", "brin", "paper", "pagerank")
    db.add_reference("author", "kleinberg", "paper", "hits")
    db.add_reference("paper", "survey", "paper", "pagerank", strength=2.0)
    db.add_reference("paper", "survey", "paper", "hits", strength=2.0)
    return db


def main() -> None:
    db = build_citations()
    undirected = db.to_graph()
    directed = db.to_digraph()

    query = ["pagerank", "authoritative"]  # one token from each paper
    print(f"query: {query}\n")

    u = solve_gst(undirected, query)
    print(f"undirected optimum: weight={u.weight:g}")
    print(u.tree.render(undirected))
    print()

    d = DirectedGSTSolver(directed, query).solve()
    root_name = directed.name_of(d.tree.root)
    print(f"directed optimum  : weight={d.weight:g}, root={root_name}")
    print("  (the survey paper is the only tuple whose forward "
          "references reach both topics)\n")

    # Direction can make a query unanswerable outright.
    try:
        DirectedGSTSolver(directed, ["sergey", "jon"]).solve()
    except InfeasibleQueryError as error:
        print(f"directed query ['sergey', 'jon'] -> infeasible: {error}")
    both = solve_gst(undirected, ["sergey", "jon"])
    print(f"same query undirected -> weight={both.weight:g} "
          f"({len(both.tree.nodes)} tuples)")


if __name__ == "__main__":
    main()
