#!/usr/bin/env python
"""Keyword search over a relational bibliography database (paper Figs 11-12).

Reproduces the paper's DBLP case study in miniature: a database of
papers, authors and citations is searched by author names; the exact
GST answer (PrunedDP++) is compared with the BANKS-II approximation —
the exact answer is more compact and groups the authors more cleanly,
exactly the paper's observation.

Run:  python examples/keyword_search_demo.py
"""

from repro.apps import Database, KeywordSearchEngine
from repro.baselines import Banks2Solver


def build_bibliography() -> Database:
    db = Database()
    authors = db.create_relation("author", ["name"])
    papers = db.create_relation("paper", ["title"])

    people = {
        "han": "Jiawei Han",
        "yu": "Philip Yu",
        "pei": "Jian Pei",
        "ullman": "Jeffrey Ullman",
        "widom": "Jennifer Widom",
        "stonebraker": "Michael Stonebraker",
        "kleinberg": "Jon Kleinberg",
        "franklin": "Michael Franklin",
    }
    for key, name in people.items():
        authors.insert(key, name=name)

    works = {
        "fp": "Mining Frequent Patterns without Candidate Generation",
        "assoc": "Clustering Association Rules",
        "hash": "An Effective Hash Based Algorithm for Mining Association Rules",
        "lowell": "The Lowell Database Research Self Assessment",
        "crowd": "Crowds Clouds and Algorithms",
        "scaling": "Scaling Up Crowd Sourcing to Very Large Datasets",
        "web": "Authoritative Sources in a Hyperlinked Environment",
    }
    for key, title in works.items():
        papers.insert(key, title=title)

    wrote = [
        ("han", "fp"), ("pei", "fp"),
        ("yu", "hash"),
        ("widom", "assoc"), ("widom", "lowell"),
        ("ullman", "lowell"), ("stonebraker", "lowell"), ("franklin", "lowell"),
        ("franklin", "crowd"), ("franklin", "scaling"),
        ("kleinberg", "web"), ("kleinberg", "crowd"),
    ]
    for author, paper in wrote:
        db.add_reference("author", author, "paper", paper, strength=1.0)

    cites = [
        ("fp", "hash"), ("assoc", "hash"), ("crowd", "scaling"),
        ("lowell", "assoc"), ("web", "hash"),
    ]
    for src, dst in cites:
        db.add_reference("paper", src, "paper", dst, strength=2.0)
    return db


def main() -> None:
    db = build_bibliography()
    engine = KeywordSearchEngine(db)
    # Search by the first-name tokens that identify each person uniquely.
    query = ["jiawei", "philip", "jian", "jeffrey", "jennifer", "jon"]

    print(f"keywords: {query}\n")

    answer = engine.search(query)
    print(f"-- exact GST (PrunedDP++): weight={answer.weight:g}, "
          f"optimal={answer.optimal}, {len(answer.tree.nodes)} tuples --")
    print(answer.render(engine.graph))
    print()
    for line in answer.tuples:
        print("  " + line)

    banks = Banks2Solver(engine.graph, engine.normalize(query)).solve()
    print(f"\n-- BANKS-II approximation: weight={banks.weight:g} "
          f"({banks.weight / answer.weight:.2f}x optimal), "
          f"{len(banks.tree.nodes)} tuples --")
    print(banks.tree.render(engine.graph))

    print("\n-- top-3 distinct answers --")
    for i, alt in enumerate(engine.search_top_r(query, r=3), 1):
        print(f"  #{i}: weight={alt.weight:g}, tuples={len(alt.tree.nodes)}")


if __name__ == "__main__":
    main()
