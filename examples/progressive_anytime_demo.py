#!/usr/bin/env python
"""Progressive / anytime behaviour on a larger graph (paper Fig 10).

Runs all four progressive algorithms on a synthetic DBLP-scale workload
and prints each one's upper-bound / lower-bound convergence — the
monotone (UB decreasing, LB increasing) trajectories that define the
paper's "progressive" property — followed by a demonstration of
interrupting PrunedDP++ by time limit and by target ratio.

Run:  python examples/progressive_anytime_demo.py
"""

from repro.bench import make_workload
from repro.core import (
    BasicSolver,
    PrunedDPSolver,
    PrunedDPPlusSolver,
    PrunedDPPlusPlusSolver,
)


def main() -> None:
    graph, queries = make_workload(
        "dblp", scale="small", knum=6, kwf=8, num_queries=1, seed=11
    )
    labels = list(queries)[0]
    print(f"graph: {graph}")
    print(f"query: {list(labels)}\n")

    for solver_cls in (
        BasicSolver,
        PrunedDPSolver,
        PrunedDPPlusSolver,
        PrunedDPPlusPlusSolver,
    ):
        result = solver_cls(graph, labels).solve()
        print(f"-- {result.algorithm}: optimal weight {result.weight:g} "
              f"in {result.stats.total_seconds:.2f}s, "
              f"{result.stats.states_popped} states --")
        # Show the first few and last few progressive reports.
        trace = result.trace
        shown = trace[:4] + ([trace[-1]] if len(trace) > 4 else [])
        for point in shown:
            ub = "inf" if point.best_weight == float("inf") else f"{point.best_weight:.2f}"
            print(f"   t={point.elapsed*1e3:8.1f}ms  UB={ub:>8}  "
                  f"LB={point.lower_bound:7.2f}  ratio<={point.ratio:.3f}"
                  if point.ratio != float('inf') else
                  f"   t={point.elapsed*1e3:8.1f}ms  UB={ub:>8}  LB={point.lower_bound:7.2f}")
        print()

    # Anytime: stop as soon as a 1.5-approximation is proven.
    result = PrunedDPPlusPlusSolver(graph, labels, epsilon=0.5).solve()
    print(f"epsilon=0.5  -> weight={result.weight:g} proven ratio<={result.ratio:.3f} "
          f"after {result.stats.states_popped} states")

    # Anytime: hard 50 ms budget.
    result = PrunedDPPlusPlusSolver(graph, labels, time_limit=0.05).solve()
    print(f"50ms budget  -> weight={result.weight:g} proven ratio<={result.ratio:.3f} "
          f"(optimal proven: {result.optimal})")


if __name__ == "__main__":
    main()
