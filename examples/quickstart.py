#!/usr/bin/env python
"""Quickstart: build a labelled graph and find the optimal group Steiner tree.

Run:  python examples/quickstart.py
"""

from repro import Graph, solve_gst, top_r_trees


def main() -> None:
    # A small collaboration graph.  Labels mark topics a person works on;
    # edge weights measure how costly it is to connect two people.
    g = Graph()
    alice = g.add_node(labels=["databases"], name="alice")
    bob = g.add_node(labels=["ml"], name="bob")
    carol = g.add_node(labels=["systems"], name="carol")
    dave = g.add_node(labels=["databases", "systems"], name="dave")
    erin = g.add_node(name="erin")  # no topics: a pure connector

    g.add_edge(alice, erin, 1.0)
    g.add_edge(erin, bob, 1.0)
    g.add_edge(bob, carol, 5.0)
    g.add_edge(erin, dave, 2.0)
    g.add_edge(dave, carol, 1.0)

    # The minimum-weight connected tree touching all three topics.
    result = solve_gst(g, ["databases", "ml", "systems"])
    print(f"optimal weight : {result.weight:g}")
    print(f"proven optimal : {result.optimal}")
    print(f"members        : {sorted(g.name_of(v) for v in result.tree.nodes)}")
    print(result.tree.render(g))
    print()

    # Every solver is progressive: ask for an anytime answer instead.
    anytime = solve_gst(g, ["databases", "ml", "systems"], epsilon=0.5)
    print(f"anytime weight {anytime.weight:g} with proven ratio <= {anytime.ratio:.2f}")

    # Approximate top-r (paper Section 4.2 remark).
    trees = top_r_trees(g, ["databases", "ml", "systems"], r=3)
    print("\ntop-3 distinct answers:")
    for i, tree in enumerate(trees, 1):
        names = sorted(g.name_of(v) for v in tree.nodes)
        print(f"  #{i}: weight={tree.weight:g} members={names}")


if __name__ == "__main__":
    main()
