#!/usr/bin/env python
"""The resilience layer: every mechanism that keeps a batch alive.

Serves a workload through a :class:`repro.service.QueryExecutor` wired
with all four resilience mechanisms, demonstrating each in turn:

1. admission control — an oversized query is rejected *before* any
   search runs, with the estimated cost on the typed error;
2. cooperative cancellation — a batch is cancelled mid-flight; running
   queries return their incumbent (bounded-gap) answers, queued ones
   stop without popping a single state;
3. retry with degradation — a solver booby-trapped to crash is rescued
   one rung down the ``pruneddp++ → pruneddp → basic`` ladder;
4. circuit breaking — the crashing solver trips its breaker, later
   queries shed straight past it, and a half-open probe heals it once
   the "outage" ends.

Run:  python examples/resilient_batch_demo.py
"""

import threading
import time

import repro.core.solver as solver_mod
from repro import (
    AdmissionPolicy,
    BreakerPolicy,
    Budget,
    CancellationToken,
    GraphIndex,
    QueryExecutor,
    QueryRejectedError,
    RetryPolicy,
)
from repro.graph import generators


def banner(title: str) -> None:
    print(f"\n=== {title} " + "=" * max(0, 60 - len(title)))


def main() -> None:
    graph = generators.random_graph(
        300, 800, num_query_labels=8, label_frequency=6, seed=5
    )
    index = GraphIndex(graph)
    print(f"graph: {graph}")

    # --- 1. admission control -----------------------------------------
    banner("admission control")
    with QueryExecutor(
        index, admission=AdmissionPolicy(max_estimated_states=50_000)
    ) as ex:
        outcomes = ex.run_batch([
            ["q0", "q1"],                                # cheap: admitted
            [f"q{i}" for i in range(8)],                 # 2^8 states: rejected
        ])
    for o in outcomes:
        if isinstance(o.error, QueryRejectedError):
            print(f"  {list(o.labels)!r:50s} rejected "
                  f"(~{o.error.estimated_states:,} states)")
        else:
            print(f"  {list(o.labels)!r:50s} {o.trace.status} "
                  f"weight={o.result.weight:.1f}")

    # --- 2. cooperative cancellation ----------------------------------
    banner("cooperative cancellation")
    token = CancellationToken()
    heavy = [[f"q{i}" for i in range(6)]] * 8
    with QueryExecutor(index, max_workers=2, algorithm="basic") as ex:
        timer = threading.Timer(0.05, token.cancel, args=("demo deadline",))
        timer.start()
        outcomes = ex.run_batch(heavy, cancel_token=token)
        timer.cancel()
    statuses = [o.trace.status for o in outcomes]
    print(f"  statuses after cancel: {statuses}")
    kept = [o for o in outcomes if o.trace.status == "cancelled" and o.ok]
    if kept:
        o = kept[0]
        print(f"  incumbent kept: weight={o.result.weight:.1f} "
              f"ratio<={o.result.ratio:.2f} (bounded-gap, still valid)")

    # --- 3 + 4. retry ladder and circuit breaking ---------------------
    banner("retry ladder + circuit breaker")
    real = solver_mod.ALGORITHMS["pruneddp++"]
    outage = {"on": True}

    class Unreliable(real):
        def run_search(self, context, prepared=None):
            if outage["on"]:
                raise RuntimeError("simulated backend outage")
            return super().run_search(context, prepared)

    solver_mod.ALGORITHMS["pruneddp++"] = Unreliable
    try:
        ex = QueryExecutor(
            index,
            max_workers=1,
            retry_policy=RetryPolicy(max_retries=2),
            breaker_policy=BreakerPolicy(
                failure_threshold=2, cooldown_seconds=0.1
            ),
        )
        with ex:
            for i in range(3):
                o = ex.run_batch([["q0", f"q{i + 1}"]])[0]
                print(f"  query {i}: {o.trace.status} via {o.algorithm} "
                      f"(attempts={o.trace.attempts} "
                      f"degraded={o.trace.degraded} "
                      f"breaker_skips={o.trace.breaker_skips})")
            print(f"  breakers: { {k: v['state'] for k, v in ex.breaker_snapshot().items()} }")
            outage["on"] = False
            time.sleep(0.12)  # cooldown elapses -> half-open probe allowed
            o = ex.run_batch([["q2", "q3"]])[0]
            print(f"  after outage: {o.trace.status} via {o.algorithm} "
                  f"(degraded={o.trace.degraded})")
            print(f"  breakers: { {k: v['state'] for k, v in ex.breaker_snapshot().items()} }")
    finally:
        solver_mod.ALGORITHMS["pruneddp++"] = real

    # --- everything composes with plain budgets -----------------------
    banner("all together")
    with QueryExecutor(
        index,
        max_workers=4,
        admission=AdmissionPolicy(max_estimated_states=10**9),
        retry_policy=RetryPolicy(max_retries=1),
        breaker_policy=BreakerPolicy(),
        budget=Budget(epsilon=0.1),
    ) as ex:
        outcomes = ex.run_batch(
            [["q0", "q1"], ["q2", "q3"], ["q4", "q5"]], deadline=10.0
        )
    for o in outcomes:
        print(f"  {list(o.labels)!r:20s} {o.trace.status} "
              f"ratio<={o.result.ratio:.2f} "
              f"admitted={o.trace.admission['action'] == 'admit'}")


if __name__ == "__main__":
    main()
