#!/usr/bin/env python
"""Anytime consumption of a GST query over the wire (repro.server).

Spins up a :class:`repro.server.GSTServer` on a background thread —
standing in for a real deployment of ``python -m repro serve`` — then
queries it with the blocking client and consumes the progressive
answer stream:

* every improved incumbent arrives as a PROGRESS frame the moment the
  engine reports it; the demo prints the UB/LB ratio as frames land;
* the consumer is *anytime*: once the proven ratio drops below 1+eps
  it sends CANCEL and takes the current incumbent — the remaining
  search is work it no longer wants;
* the terminal RESULT (status "cancelled") still carries that best
  tree, the progressive contract surviving the early stop.

Run:  python examples/streaming_client_demo.py
"""

import asyncio
import threading

from repro.graph import generators
from repro.server import GSTClient, GSTServer

EPSILON = 0.20  # stop as soon as weight <= (1 + 20%) * optimum, proven
QUERY = ["q0", "q1", "q2", "q3"]


def serve_in_background(graph):
    """A self-contained stand-in for `python -m repro serve`."""
    ready = threading.Event()
    box = {}

    def run():
        async def main():
            server = GSTServer(graph, port=0, algorithm="basic")
            await server.start()
            box["server"], box["loop"] = server, asyncio.get_running_loop()
            box["done"] = asyncio.Event()
            ready.set()
            await box["done"].wait()
            await server.drain()

        asyncio.run(main())

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    ready.wait()

    def stop():
        box["loop"].call_soon_threadsafe(box["done"].set)
        thread.join()

    return box["server"], stop


def main() -> None:
    graph = generators.random_graph(
        400, 1200, num_query_labels=8, label_frequency=6, seed=5
    )
    server, stop = serve_in_background(graph)
    print(f"server listening on 127.0.0.1:{server.port}")

    with GSTClient("127.0.0.1", server.port) as client:
        info = client.hello["graph"]
        print(f"HELLO: {info['nodes']} nodes, {info['edges']} edges, "
              f"{info['labels']} labels\n")
        print(f"query {QUERY}, stopping early at ratio <= {1 + EPSILON:.2f}")
        frames = 0
        final = None
        cancelled = False
        for update in client.solve_stream(QUERY):
            frames += 1
            if update.final:
                final = update
                break
            ub = ("inf" if update.best_weight == float("inf")
                  else f"{update.best_weight:.3f}")
            ratio = ("inf" if update.ratio == float("inf")
                     else f"{update.ratio:.4f}")
            # Print a heartbeat, not every frame: big searches improve
            # their incumbent thousands of times.
            if frames % 25 == 1 or update.ratio <= 1 + EPSILON:
                print(f"  t={update.elapsed * 1e3:8.1f}ms  UB={ub:>9}  "
                      f"LB={update.lower_bound:8.3f}  ratio<={ratio}")
            if not cancelled and update.ratio <= 1 + EPSILON:
                print("  good enough — cancelling the rest of the search")
                client.cancel(update.query_id)
                cancelled = True

        print(f"\nRESULT: status={final.status} weight={final.best_weight:g} "
              f"proven ratio<={final.ratio:.4f} "
              f"({frames - 1} progress frames)")
        tree = final.result["tree"]
        print(f"tree: {len(tree['nodes'])} nodes, {len(tree['edges'])} edges")

    stop()
    print(f"server drained: {server.stats.progress_frames_sent} progress "
          f"frames streamed over {server.stats.connections_accepted} "
          f"connection(s)")


if __name__ == "__main__":
    main()
