#!/usr/bin/env python
"""Team formation in an expert network (paper Section 1, Lappas et al.).

Build a collaboration network of engineers with skills, then find the
minimum-communication-cost connected team covering a required skill
set — a Group Steiner Tree query, solved exactly and progressively.

Run:  python examples/team_formation_demo.py
"""

from repro.apps import ExpertNetwork


def build_network() -> ExpertNetwork:
    net = ExpertNetwork()
    experts = {
        "ana": ["python", "ml"],
        "boris": ["ml", "statistics"],
        "chen": ["databases"],
        "dara": ["databases", "devops"],
        "emil": ["frontend"],
        "fatima": ["devops", "security"],
        "george": ["security"],
        "hana": ["python", "frontend"],
        "ivan": [],  # manager: no listed skills, cheap to talk to
    }
    for name, skills in experts.items():
        net.add_expert(name, skills)

    collaborations = [
        ("ana", "boris", 1.0), ("ana", "ivan", 1.0), ("boris", "chen", 4.0),
        ("ivan", "chen", 1.5), ("ivan", "dara", 1.0), ("dara", "fatima", 1.0),
        ("fatima", "george", 1.0), ("emil", "hana", 1.0), ("hana", "ivan", 2.0),
        ("emil", "george", 5.0), ("chen", "dara", 1.0),
    ]
    for a, b, cost in collaborations:
        net.add_collaboration(a, b, cost)
    return net


def main() -> None:
    net = build_network()

    for required in (
        ["ml", "databases"],
        ["ml", "databases", "security"],
        ["python", "frontend", "devops", "security"],
    ):
        team = net.find_team(required)
        print(f"skills {required}:")
        print(f"  team    : {team.members}")
        print(f"  cost    : {team.communication_cost:g}  (optimal={team.optimal})")
        assert team.covers(net.expert_skills())
        print(team.tree.render(net.graph))
        print()

    # Anytime mode: accept any team within 2x of optimal, instantly.
    team = net.find_team(["ml", "databases", "security"], epsilon=1.0)
    print(f"anytime team within ratio 2: cost={team.communication_cost:g}")


if __name__ == "__main__":
    main()
