#!/usr/bin/env python
"""Cold vs. warm start: the persistent precompute store end to end.

Walks the full ``repro.store`` lifecycle on a synthetic keyword graph:

1. **Offline build** — ``build_store`` runs the Section-3.1 per-label
   Dijkstras once and materializes them (plus a graph fingerprint) in
   a store directory.
2. **Cold vs. warm serving** — the same workload through a cold
   :class:`repro.GraphIndex` and through one warm-started with
   ``attach_store``; the warm index skips every stored Dijkstra.
3. **Epsilon-aware result cache** — repeated queries are answered
   straight from the cache, including an exact answer serving a looser
   ``epsilon=0.25`` request; then the answers are persisted and served
   again by a *fresh* index (a simulated second process).
4. **Fail-closed trust** — the store refuses a graph it was not built
   for (fingerprint mismatch) instead of silently mis-indexing.

Run:  python examples/warm_start_demo.py
"""

import random
import shutil
import tempfile
import time

from repro import GraphIndex, StoreError, build_store
from repro.graph import generators


def run_workload(index: GraphIndex, queries) -> float:
    started = time.perf_counter()
    for labels in queries:
        outcome = index.execute(labels)
        assert outcome.ok, outcome.trace.error
    return time.perf_counter() - started


def main() -> None:
    graph = generators.random_graph(
        3000, 7500, num_query_labels=8, label_frequency=50, seed=7
    )
    rng = random.Random(13)
    pool = [f"q{i}" for i in range(8)]
    queries = [rng.sample(pool, rng.choice((2, 3))) for _ in range(12)]

    store_path = tempfile.mkdtemp(prefix="gst-store-")
    try:
        # ------------------------------------------------------- build
        report = build_store(
            graph, store_path, top_k=8, workload=queries
        )
        print(f"offline build        : {report.summary()}")

        # ----------------------------------------------- cold vs. warm
        cold_seconds = run_workload(GraphIndex(graph), queries)
        print(f"cold serving         : {cold_seconds:.3f}s "
              "(every query pays its own Dijkstras)")

        warm_index = GraphIndex(graph)
        warmed = warm_index.attach_store(store_path)
        warm_seconds = run_workload(warm_index, queries)
        info = warm_index.cache_info()
        print(f"warm serving         : {warm_seconds:.3f}s after "
              f"preloading {warmed} label tables "
              f"({cold_seconds / warm_seconds:.1f}x)")
        print(f"label cache          : {info['hits']} hits, "
              f"{info['misses']} misses, {info['warm_loads']} warm loads")

        # -------------------------------------- epsilon-aware reuse
        repeat = warm_index.execute(queries[0])
        print(f"repeat query         : result_cache={repeat.trace.result_cache} "
              f"in {repeat.trace.wall_seconds * 1e3:.2f} ms")
        loose = warm_index.execute(queries[0], epsilon=0.25)
        print(f"loose (eps=0.25) ask : result_cache={loose.trace.result_cache} "
              "(an exact answer serves any epsilon)")

        persisted = warm_index.save_results()
        print(f"persisted            : {persisted} proven answers")

        second_process = GraphIndex.open(store_path, graph)
        served = second_process.execute(queries[0])
        print(f"fresh index          : result_cache={served.trace.result_cache} "
              "(answer survived the restart)")

        # ------------------------------------------------ fail closed
        drifted = generators.random_graph(
            3000, 7500, num_query_labels=8, label_frequency=50, seed=8
        )
        try:
            GraphIndex(drifted).attach_store(store_path)
        except StoreError as exc:
            print(f"drifted graph        : rejected ({type(exc).__name__})")
    finally:
        shutil.rmtree(store_path, ignore_errors=True)


if __name__ == "__main__":
    main()
