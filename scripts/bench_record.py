#!/usr/bin/env python
"""Record / replay the benchmark suite's headline ratios.

Nine PRs of performance claims live in the benchmark suite, but until
now nothing pinned them: a regression that halved a speedup would sail
through CI as long as it stayed above each test's hard floor.  This
script closes that hole by snapshotting the *trajectory* — the actual
measured headline ratios — into a committed ``BENCH_*.json``, and
replaying them against that baseline in the ``perf-regression`` CI job.

Record a baseline (done once per PR that moves a headline)::

    PYTHONPATH=src python scripts/bench_record.py --out BENCH_pr10.json

Replay and gate (what CI runs)::

    PYTHONPATH=src python scripts/bench_record.py --check BENCH_pr10.json

``--check`` exits non-zero if any replayed headline ratio falls more
than ``--slack`` (default 20%) below its recorded value.  Ratios are
dimensionless speedups (this-path vs that-path on the same host), so
they transfer across machines far better than absolute seconds — but
the fleet headline needs real cores, so it records/replays as ``null``
on hosts with fewer than 4 and is skipped by the comparison there.
"""

from __future__ import annotations

import argparse
import importlib
import json
import os
import platform
import sys
from typing import Callable, Dict, Optional

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
for path in (os.path.join(REPO_ROOT, "src"), os.path.join(REPO_ROOT, "benchmarks")):
    if path not in sys.path:
        sys.path.insert(0, path)

FLEET_MIN_CPUS = 4
DEFAULT_SLACK = 0.20

# Per-headline slack overrides for ratios whose denominator is a few
# milliseconds of wall clock (high run-to-run jitter even on one host).
# The warm-start ratio sits at ~20x against a 1.5x hard floor, so a
# wide band still catches any real regression long before the floor.
SLACK_OVERRIDES = {"store_warmstart_speedup": 0.50}


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


def _ratio(module: str, fn: str, key: str = "speedup") -> Callable[[], float]:
    def run() -> float:
        rows = getattr(importlib.import_module(module), fn)()
        return float(rows[key])

    return run


def _fleet_ratio() -> Optional[float]:
    if _usable_cpus() < FLEET_MIN_CPUS:
        return None
    return _ratio("test_fleet_throughput", "run_fleet_comparison")()


# Headline name -> (runner, source hint).  A runner returning None means
# "cannot be measured on this host" and the headline records as null.
HEADLINES: Dict[str, tuple] = {
    "csr_preprocessing_speedup": (
        _ratio("test_csr_kernels", "run_preprocessing_comparison"),
        "benchmarks/test_csr_kernels.py (CSR/Dial vs legacy Dijkstra)",
    ),
    "csr_end_to_end_speedup": (
        _ratio("test_csr_kernels", "run_end_to_end_comparison"),
        "benchmarks/test_csr_kernels.py (frozen vs legacy pruneddp++)",
    ),
    "store_warmstart_speedup": (
        _ratio("test_store_warmstart", "run_warmstart_comparison"),
        "benchmarks/test_store_warmstart.py (warm vs cold first pass)",
    ),
    "service_throughput_speedup": (
        _ratio("test_service_throughput", "run_serving_comparison"),
        "benchmarks/test_service_throughput.py (shared index vs cold solves)",
    ),
    "fleet_speedup": (
        _fleet_ratio,
        "benchmarks/test_fleet_throughput.py (4 shm workers vs 1 process, "
        f"needs >= {FLEET_MIN_CPUS} cpus)",
    ),
}


def measure(names=None) -> dict:
    headlines = {}
    for name, (runner, source) in HEADLINES.items():
        if names is not None and name not in names:
            continue
        print(f"measuring {name} ...", flush=True)
        ratio = runner()
        if ratio is None:
            print(f"  {name}: skipped (host cannot measure it)", flush=True)
        else:
            print(f"  {name}: {ratio:.2f}x", flush=True)
        headlines[name] = {
            "ratio": None if ratio is None else round(ratio, 4),
            "source": source,
        }
    return headlines


def cmd_record(out_path: str) -> int:
    headlines = measure()
    record = {
        "schema": 1,
        "host": {
            "python": platform.python_version(),
            "cpus": _usable_cpus(),
            "platform": platform.platform(),
        },
        "headlines": headlines,
    }
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"baseline written to {out_path}")
    return 0


def cmd_check(baseline_path: str, slack: float) -> int:
    with open(baseline_path, "r", encoding="utf-8") as handle:
        baseline = json.load(handle)
    recorded = baseline["headlines"]
    gated = {
        name for name, entry in recorded.items() if entry["ratio"] is not None
    }
    replayed = measure(names=set(recorded))

    failures = []
    print(f"\n== headline trajectory vs {baseline_path} "
          f"(slack {slack:.0%}) ==")
    for name, entry in sorted(recorded.items()):
        base = entry["ratio"]
        now = replayed.get(name, {}).get("ratio")
        if base is None:
            status = "no baseline (recorded on a host that skipped it)"
            if now is not None:
                status = f"{now:.2f}x now, no baseline — passes by default"
            print(f"  {name:32s} {status}")
            continue
        if now is None:
            # The baseline host could measure it but this one cannot
            # (e.g. too few cores for the fleet) — not a regression.
            print(f"  {name:32s} base {base:.2f}x, unmeasurable here — skipped")
            continue
        entry_slack = SLACK_OVERRIDES.get(name, slack)
        floor = base * (1.0 - entry_slack)
        verdict = "ok" if now >= floor else "REGRESSED"
        print(
            f"  {name:32s} base {base:6.2f}x  now {now:6.2f}x  "
            f"floor {floor:6.2f}x  {verdict}"
        )
        if now < floor:
            failures.append((name, base, now, floor))

    if failures:
        print(f"\n{len(failures)} headline(s) degraded more than {slack:.0%}:")
        for name, base, now, floor in failures:
            print(f"  {name}: {now:.2f}x < floor {floor:.2f}x (base {base:.2f}x)")
        return 1
    print(f"\nall measurable headlines within {slack:.0%} of the baseline "
          f"({len(gated)} recorded, {len(replayed)} replayed)")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    group = parser.add_mutually_exclusive_group(required=True)
    group.add_argument("--out", metavar="PATH",
                       help="measure all headlines and write a baseline")
    group.add_argument("--check", metavar="PATH",
                       help="replay headlines and fail on >slack degradation")
    parser.add_argument("--slack", type=float, default=DEFAULT_SLACK,
                        help="allowed fractional degradation (default 0.20)")
    args = parser.parse_args(argv)
    if args.out:
        return cmd_record(args.out)
    return cmd_check(args.check, args.slack)


if __name__ == "__main__":
    raise SystemExit(main())
