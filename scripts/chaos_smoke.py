#!/usr/bin/env python
"""Chaos smoke: SIGKILL one process worker mid-batch, lose nothing.

The durability layer's acceptance check, runnable anywhere (CI job,
cron, laptop): a batch of progressive queries runs through
:class:`repro.service.durability.ProcessWorkerPool` with a checkpoint
cadence and a one-shot chaos hook that makes the first worker to write
two checkpoints ``kill -9`` itself.  The run fails loudly unless

* the batch completes — every query delivers an outcome (none lost,
  none wedged);
* at least one worker was actually killed and respawned
  (``worker_restarts >= 1`` — otherwise the chaos never fired and the
  smoke proved nothing);
* the killed query resumed from its checkpoint (``resumed_from`` set)
  and every answer matches an uninterrupted in-process run exactly.

Exit code 0 on success, 1 with a diagnostic on any violation.
"""

from __future__ import annotations

import random
import sys
import tempfile

NUM_QUERIES = 6
CHECKPOINT_EVERY = 100


def main() -> int:
    from repro.graph import generators
    from repro.service import GraphIndex, ProcessWorkerPool, WorkerPolicy

    graph = generators.random_graph(
        400, 1200, num_query_labels=8, label_frequency=8, seed=7
    )
    rng = random.Random(23)
    pool_labels = [f"q{i}" for i in range(8)]
    queries = [tuple(rng.sample(pool_labels, 5)) for _ in range(NUM_QUERIES)]
    index = GraphIndex(graph)

    expected = {}
    for labels in queries:
        outcome = index.execute(labels, algorithm="pruneddp++")
        assert outcome.ok, f"baseline solve failed for {labels}"
        expected[labels] = outcome.result.weight

    policy = WorkerPolicy(
        checkpoint_every_pops=CHECKPOINT_EVERY,
        checkpoint_every_seconds=None,
        chaos_kill_after_checkpoints=2,
    )
    failures = []
    with tempfile.TemporaryDirectory() as checkpoint_dir:
        pool = ProcessWorkerPool(
            index, checkpoint_dir=checkpoint_dir, policy=policy
        )
        try:
            outcomes = [
                pool.execute(labels, algorithm="pruneddp++")
                for labels in queries
            ]
        finally:
            pool.shutdown()

    if len(outcomes) != NUM_QUERIES:
        failures.append(
            f"lost queries: {len(outcomes)} of {NUM_QUERIES} delivered"
        )
    restarts = sum(o.trace.worker_restarts for o in outcomes)
    if restarts < 1:
        failures.append(
            "chaos hook never fired: no worker was killed and respawned"
        )
    resumed = [o for o in outcomes if o.trace.resumed_from is not None]
    if restarts >= 1 and not resumed:
        failures.append("a worker was restarted but nothing resumed")
    for outcome in outcomes:
        if not outcome.ok:
            failures.append(
                f"query {outcome.labels} failed: {outcome.trace.error}"
            )
            continue
        want = expected[outcome.labels]
        if abs(outcome.result.weight - want) > 1e-9:
            failures.append(
                f"query {outcome.labels}: weight {outcome.result.weight} "
                f"!= uninterrupted {want}"
            )

    if failures:
        for failure in failures:
            print(f"chaos smoke FAILED: {failure}", file=sys.stderr)
        return 1
    print(
        f"chaos smoke clean: {NUM_QUERIES} queries, {restarts} worker "
        f"restart(s), {len(resumed)} resumed from checkpoint, all "
        "weights match the uninterrupted run"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
