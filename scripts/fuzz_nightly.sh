#!/usr/bin/env bash
# Long differential-fuzz run for nightly/local use.
#
# The CI smoke step covers a few hundred seeded rounds in ~30 s; this
# script is the deep end: thousands of rounds, larger graphs, the
# metamorphic transforms on every 10th round, engine-level incumbent
# certification, and an epsilon (anytime-mode) sweep.  Minimized
# reproducers for any failure land in $OUT_DIR; replay one with the
# `repro verify` command printed inside its .json record.
#
# Environment knobs (all optional):
#   ROUNDS      rounds per pass            (default 2000)
#   SEED        first seed of the pass     (default: day-of-year * 10000)
#   MAX_NODES   largest random graph       (default 24)
#   OUT_DIR     reproducer directory       (default fuzz-failures)
set -euo pipefail

cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

ROUNDS="${ROUNDS:-2000}"
SEED="${SEED:-$((10#$(date +%j) * 10000))}"
MAX_NODES="${MAX_NODES:-24}"
OUT_DIR="${OUT_DIR:-fuzz-failures}"

echo "== exact differential sweep (seed $SEED, $ROUNDS rounds) =="
python -m repro fuzz --seed "$SEED" --rounds "$ROUNDS" \
    --max-nodes "$MAX_NODES" --metamorphic 10 --debug-certify \
    --out "$OUT_DIR"

echo "== anytime-mode sweep (epsilon 0.5) =="
python -m repro fuzz --seed "$((SEED + ROUNDS))" --rounds "$((ROUNDS / 4))" \
    --max-nodes "$MAX_NODES" --epsilon 0.5 --out "$OUT_DIR"

echo "== crash-recovery rounds (kill -9 + checkpoint resume) =="
# Each round SIGKILLs a process worker mid-search and requires the
# respawned worker to resume from its checkpoint and match an
# uninterrupted run exactly (see scripts/chaos_smoke.py).
CHAOS_ROUNDS="${CHAOS_ROUNDS:-5}"
for round in $(seq 1 "$CHAOS_ROUNDS"); do
    echo "-- chaos round $round/$CHAOS_ROUNDS"
    python scripts/chaos_smoke.py
done

echo "nightly fuzz clean: no disagreements, no certification failures," \
     "crash recovery lossless across $CHAOS_ROUNDS chaos rounds"
