#!/usr/bin/env python
"""Metrics smoke: the observability deployment shape, end to end.

The :mod:`repro.obs` acceptance check, runnable anywhere (CI job, cron,
laptop): generate a graph, launch a real ``python -m repro serve
--metrics-port 0`` subprocess, run a query over TCP, then scrape the
HTTP exposition endpoint exactly as Prometheus would.  The run fails
loudly unless

* the server announces both its query port and its metrics port;
* after one query, the ``STATS`` frame reports the query and carries a
  registry snapshot that agrees with it;
* ``GET /metrics`` returns a body that parses as valid Prometheus text
  exposition format (strict grammar, via
  :func:`repro.obs.parse_exposition`);
* the scraped ``gst_queries_total`` and ``gst_server_events_total``
  counters are non-zero — the registry saw the query the wire served;
* SIGTERM drains gracefully and the server exits 0.

Exit code 0 on success, 1 with a diagnostic on any violation.
"""

from __future__ import annotations

import os
import re
import signal
import subprocess
import sys
import tempfile
import time
import urllib.request

QUERY = ["q0", "q1", "q2"]


def fail(message: str) -> int:
    print(f"metrics_smoke: FAIL: {message}", file=sys.stderr)
    return 1


def main() -> int:
    from repro.graph import generators
    from repro.graph.io import save_graph
    from repro.obs import parse_exposition
    from repro.server import GSTClient

    tmp = tempfile.mkdtemp(prefix="metrics-smoke-")
    stem = os.path.join(tmp, "graph")
    graph = generators.random_graph(
        200, 600, num_query_labels=6, label_frequency=5, seed=11
    )
    save_graph(graph, stem)

    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--graph", stem, "--port", "0",
            "--metrics-port", "0", "--algorithm", "basic",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    try:
        banner = proc.stdout.readline()
        match = re.search(r"on \S+:(\d+)", banner)
        if not match:
            return fail(f"no port announcement in banner: {banner!r}")
        port = int(match.group(1))
        metrics_line = proc.stdout.readline()
        match = re.search(r"metrics: http://\S+:(\d+)/metrics", metrics_line)
        if not match:
            return fail(f"no metrics-port announcement: {metrics_line!r}")
        metrics_port = int(match.group(1))

        with GSTClient("127.0.0.1", port, timeout=60) as client:
            final = client.solve(QUERY)
            if not final.final or final.status != "ok":
                return fail(f"query did not finish ok: {final}")
            stats = client.stats()
        if stats["server"]["results_sent"] != 1:
            return fail(f"STATS frame missed the query: {stats['server']}")
        snapshot = stats["metrics"]
        if "gst_queries_total" not in snapshot:
            return fail("registry snapshot lacks gst_queries_total")

        url = f"http://127.0.0.1:{metrics_port}/metrics"
        with urllib.request.urlopen(url, timeout=30) as response:
            if response.status != 200:
                return fail(f"GET /metrics returned {response.status}")
            content_type = response.headers.get("Content-Type", "")
            if not content_type.startswith("text/plain"):
                return fail(f"unexpected content type: {content_type!r}")
            text = response.read().decode("utf-8")

        try:
            families = parse_exposition(text)
        except ValueError as exc:
            return fail(f"exposition is not valid Prometheus text: {exc}")

        def total(name: str) -> float:
            family = families.get(name)
            if family is None:
                return 0.0
            return sum(value for _, _, value in family["samples"])

        queries_total = total("gst_queries_total")
        if queries_total < 1:
            return fail(
                f"gst_queries_total is {queries_total}; the scrape did not "
                "see the query the wire served"
            )
        if total("gst_server_events_total") < 1:
            return fail("gst_server_events_total is zero after a query")
        if families.get("gst_queries_total", {}).get("type") != "counter":
            return fail("gst_queries_total is not typed as a counter")

        proc.send_signal(signal.SIGTERM)
        try:
            returncode = proc.wait(timeout=60)
        except subprocess.TimeoutExpired:
            proc.kill()
            return fail("server did not drain within 60s of SIGTERM")
        if returncode != 0:
            return fail(f"drain exited {returncode}, expected 0")

        print(
            f"metrics_smoke: OK — {len(families)} families scraped, "
            f"gst_queries_total={queries_total:g}, exposition valid, "
            "drained exit 0"
        )
        return 0
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()


if __name__ == "__main__":
    started = time.perf_counter()
    code = main()
    print(
        f"metrics_smoke: {time.perf_counter() - started:.1f}s",
        file=sys.stderr,
    )
    sys.exit(code)
