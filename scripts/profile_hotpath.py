#!/usr/bin/env python
"""Profile the PrunedDP++ hot path, frozen (CSR) versus unfrozen (legacy).

Runs cProfile over a batch of solves on the DBLP-like generator — once
on the raw adjacency-list graph (legacy kernels) and once after
``Graph.freeze()`` (CSR snapshot: packed state keys, flat adjacency,
Dial preprocessing, memoized feasible construction) — and prints each
side's top 25 functions by cumulative time plus the wall-clock ratio.

    PYTHONPATH=src python scripts/profile_hotpath.py
    PYTHONPATH=src python scripts/profile_hotpath.py --solves 5 --top 40
"""

from __future__ import annotations

import argparse
import cProfile
import pstats
import sys
import time

from repro.core.algorithms import PrunedDPPlusPlusSolver
from repro.graph import generators

GRAPH_KW = dict(
    num_papers=900,
    num_authors=600,
    num_query_labels=8,
    label_frequency=16,
    seed=7,
)
QUERY = [f"q{i}" for i in range(6)]


def profile_batch(graph, solves: int, top: int, title: str) -> float:
    profiler = cProfile.Profile()
    started = time.perf_counter()
    profiler.enable()
    for _ in range(solves):
        result = PrunedDPPlusPlusSolver(graph, QUERY).solve()
        assert result.optimal
    profiler.disable()
    elapsed = time.perf_counter() - started
    print(f"\n=== {title}: {solves} solves in {elapsed:.3f}s ===")
    stats = pstats.Stats(profiler, stream=sys.stdout)
    stats.strip_dirs().sort_stats("cumulative").print_stats(top)
    return elapsed


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--solves", type=int, default=3,
                        help="solves per profiled batch (default 3)")
    parser.add_argument("--top", type=int, default=25,
                        help="stats rows to print per side (default 25)")
    parser.add_argument("--seed", type=int, default=GRAPH_KW["seed"],
                        help="generator seed")
    args = parser.parse_args(argv)

    kwargs = dict(GRAPH_KW, seed=args.seed)
    legacy_graph = generators.dblp_like(**kwargs)
    frozen_graph = generators.dblp_like(**kwargs)

    legacy = profile_batch(
        legacy_graph, args.solves, args.top, "legacy (unfrozen graph)"
    )

    freeze_started = time.perf_counter()
    snapshot = frozen_graph.freeze()
    freeze_seconds = time.perf_counter() - freeze_started
    print(f"\nfreeze(): {freeze_seconds * 1e3:.1f} ms "
          f"({snapshot.num_nodes} nodes, {snapshot.num_edges} edges, "
          f"dial lane {'on' if snapshot.int_adjacency is not None else 'off'})")

    csr = profile_batch(
        frozen_graph, args.solves, args.top, "csr (frozen graph)"
    )

    total_csr = csr + freeze_seconds
    print(f"\nlegacy {legacy:.3f}s vs csr {total_csr:.3f}s "
          f"(freeze amortized) -> {legacy / total_csr:.2f}x")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
