#!/usr/bin/env python
"""Regenerate every paper experiment in one run, outside pytest.

Writes each figure/table's text plus a machine-readable JSON record to
an output directory.  The pytest benchmarks (``pytest benchmarks/
--benchmark-only``) remain the asserted regression form; this script is
the human-driven form with scale control:

    python scripts/reproduce_all.py --scale tiny --out results/
    python scripts/reproduce_all.py --scale small          # the default
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from repro.bench import figures
from repro.bench.reporting import environment_record


def experiments(scale: str):
    """Yield (name, thunk) for every regenerable experiment."""
    yield "fig04_time_knum_dblp", lambda: figures.figure_time_vs_ratio_knum(
        "dblp", scale=scale
    )
    yield "fig05_time_knum_imdb", lambda: figures.figure_time_vs_ratio_knum(
        "imdb", scale=scale
    )
    yield "fig06_time_kwf_dblp", lambda: figures.figure_time_vs_ratio_kwf(
        "dblp", scale=scale
    )
    yield "fig07_time_kwf_imdb", lambda: figures.figure_time_vs_ratio_kwf(
        "imdb", scale=scale
    )
    yield "fig08_memory_knum_dblp", lambda: figures.figure_memory_vs_ratio_knum(
        "dblp", scale=scale
    )
    yield "fig09_memory_kwf_dblp", lambda: figures.figure_memory_vs_ratio_kwf(
        "dblp", scale=scale
    )
    yield "fig10_progressive_dblp", lambda: figures.figure_progressive_bounds(
        "dblp", scale=scale
    )
    yield "fig10_progressive_imdb", lambda: figures.figure_progressive_bounds(
        "imdb", scale=scale
    )
    yield "fig14_powerlaw", lambda: figures.figure_time_vs_ratio_knum(
        "livejournal", scale=scale
    )
    yield "fig15_road", lambda: figures.figure_time_vs_ratio_knum(
        "roadusa", scale=scale
    )
    yield "fig16_large_knum", lambda: figures.figure_large_knum(
        "dblp", scale=scale
    )
    yield "table2_banks_dblp", lambda: figures.table_banks_comparison(
        "dblp", scale=scale
    )
    yield "table3_banks_imdb", lambda: figures.table_banks_comparison(
        "imdb", scale=scale
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="small",
                        choices=["tiny", "small", "medium"])
    parser.add_argument("--out", default="reproduction-results")
    parser.add_argument("--only", default=None,
                        help="substring filter on experiment names")
    args = parser.parse_args(argv)

    os.makedirs(args.out, exist_ok=True)
    manifest = {"environment": environment_record(), "scale": args.scale,
                "experiments": {}}
    total_start = time.perf_counter()
    for name, thunk in experiments(args.scale):
        if args.only and args.only not in name:
            continue
        print(f"[{name}] running...", flush=True)
        started = time.perf_counter()
        result = thunk()
        elapsed = time.perf_counter() - started
        path = os.path.join(args.out, f"{name}.txt")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(result.text + "\n")
        manifest["experiments"][name] = {
            "seconds": round(elapsed, 3),
            "output": path,
        }
        print(f"[{name}] done in {elapsed:.1f}s -> {path}", flush=True)
    manifest["total_seconds"] = round(time.perf_counter() - total_start, 3)
    manifest_path = os.path.join(args.out, "manifest.json")
    with open(manifest_path, "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2, sort_keys=True)
    print(f"\nmanifest: {manifest_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
