#!/usr/bin/env python
"""Server smoke: the streaming deployment shape, end to end.

The :mod:`repro.server` acceptance check, runnable anywhere (CI job,
cron, laptop): generate a graph, launch a real ``python -m repro
serve`` subprocess, query it over TCP with the blocking client, then
SIGTERM it.  The run fails loudly unless

* the client observes at least one ``PROGRESS`` frame before the
  ``RESULT`` — the wire actually streams the anytime UB/LB curve, it
  does not batch it;
* the UB/LB ratio across the stream is non-increasing (the
  progressive contract survives serialization);
* the final answer *certifies*: the tree shipped over the wire is
  re-validated against the graph from first principles by
  :func:`repro.verify.certify_result`;
* SIGTERM drains gracefully — the server exits 0 after flushing its
  trace sink, and every line in the sink is whole JSON.

Exit code 0 on success, 1 with a diagnostic on any violation.
"""

from __future__ import annotations

import json
import os
import re
import signal
import subprocess
import sys
import tempfile
import time

QUERY = ["q0", "q1", "q2"]


def fail(message: str) -> int:
    print(f"server_smoke: FAIL: {message}", file=sys.stderr)
    return 1


def main() -> int:
    from repro.core.result import GSTResult, SearchStats
    from repro.core.tree import SteinerTree
    from repro.graph import generators
    from repro.graph.io import save_graph
    from repro.server import GSTClient
    from repro.verify.certify import certify_result

    tmp = tempfile.mkdtemp(prefix="server-smoke-")
    stem = os.path.join(tmp, "graph")
    traces = os.path.join(tmp, "traces.jsonl")
    graph = generators.random_graph(
        200, 600, num_query_labels=6, label_frequency=5, seed=11
    )
    save_graph(graph, stem)

    # --port 0 lets the OS pick; the server announces the bound port on
    # stdout, which is the smoke's only coupling to its output format.
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--graph", stem, "--port", "0",
            "--algorithm", "basic", "--traces", traces,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    try:
        banner = proc.stdout.readline()
        match = re.search(r"on \S+:(\d+)", banner)
        if not match:
            return fail(f"no port announcement in banner: {banner!r}")
        port = int(match.group(1))

        updates = []
        with GSTClient("127.0.0.1", port, timeout=60) as client:
            for update in client.solve_stream(QUERY):
                updates.append(update)
        progress = [u for u in updates if not u.final]
        final = updates[-1]
        if not progress:
            return fail("no PROGRESS frame arrived before the RESULT")
        if not final.final:
            return fail("stream did not end with a RESULT frame")
        ratios = [u.ratio for u in updates]
        if any(b > a + 1e-9 for a, b in zip(ratios, ratios[1:])):
            return fail(f"UB/LB ratio increased along the stream: {ratios}")

        # Rebuild a GSTResult from the wire payload and certify it
        # against the live graph — the answer a remote client holds is
        # exactly as trustworthy as an in-process one.
        frame = final.result
        result = GSTResult(
            algorithm=frame["algorithm"],
            labels=tuple(QUERY),
            tree=SteinerTree(
                [tuple(edge) for edge in frame["tree"]["edges"]],
                nodes=frame["tree"]["nodes"],
            ),
            weight=frame["weight"],
            lower_bound=frame["lower_bound"],
            optimal=frame["optimal"],
            stats=SearchStats(),
        )
        certificate = certify_result(graph, result, labels=QUERY)
        if not certificate.ok:
            return fail(f"answer failed certification: {certificate.violations}")

        proc.send_signal(signal.SIGTERM)
        try:
            returncode = proc.wait(timeout=60)
        except subprocess.TimeoutExpired:
            proc.kill()
            return fail("server did not drain within 60s of SIGTERM")
        if returncode != 0:
            return fail(f"drain exited {returncode}, expected 0")

        with open(traces, encoding="utf-8") as handle:
            records = [json.loads(line) for line in handle]
        if len(records) != 1 or records[0]["status"] != "ok":
            return fail(f"trace sink not flushed correctly: {records}")

        print(
            f"server_smoke: OK — {len(progress)} progress frames, final "
            f"weight {final.best_weight:g} certified, drained exit 0 "
            f"({len(records)} trace record)"
        )
        return 0
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()


if __name__ == "__main__":
    started = time.perf_counter()
    code = main()
    print(f"server_smoke: {time.perf_counter() - started:.1f}s", file=sys.stderr)
    sys.exit(code)
