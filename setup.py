"""Legacy setup shim.

``pip install -e .`` on modern pip uses PEP 660, which needs the
``wheel`` package; in fully offline environments without it, install
with ``python setup.py develop`` (or add ``src/`` to a ``.pth`` file).
All real metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
