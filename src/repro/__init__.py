"""repro — Efficient and Progressive Group Steiner Tree Search.

A complete, pure-Python reproduction of Li, Qin, Yu & Mao,
*"Efficient and Progressive Group Steiner Tree Search"*, SIGMOD 2016:
the Basic / PrunedDP / PrunedDP+ / PrunedDP++ progressive algorithms,
the DPBF prior state of the art, the BANKS approximation baselines, and
the keyword-search and team-formation applications the paper motivates.

Quickstart::

    from repro import Graph, solve_gst

    g = Graph()
    a = g.add_node(labels=["database"])
    b = g.add_node(labels=["graphs"])
    c = g.add_node()
    g.add_edge(a, c, 1.0)
    g.add_edge(c, b, 2.0)

    result = solve_gst(g, ["database", "graphs"])
    print(result.weight, result.optimal)   # 3.0 True
"""

from .errors import (
    ReproError,
    GraphError,
    QueryError,
    InfeasibleQueryError,
    LimitExceededError,
    QueryRejectedError,
    QueryCancelledError,
    CircuitOpenError,
    ProtocolError,
    RemoteQueryError,
    StoreError,
    StoreCorruptError,
    StoreVersionError,
    StoreFingerprintError,
    WorkerCrashedError,
)
from .graph import Graph
from .core import (
    Budget,
    GSTQuery,
    SteinerTree,
    GSTResult,
    ProgressPoint,
    BasicSolver,
    PrunedDPSolver,
    PrunedDPPlusSolver,
    PrunedDPPlusPlusSolver,
    DPBFSolver,
    solve_gst,
    top_r_trees,
    exact_top_r_trees,
)
from .service import (
    AdmissionController,
    AdmissionPolicy,
    BreakerPolicy,
    CancellationToken,
    Checkpointer,
    CircuitBreaker,
    GraphIndex,
    ProcessWorkerPool,
    QueryExecutor,
    QueryOutcome,
    QueryTrace,
    RetryPolicy,
    TraceSink,
    WorkerPolicy,
    checkpointed_execute,
    resume_query,
)
from .store import (
    PrecomputeStore,
    ResultCache,
    build_store,
)
from .server import (
    AsyncGSTClient,
    GSTClient,
    GSTServer,
    StreamUpdate,
)
from .obs import (
    MetricsRegistry,
    get_registry,
)

__version__ = "1.0.0"

__all__ = [
    "Graph",
    "Budget",
    "GraphIndex",
    "QueryExecutor",
    "QueryOutcome",
    "QueryTrace",
    "TraceSink",
    "GSTQuery",
    "SteinerTree",
    "GSTResult",
    "ProgressPoint",
    "BasicSolver",
    "PrunedDPSolver",
    "PrunedDPPlusSolver",
    "PrunedDPPlusPlusSolver",
    "DPBFSolver",
    "solve_gst",
    "top_r_trees",
    "exact_top_r_trees",
    "ReproError",
    "GraphError",
    "QueryError",
    "InfeasibleQueryError",
    "LimitExceededError",
    "QueryRejectedError",
    "QueryCancelledError",
    "CircuitOpenError",
    "ProtocolError",
    "RemoteQueryError",
    "StoreError",
    "StoreCorruptError",
    "StoreVersionError",
    "StoreFingerprintError",
    "WorkerCrashedError",
    "PrecomputeStore",
    "ResultCache",
    "build_store",
    "CancellationToken",
    "AdmissionController",
    "AdmissionPolicy",
    "RetryPolicy",
    "BreakerPolicy",
    "CircuitBreaker",
    "Checkpointer",
    "ProcessWorkerPool",
    "WorkerPolicy",
    "checkpointed_execute",
    "resume_query",
    "GSTServer",
    "GSTClient",
    "AsyncGSTClient",
    "StreamUpdate",
    "MetricsRegistry",
    "get_registry",
    "__version__",
]
