"""Applications the paper motivates: keyword search and team formation."""

from .relational import Database, Relation, Row, tokenize
from .keyword_search import KeywordAnswer, KeywordSearchEngine
from .team_formation import ExpertNetwork, Team

__all__ = [
    "Database",
    "Relation",
    "Row",
    "tokenize",
    "KeywordAnswer",
    "KeywordSearchEngine",
    "ExpertNetwork",
    "Team",
]
