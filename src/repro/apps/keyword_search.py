"""Keyword search over a relational database via GST (paper Section 1).

Given a :class:`~repro.apps.relational.Database`, a keyword query is a
set of lower-case terms; the answer is a set of connected tuples that
covers every keyword with minimum total connection weight — i.e. the
Group Steiner Tree over the tuple graph where each keyword's group is
the set of tuples containing it.

:class:`KeywordSearchEngine` wraps the whole pipeline (graph build,
query validation, progressive solve, answer rendering) and supports
top-r answers per the paper's remark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

from ..core.result import GSTResult
from ..core.topr import exact_top_r_trees, top_r_trees
from ..core.tree import SteinerTree
from ..errors import InfeasibleQueryError
from ..graph.graph import Graph
from ..service.index import GraphIndex
from .relational import Database, tokenize

__all__ = ["KeywordAnswer", "KeywordSearchEngine"]


@dataclass
class KeywordAnswer:
    """A keyword-search result: the tree plus its tuple rendering."""

    keywords: Tuple[str, ...]
    tree: SteinerTree
    weight: float
    optimal: bool
    tuples: List[str]

    def render(self, graph: Graph) -> str:
        """ASCII tree of the answer (the paper's Fig 11/12/17/18 style)."""
        return self.tree.render(graph)


class KeywordSearchEngine:
    """Progressive keyword search over a relational database.

    ``directed=True`` switches to the BANKS/DPBF answer model: the
    tuple graph keeps foreign-key direction and an answer is a rooted
    tree of forward references (solved by
    :class:`~repro.core.directed.DirectedGSTSolver`; ``algorithm`` and
    top-r modes apply to the default undirected model only).
    """

    def __init__(
        self,
        database: Database,
        *,
        algorithm: str = "pruneddp++",
        directed: bool = False,
    ) -> None:
        self.database = database
        self.algorithm = algorithm
        self.directed = directed
        self.graph = database.to_digraph() if directed else database.to_graph()
        # The undirected engine serves all queries from one shared index
        # so repeated keywords amortize their per-label Dijkstras (the
        # directed model has its own solver and no index yet).
        self.index = None if directed else GraphIndex(self.graph)

    # ------------------------------------------------------------------
    def normalize(self, keywords: Iterable[str]) -> Tuple[str, ...]:
        """Lower-case and tokenize the raw keywords; reject empties."""
        normalized: List[str] = []
        for keyword in keywords:
            tokens = tokenize(keyword)
            if not tokens:
                raise InfeasibleQueryError(f"keyword {keyword!r} has no tokens")
            normalized.extend(tokens)
        # Preserve order, drop duplicates.
        seen = set()
        unique = []
        for token in normalized:
            if token not in seen:
                seen.add(token)
                unique.append(token)
        return tuple(unique)

    def search(
        self,
        keywords: Iterable[str],
        *,
        time_limit: Optional[float] = None,
        epsilon: float = 0.0,
        **solver_kwargs,
    ) -> KeywordAnswer:
        """Best connected-tuple answer covering every keyword."""
        terms = self.normalize(keywords)
        if self.directed:
            from ..core.directed import DirectedGSTSolver

            result = DirectedGSTSolver(
                self.graph,
                terms,
                time_limit=time_limit,
                epsilon=epsilon,
                **solver_kwargs,
            ).solve()
        else:
            result = self.index.solve(
                terms,
                algorithm=self.algorithm,
                time_limit=time_limit,
                epsilon=epsilon,
                **solver_kwargs,
            )
        return self._to_answer(terms, result)

    def search_top_r(
        self,
        keywords: Iterable[str],
        r: int,
        *,
        exact: bool = False,
        **solver_kwargs,
    ) -> List[KeywordAnswer]:
        """Top-r answers.

        ``exact=False`` (default) uses the paper's Section 4.2 remark:
        the best ``r`` distinct near-optimal trees the progressive
        search encountered — cheap, top-1 exact, rest heuristic.
        ``exact=True`` runs the exclusion-branching enumeration: the
        true ``r`` lightest reduced answers, at ~``r·|T|`` solves.
        """
        if self.directed:
            raise NotImplementedError(
                "top-r is only supported by the undirected engine"
            )
        terms = self.normalize(keywords)
        if exact:
            # Exclusion branching solves restricted graph *copies*; the
            # shared index cache is bound to the original graph and must
            # not leak into them.
            trees = exact_top_r_trees(self.graph, terms, r, **solver_kwargs)
        else:
            trees = top_r_trees(
                self.graph,
                terms,
                r,
                distance_cache=self.index.cache,
                **solver_kwargs,
            )
        answers = []
        for i, tree in enumerate(trees):
            answers.append(
                KeywordAnswer(
                    keywords=terms,
                    tree=tree,
                    weight=tree.weight,
                    optimal=(i == 0 or exact),
                    tuples=self._tuples_of(tree),
                )
            )
        return answers

    # ------------------------------------------------------------------
    def _to_answer(self, terms: Tuple[str, ...], result: GSTResult) -> KeywordAnswer:
        if result.tree is None:
            raise InfeasibleQueryError(
                f"no connected answer covers keywords {list(terms)!r}"
            )
        return KeywordAnswer(
            keywords=terms,
            tree=result.tree,
            weight=result.weight,
            optimal=result.optimal,
            tuples=self._tuples_of(result.tree),
        )

    def _tuples_of(self, tree: SteinerTree) -> List[str]:
        return sorted(
            self.database.describe_node(self.graph, node) for node in tree.nodes
        )
