"""A miniature relational database modelled as a tuple graph.

The paper's first motivating application (Section 1): "a relational
database can be modeled as a graph, where each node denotes a tuple and
each edge represents a foreign key reference between two tuples.  Each
edge is associated with a weight, representing the strength of the
relationship".  Keyword search then reduces to GST over that graph.

:class:`Database` holds relations of typed tuples; :meth:`Database.to_graph`
produces the tuple graph with

* one node per tuple, labelled with the tuple's searchable keywords
  (lower-cased tokens of its text attributes, plus ``<relation>``
  markers),
* one edge per foreign-key reference, weighted by the reference's
  declared strength (default 1.0).

This is a deliberately small but *real* substrate: it enforces schema
(declared attributes, FK targets must exist), which the keyword-search
tests exercise.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Sequence, Tuple

from ..errors import GraphError
from ..graph.graph import Graph

__all__ = ["Relation", "Row", "Database", "tokenize"]

_TOKEN_RE = re.compile(r"[a-z0-9]+")


def tokenize(text: str) -> List[str]:
    """Lower-case alphanumeric tokens of a text attribute."""
    return _TOKEN_RE.findall(text.lower())


@dataclass
class Row:
    """One tuple: a primary key, attribute values, FK references."""

    key: Hashable
    values: Dict[str, str]
    references: List[Tuple[str, Hashable, float]] = field(default_factory=list)


class Relation:
    """A named relation with a fixed attribute list."""

    def __init__(self, name: str, attributes: Sequence[str]) -> None:
        if not name:
            raise ValueError("relation name must be non-empty")
        self.name = name
        self.attributes = tuple(attributes)
        self.rows: Dict[Hashable, Row] = {}

    def insert(self, key: Hashable, **values: str) -> Row:
        """Add a tuple; unknown attributes are rejected, keys are unique."""
        if key in self.rows:
            raise GraphError(f"{self.name}: duplicate key {key!r}")
        unknown = set(values) - set(self.attributes)
        if unknown:
            raise GraphError(
                f"{self.name}: unknown attributes {sorted(unknown)!r}"
            )
        row = Row(key=key, values=dict(values))
        self.rows[key] = row
        return row

    def __len__(self) -> int:
        return len(self.rows)

    def __repr__(self) -> str:
        return f"Relation({self.name!r}, rows={len(self.rows)})"


class Database:
    """A set of relations plus foreign-key references between tuples."""

    def __init__(self) -> None:
        self.relations: Dict[str, Relation] = {}

    def create_relation(self, name: str, attributes: Sequence[str]) -> Relation:
        if name in self.relations:
            raise GraphError(f"relation {name!r} already exists")
        relation = Relation(name, attributes)
        self.relations[name] = relation
        return relation

    def relation(self, name: str) -> Relation:
        try:
            return self.relations[name]
        except KeyError:
            raise GraphError(f"unknown relation {name!r}") from None

    def add_reference(
        self,
        from_relation: str,
        from_key: Hashable,
        to_relation: str,
        to_key: Hashable,
        strength: float = 1.0,
    ) -> None:
        """Declare a foreign-key reference between two existing tuples.

        ``strength`` becomes the edge weight of the tuple graph (smaller
        = stronger relationship, per the keyword-search convention).
        """
        source = self.relation(from_relation)
        target = self.relation(to_relation)
        if from_key not in source.rows:
            raise GraphError(f"{from_relation}: no tuple {from_key!r}")
        if to_key not in target.rows:
            raise GraphError(f"{to_relation}: no tuple {to_key!r}")
        if strength <= 0.0:
            raise GraphError("reference strength must be positive")
        source.rows[from_key].references.append((to_relation, to_key, strength))

    # ------------------------------------------------------------------
    def to_graph(self) -> Graph:
        """The tuple graph: nodes = tuples, edges = FK references.

        Node labels: every token of every text attribute, plus a
        ``rel:<name>`` marker so queries can restrict by relation.
        Node names: ``(relation, key)`` so answers map back to tuples.
        """
        graph = Graph()
        ids: Dict[Tuple[str, Hashable], int] = {}
        for relation in self.relations.values():
            for row in relation.rows.values():
                labels = {f"rel:{relation.name}"}
                for value in row.values.values():
                    labels.update(tokenize(str(value)))
                node = graph.add_node(labels=labels, name=(relation.name, row.key))
                ids[(relation.name, row.key)] = node
        for relation in self.relations.values():
            for row in relation.rows.values():
                u = ids[(relation.name, row.key)]
                for to_relation, to_key, strength in row.references:
                    v = ids[(to_relation, to_key)]
                    graph.add_edge(u, v, strength)
        return graph

    def to_digraph(self):
        """Directed tuple graph: edges follow the FK reference direction.

        Use with :class:`repro.core.DirectedGSTSolver` when answers must
        be rooted trees of *forward* references (e.g. "a citing paper
        connecting these authors"), the BANKS/DPBF answer model.  The
        undirected :meth:`to_graph` matches the paper's formulation.
        """
        from ..graph.digraph import DiGraph

        digraph = DiGraph()
        ids: Dict[Tuple[str, Hashable], int] = {}
        for relation in self.relations.values():
            for row in relation.rows.values():
                labels = {f"rel:{relation.name}"}
                for value in row.values.values():
                    labels.update(tokenize(str(value)))
                node = digraph.add_node(
                    labels=labels, name=(relation.name, row.key)
                )
                ids[(relation.name, row.key)] = node
        for relation in self.relations.values():
            for row in relation.rows.values():
                source = ids[(relation.name, row.key)]
                for to_relation, to_key, strength in row.references:
                    digraph.add_edge(source, ids[(to_relation, to_key)], strength)
        return digraph

    def describe_node(self, graph: Graph, node: int) -> str:
        """Human-readable rendering of a tuple node (for case studies)."""
        name = graph.name_of(node)
        if name is None:
            return f"node {node}"
        relation_name, key = name
        row = self.relation(relation_name).rows[key]
        attrs = ", ".join(f"{k}={v!r}" for k, v in row.values.items())
        return f"{relation_name}({key!r}): {attrs}"
