"""Team formation in social networks via GST (Lappas et al., KDD 2009).

The paper's second motivating application: experts form a social
network whose edge weights measure *communication cost*; each expert
has skills; given a required skill set, find the team — modelled as a
connected tree covering every skill — with minimum total communication
cost.  That is a GST instance verbatim.

:class:`ExpertNetwork` is the domain layer: add experts with skills,
add collaboration links with costs, then :meth:`find_team`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, List, Optional, Tuple

from ..core.result import GSTResult
from ..errors import GraphError, InfeasibleQueryError
from ..graph.graph import Graph
from ..service.index import GraphIndex

__all__ = ["Team", "ExpertNetwork"]


@dataclass
class Team:
    """A found team: members, the connecting tree, and its cost."""

    required_skills: Tuple[str, ...]
    members: List[Hashable]
    communication_cost: float
    optimal: bool
    tree: object  # SteinerTree; kept duck-typed to avoid an import cycle

    def covers(self, skills_of: Dict[Hashable, frozenset]) -> bool:
        """Whether the members jointly hold every required skill."""
        held = set()
        for member in self.members:
            held |= set(skills_of.get(member, ()))
        return set(self.required_skills) <= held


class ExpertNetwork:
    """Experts + skills + weighted collaboration links."""

    def __init__(self) -> None:
        self.graph = Graph()
        self._experts: Dict[Hashable, int] = {}
        self._skills: Dict[Hashable, frozenset] = {}
        self._index: Optional[GraphIndex] = None

    # ------------------------------------------------------------------
    def add_expert(self, name: Hashable, skills: Iterable[str]) -> None:
        """Register an expert with a skill set (labels ``skill:<s>``)."""
        if name in self._experts:
            raise GraphError(f"expert {name!r} already exists")
        skills = frozenset(skills)
        node = self.graph.add_node(
            labels=[f"skill:{s}" for s in skills], name=name
        )
        self._experts[name] = node
        self._skills[name] = skills
        self._index = None  # graph mutated: any built index is stale

    def add_collaboration(
        self, a: Hashable, b: Hashable, cost: float = 1.0
    ) -> None:
        """Link two experts with a communication cost (must be positive)."""
        if cost <= 0.0:
            raise GraphError("communication cost must be positive")
        self.graph.add_edge(self._node(a), self._node(b), cost)
        self._index = None  # graph mutated: any built index is stale

    def _node(self, name: Hashable) -> int:
        try:
            return self._experts[name]
        except KeyError:
            raise GraphError(f"unknown expert {name!r}") from None

    @property
    def num_experts(self) -> int:
        return len(self._experts)

    @property
    def index(self) -> GraphIndex:
        """The shared query index, rebuilt lazily after mutations."""
        if self._index is None:
            self._index = GraphIndex(self.graph)
        return self._index

    def skills_of(self, name: Hashable) -> frozenset:
        """The declared skill set of an expert."""
        self._node(name)  # validates existence
        return self._skills[name]

    # ------------------------------------------------------------------
    def find_team(
        self,
        required_skills: Iterable[str],
        *,
        algorithm: str = "pruneddp++",
        time_limit: Optional[float] = None,
        epsilon: float = 0.0,
        **solver_kwargs,
    ) -> Team:
        """The minimum-communication-cost team covering the skills.

        Raises :class:`InfeasibleQueryError` when some skill is held by
        nobody, or no connected group of experts covers them all.
        """
        skills = tuple(dict.fromkeys(required_skills))
        if not skills:
            raise InfeasibleQueryError("at least one skill is required")
        labels = [f"skill:{s}" for s in skills]
        result: GSTResult = self.index.solve(
            labels,
            algorithm=algorithm,
            time_limit=time_limit,
            epsilon=epsilon,
            **solver_kwargs,
        )
        if result.tree is None:
            raise InfeasibleQueryError(
                f"no connected team covers skills {list(skills)!r}"
            )
        members = sorted(
            (self.graph.name_of(node) for node in result.tree.nodes),
            key=repr,
        )
        return Team(
            required_skills=skills,
            members=members,
            communication_cost=result.weight,
            optimal=result.optimal,
            tree=result.tree,
        )

    def expert_skills(self) -> Dict[Hashable, frozenset]:
        """Mapping expert → skill set (for :meth:`Team.covers`)."""
        return dict(self._skills)
