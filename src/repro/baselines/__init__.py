"""Approximation baselines the paper compares against (BANKS family)."""

from .banks1 import Banks1Solver
from .banks2 import Banks2Solver
from .blinks import BlinksSolver, RootAnswer
from .distance_network import DistanceNetworkSolver

__all__ = [
    "Banks1Solver",
    "Banks2Solver",
    "BlinksSolver",
    "RootAnswer",
    "DistanceNetworkSolver",
]
