"""BANKS-I — backward expanding search (Bhalotia et al., ICDE 2002).

The original keyword-search heuristic: run one Dijkstra *iterator* per
query group, all growing backward simultaneously (cheapest frontier
first across iterators).  Whenever some node has been reached by every
group it becomes a candidate *connection node*; the candidate answer is
the union of the shortest paths from that node to each group, collapsed
to a tree.

This is an ``O(k)``-approximation (each of the ``k`` paths is no longer
than the optimal tree), used here as the weaker of the two approximate
comparators.  The search stops once ``max_candidates`` connection nodes
have been found (BANKS's heuristic stopping rule) or the iterators are
exhausted.
"""

from __future__ import annotations

import time
from heapq import heappop, heappush
from typing import Hashable, Iterable, List, Optional, Tuple, Union

from ..core.context import QueryContext
from ..core.feasible import steiner_tree_from_edges, prune_redundant_leaves
from ..core.query import GSTQuery
from ..core.result import GSTResult, ProgressPoint, SearchStats
from ..graph.graph import Graph

__all__ = ["Banks1Solver"]

INF = float("inf")


class Banks1Solver:
    """Backward expanding search; returns an approximate GST."""

    algorithm_name = "BANKS-I"

    def __init__(
        self,
        graph: Graph,
        query: Union[GSTQuery, Iterable[Hashable]],
        *,
        max_candidates: int = 32,
        time_limit: Optional[float] = None,
    ) -> None:
        self.graph = graph
        self.query = query if isinstance(query, GSTQuery) else GSTQuery(query)
        self.max_candidates = max_candidates
        self.time_limit = time_limit

    def solve(self) -> GSTResult:
        started = time.perf_counter()
        context = QueryContext.build(self.graph, self.query)
        context.require_feasible()
        stats = SearchStats(init_seconds=context.build_seconds)
        k = context.k
        n = self.graph.num_nodes
        adjacency = self.graph.adjacency()

        # One backward Dijkstra per group, interleaved by a global heap
        # keyed (distance, group, node).  dist[i][v] mirrors the
        # per-group settled distances; `hit_count` tracks how many
        # groups reached each node.
        dist: List[List[float]] = [[INF] * n for _ in range(k)]
        parent: List[List[int]] = [[-1] * n for _ in range(k)]
        hits: List[int] = [0] * n
        settled: List[List[bool]] = [[False] * n for _ in range(k)]

        heap: List[Tuple[float, int, int]] = []
        for i, members in enumerate(context.groups):
            for node in members:
                if dist[i][node] > 0.0:
                    dist[i][node] = 0.0
                    heappush(heap, (0.0, i, node))

        best_tree = None
        best_weight = INF
        candidates = 0
        trace: List[ProgressPoint] = []

        while heap and candidates < self.max_candidates:
            if (
                self.time_limit is not None
                and time.perf_counter() - started >= self.time_limit
            ):
                break
            d, i, node = heappop(heap)
            if settled[i][node] or d > dist[i][node]:
                continue
            settled[i][node] = True
            stats.states_popped += 1
            hits[node] += 1
            if hits[node] == k:
                candidates += 1
                tree = self._candidate_tree(context, dist, parent, node)
                if tree is not None and tree.weight < best_weight:
                    best_weight = tree.weight
                    best_tree = tree
                    trace.append(
                        ProgressPoint(
                            time.perf_counter() - started, best_weight, 0.0
                        )
                    )
            for neighbor, weight in adjacency[node]:
                nd = d + weight
                if nd < dist[i][neighbor]:
                    dist[i][neighbor] = nd
                    parent[i][neighbor] = node
                    heappush(heap, (nd, i, neighbor))
            stats.peak_live_states = max(stats.peak_live_states, len(heap))

        stats.total_seconds = time.perf_counter() - started
        return GSTResult(
            algorithm=self.algorithm_name,
            labels=self.query.labels,
            tree=best_tree,
            weight=best_weight,
            lower_bound=0.0,
            optimal=False,
            stats=stats,
            trace=trace,
        )

    def _candidate_tree(self, context, dist, parent, root):
        """Union of per-group shortest paths from the connection node."""
        edges = []
        for i in range(context.k):
            if dist[i][root] == INF:
                return None
            current = root
            while parent[i][current] != -1:
                nxt = parent[i][current]
                edges.append((current, nxt, self.graph.edge_weight(current, nxt)))
                current = nxt
        tree = steiner_tree_from_edges(edges, anchor=root)
        return prune_redundant_leaves(context, tree)
