"""BANKS-II — bidirectional expanding search (Kacholia et al., VLDB 2005).

The approximation algorithm the paper benchmarks against (Tables 2-3,
Figures 12/18).  BANKS-II improves BANKS-I in two ways:

* **bidirectional expansion** — besides the backward iterators growing
  from each group, a forward iterator grows from nodes already touched
  by backward search, letting search escape large-degree "hub" regions;
* **spreading-activation prioritization** — iterators are prioritized
  by an activation score that *penalizes high-degree nodes*, rather
  than by pure distance.

We reproduce both mechanisms on undirected graphs: backward frontiers
are ordered by ``distance × degree_penalty(node)`` and a node touched
by every group spawns a candidate answer (union of its group paths).
Forward expansion is realized by continuing expansion from connection
candidates, which on undirected graphs is what the forward iterator
contributes.  Like the original, the algorithm is a heuristic: answers
are feasible trees with no optimality guarantee (``result.optimal`` is
always False and ``lower_bound`` 0).

The paper's observation that "BANKS-II typically needs to explore the
whole graph to get an approximate answer while PrunedDP++ visits only a
part of the graph" is reproduced by ``stats.states_popped`` here being
close to ``k·n`` on every run.
"""

from __future__ import annotations

import math
import time
from heapq import heappop, heappush
from typing import Hashable, Iterable, List, Optional, Tuple, Union

from ..core.context import QueryContext
from ..core.feasible import prune_redundant_leaves, steiner_tree_from_edges
from ..core.query import GSTQuery
from ..core.result import GSTResult, ProgressPoint, SearchStats
from ..graph.graph import Graph

__all__ = ["Banks2Solver"]

INF = float("inf")


class Banks2Solver:
    """Bidirectional expansion with activation-based prioritization."""

    algorithm_name = "BANKS-II"

    def __init__(
        self,
        graph: Graph,
        query: Union[GSTQuery, Iterable[Hashable]],
        *,
        max_candidates: int = 64,
        degree_penalty: float = 0.3,
        time_limit: Optional[float] = None,
    ) -> None:
        """``degree_penalty`` scales the log-degree activation damping
        (0 disables it, recovering distance-ordered expansion)."""
        self.graph = graph
        self.query = query if isinstance(query, GSTQuery) else GSTQuery(query)
        self.max_candidates = max_candidates
        self.degree_penalty = degree_penalty
        self.time_limit = time_limit

    # ------------------------------------------------------------------
    def solve(self) -> GSTResult:
        started = time.perf_counter()
        context = QueryContext.build(self.graph, self.query)
        context.require_feasible()
        stats = SearchStats(init_seconds=context.build_seconds)
        k = context.k
        n = self.graph.num_nodes
        adjacency = self.graph.adjacency()
        penalty = self._degree_penalties()

        dist: List[List[float]] = [[INF] * n for _ in range(k)]
        parent: List[List[int]] = [[-1] * n for _ in range(k)]
        settled: List[List[bool]] = [[False] * n for _ in range(k)]
        hits = [0] * n

        # Heap entries: (activation_priority, distance, group, node).
        heap: List[Tuple[float, float, int, int]] = []
        for i, members in enumerate(context.groups):
            for node in members:
                if dist[i][node] > 0.0:
                    dist[i][node] = 0.0
                    heappush(heap, (0.0, 0.0, i, node))

        best_tree = None
        best_weight = INF
        candidates = 0
        trace: List[ProgressPoint] = []

        while heap:
            if candidates >= self.max_candidates and best_tree is not None:
                break
            if (
                self.time_limit is not None
                and time.perf_counter() - started >= self.time_limit
            ):
                break
            _, d, i, node = heappop(heap)
            if settled[i][node] or d > dist[i][node]:
                continue
            settled[i][node] = True
            stats.states_popped += 1
            hits[node] += 1
            if hits[node] == k:
                candidates += 1
                tree = self._candidate_tree(context, dist, parent, node)
                if tree is not None and tree.weight < best_weight - 1e-12:
                    best_weight = tree.weight
                    best_tree = tree
                    trace.append(
                        ProgressPoint(
                            time.perf_counter() - started, best_weight, 0.0
                        )
                    )
            # Bidirectional flavour: expansion continues from every
            # settled node (backward from groups; nodes already reached
            # by other groups act as the forward frontier).
            for neighbor, weight in adjacency[node]:
                nd = d + weight
                if nd < dist[i][neighbor]:
                    dist[i][neighbor] = nd
                    parent[i][neighbor] = node
                    heappush(heap, (nd * penalty[neighbor], nd, i, neighbor))
            stats.peak_live_states = max(stats.peak_live_states, len(heap))

        stats.total_seconds = time.perf_counter() - started
        return GSTResult(
            algorithm=self.algorithm_name,
            labels=self.query.labels,
            tree=best_tree,
            weight=best_weight,
            lower_bound=0.0,
            optimal=False,
            stats=stats,
            trace=trace,
        )

    # ------------------------------------------------------------------
    def _degree_penalties(self) -> List[float]:
        """Activation damping: hubs expand later (spreading activation)."""
        if self.degree_penalty <= 0.0:
            return [1.0] * self.graph.num_nodes
        return [
            1.0 + self.degree_penalty * math.log1p(self.graph.degree(v))
            for v in self.graph.nodes()
        ]

    def _candidate_tree(self, context, dist, parent, root):
        edges = []
        for i in range(context.k):
            if dist[i][root] == INF:
                return None
            current = root
            while parent[i][current] != -1:
                nxt = parent[i][current]
                edges.append((current, nxt, self.graph.edge_weight(current, nxt)))
                current = nxt
        tree = steiner_tree_from_edges(edges, anchor=root)
        return prune_redundant_leaves(context, tree)
