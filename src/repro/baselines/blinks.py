"""BLINKS-style backward search with provable early termination.

BLINKS (He, Wang, Yang, Yu — SIGMOD 2007) answers keyword queries with
*root-based* semantics: an answer is a root node ``r`` plus one
shortest path to each keyword group, scored

    score(r) = Σ_i dist(r, V_i)

and the system returns the top-k roots.  Its algorithmic core — the
part independent of the disk-oriented bi-level index — is a set of
per-keyword **backward Dijkstras** expanded cost-balanced (smallest
frontier first) with a sound early-termination test: a root not yet
completed has

    score(v)  >=  S(v) + Σ_{i not yet settled v} frontier_i

where ``S(v)`` is the partial score from the iterators that already
settled ``v`` and ``frontier_i`` only ever grows; once every potential
root's bound reaches the current k-th best score, the search stops.
That is BLINKS' optimality argument, and it stops far earlier than the
BANKS-style full exploration — which the tests assert.

The best root's path union (collapsed to a tree and pruned) is also a
feasible GST answer with the usual ``k``-approximation guarantee, so
:class:`BlinksSolver` doubles as another approximate GST baseline.
"""

from __future__ import annotations

import time
from heapq import heappop, heappush
from typing import Hashable, Iterable, List, Optional, Set, Tuple, Union

from ..core.feasible import prune_redundant_leaves, steiner_tree_from_edges
from ..core.query import GSTQuery
from ..core.result import GSTResult, ProgressPoint, SearchStats
from ..core.tree import SteinerTree
from ..errors import GraphError, InfeasibleQueryError
from ..graph.graph import Graph
from ..graph.partition import Partition, bfs_partition

__all__ = ["BlinksSolver", "BlinksIndex", "RootAnswer"]

INF = float("inf")
_TERMINATION_CHECK_INTERVAL = 64


class RootAnswer:
    """One BLINKS answer: a root, its score, and the answer tree."""

    __slots__ = ("root", "score", "tree")

    def __init__(self, root: int, score: float, tree: SteinerTree) -> None:
        self.root = root
        self.score = score
        self.tree = tree

    def __repr__(self) -> str:
        return f"RootAnswer(root={self.root}, score={self.score:g})"


class BlinksIndex:
    """The bi-level index: a block partition + block-level bounds.

    Built once per graph (BLINKS' offline phase); at query time
    :meth:`keyword_bounds` runs one Dijkstra per keyword over the tiny
    *block graph*, yielding ``lb_i[b] <= dist(v, V_i)`` for every node
    ``v`` of block ``b`` — admissible because every block transition on
    a real path costs at least the cheapest edge crossing between the
    two blocks.  :class:`BlinksSolver` uses these to terminate earlier:
    a block none of whose nodes has been touched can be written off
    wholesale once ``Σ_i max(lb_i[b], frontier_i)`` reaches the k-th
    best score.
    """

    __slots__ = ("graph", "partition")

    def __init__(self, graph: Graph, block_size: int = 64) -> None:
        self.graph = graph
        self.partition: Partition = bfs_partition(graph, block_size)

    def keyword_bounds(self, groups) -> List[List[float]]:
        """Per keyword group: block-level lower-bound distance array."""
        partition = self.partition
        bounds: List[List[float]] = []
        for members in groups:
            source_blocks = sorted({partition.block_of(v) for v in members})
            bounds.append(partition.block_distances(source_blocks))
        return bounds


class _MaskContext:
    """Lightweight stand-in for QueryContext in leaf pruning."""

    __slots__ = ("k", "node_masks")

    def __init__(self, graph: Graph, query: GSTQuery) -> None:
        self.k = query.k
        masks = [0] * graph.num_nodes
        for i, label in enumerate(query.labels):
            bit = 1 << i
            for node in graph.nodes_with_label(label):
                masks[node] |= bit
        self.node_masks = masks


class BlinksSolver:
    """Top-k root search by early-terminated backward expansion."""

    algorithm_name = "BLINKS"

    def __init__(
        self,
        graph: Graph,
        query: Union[GSTQuery, Iterable[Hashable]],
        *,
        k_answers: int = 10,
        time_limit: Optional[float] = None,
        index: Optional[BlinksIndex] = None,
    ) -> None:
        if k_answers < 1:
            raise ValueError("k_answers must be >= 1")
        if index is not None and index.graph is not graph:
            raise GraphError("index was built for a different graph")
        self.graph = graph
        self.query = query if isinstance(query, GSTQuery) else GSTQuery(query)
        self.k_answers = k_answers
        self.time_limit = time_limit
        self.index = index
        self._answers: List[RootAnswer] = []

    # ------------------------------------------------------------------
    def solve(self) -> GSTResult:
        """Run the search; returns the best answer as a ``GSTResult``.

        The full top-k list is available afterwards via
        :meth:`top_roots`.  Raises :class:`InfeasibleQueryError` when no
        node reaches every keyword group.
        """
        started = time.perf_counter()
        groups = self.query.groups(self.graph)
        stats = SearchStats()
        k = self.query.k
        n = self.graph.num_nodes
        adjacency = self.graph.adjacency()

        dist: List[List[float]] = [[INF] * n for _ in range(k)]
        parent: List[List[int]] = [[-1] * n for _ in range(k)]
        settled: List[List[bool]] = [[False] * n for _ in range(k)]
        frontier: List[float] = [0.0] * k
        exhausted: List[bool] = [False] * k
        partial_score: List[float] = [0.0] * n
        hits: List[int] = [0] * n
        partial_nodes: Set[int] = set()

        heaps: List[List[Tuple[float, int]]] = [[] for _ in range(k)]
        for i, members in enumerate(groups):
            for node in members:
                if dist[i][node] > 0.0:
                    dist[i][node] = 0.0
                    heappush(heaps[i], (0.0, node))

        top: List[RootAnswer] = []  # sorted ascending by score
        trace: List[ProgressPoint] = []
        mask_context = _MaskContext(self.graph, self.query)

        # Bi-level index: block-level keyword bounds + per-block count
        # of still-untouched nodes.
        block_bounds: Optional[List[List[float]]] = None
        untouched_per_block: List[int] = []
        block_of: List[int] = []
        if self.index is not None:
            block_bounds = self.index.keyword_bounds(groups)
            block_of = self.index.partition.assignment
            untouched_per_block = [
                len(members) for members in self.index.partition.blocks
            ]

        def kth_best() -> float:
            if len(top) < self.k_answers:
                return INF
            return top[-1].score

        def unreached_bound() -> float:
            """Lower bound on the score of any entirely untouched node."""
            if any(exhausted):
                # An exhausted iterator settled everything it can reach:
                # untouched nodes are unreachable for it.
                return INF
            if block_bounds is None:
                return sum(frontier)
            best = INF
            for block, count in enumerate(untouched_per_block):
                if count == 0:
                    continue
                bound = 0.0
                for i in range(k):
                    lb = block_bounds[i][block]
                    f = frontier[i]
                    bound += lb if lb > f else f
                if bound < best:
                    best = bound
            return best

        def can_terminate() -> bool:
            """BLINKS early termination: no incomplete root can still
            enter the top-k."""
            threshold = kth_best()
            if threshold == INF:
                return False
            if unreached_bound() < threshold:
                return False
            # Partially reached nodes.
            for v in partial_nodes:
                bound = partial_score[v]
                impossible = False
                for i in range(k):
                    if settled[i][v]:
                        continue
                    if exhausted[i]:
                        impossible = True
                        break
                    bound += frontier[i]
                if not impossible and bound < threshold:
                    return False
            return True

        expansions = 0
        timed_out = False
        while True:
            if (
                self.time_limit is not None
                and time.perf_counter() - started >= self.time_limit
            ):
                timed_out = True
                break
            live = [i for i in range(k) if not exhausted[i]]
            if not live:
                break
            expansions += 1
            if expansions % _TERMINATION_CHECK_INTERVAL == 0 and can_terminate():
                break
            # Cost-balanced strategy: expand the smallest frontier.
            i = min(live, key=lambda idx: frontier[idx])
            heap = heaps[i]
            node = -1
            while heap:
                d, node = heappop(heap)
                if not settled[i][node] and d <= dist[i][node]:
                    break
            else:
                exhausted[i] = True
                continue
            settled[i][node] = True
            frontier[i] = d
            stats.states_popped += 1
            partial_score[node] += d
            hits[node] += 1
            if hits[node] == 1:
                partial_nodes.add(node)
                if untouched_per_block:
                    untouched_per_block[block_of[node]] -= 1
            if hits[node] == k:
                partial_nodes.discard(node)
                answer = self._materialize(
                    node, dist, parent, mask_context
                )
                if answer is not None and (
                    len(top) < self.k_answers or answer.score < top[-1].score
                ):
                    top.append(answer)
                    top.sort(key=lambda a: (a.score, a.root))
                    del top[self.k_answers:]
                    trace.append(
                        ProgressPoint(
                            time.perf_counter() - started,
                            top[0].tree.weight,
                            0.0,
                        )
                    )
            for neighbor, weight in adjacency[node]:
                nd = d + weight
                if nd < dist[i][neighbor]:
                    dist[i][neighbor] = nd
                    parent[i][neighbor] = node
                    heappush(heaps[i], (nd, neighbor))
            stats.peak_live_states = max(
                stats.peak_live_states, sum(len(h) for h in heaps)
            )

        self._answers = list(top)
        stats.total_seconds = time.perf_counter() - started
        if not top and not timed_out:
            raise InfeasibleQueryError(
                f"no node reaches every keyword group "
                f"{list(self.query.labels)!r}"
            )
        best = top[0] if top else None
        return GSTResult(
            algorithm=self.algorithm_name,
            labels=self.query.labels,
            tree=best.tree if best else None,
            weight=best.tree.weight if best else INF,
            lower_bound=0.0,
            optimal=False,
            stats=stats,
            trace=trace,
        )

    def top_roots(self) -> List[RootAnswer]:
        """The top-k root answers of the last :meth:`solve` call."""
        return list(self._answers)

    # ------------------------------------------------------------------
    def _materialize(
        self, root: int, dist, parent, mask_context
    ) -> Optional[RootAnswer]:
        score = 0.0
        edges = []
        for i in range(self.query.k):
            if dist[i][root] == INF:
                return None
            score += dist[i][root]
            current = root
            while parent[i][current] != -1:
                nxt = parent[i][current]
                edges.append(
                    (current, nxt, self.graph.edge_weight(current, nxt))
                )
                current = nxt
        tree = steiner_tree_from_edges(edges, anchor=root)
        tree = prune_redundant_leaves(mask_context, tree)
        return RootAnswer(root=root, score=score, tree=tree)
