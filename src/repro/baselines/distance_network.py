"""Distance-network heuristic — the classic GST k-approximation.

The textbook approximation (the seed step of STAR-style systems and the
guarantee behind BANKS's candidate answers): pick the *connection node*
``v*`` minimizing the sum of virtual-node distances

    v* = argmin_v  Σ_i dist(v, ṽ_i)

and answer with the union of the shortest paths from ``v*`` to every
group, collapsed to a tree (MST + label-aware pruning).

Guarantee: for any node ``v`` on the optimal tree ``T*``, each
``dist(v, ṽ_i) <= w(T*)`` (walk within ``T*``), so the chosen union
weighs at most ``k · w(T*)`` — a provable ``k``-approximation, which
the test suite asserts.  Runtime is the ``k`` Dijkstras of the shared
preprocessing plus an ``O(n k)`` scan: by far the fastest baseline,
with the weakest answers.
"""

from __future__ import annotations

import time
from typing import Hashable, Iterable, List, Union

from ..core.context import QueryContext
from ..core.feasible import prune_redundant_leaves, steiner_tree_from_edges
from ..core.query import GSTQuery
from ..core.result import GSTResult, ProgressPoint, SearchStats

from ..graph.graph import Graph

__all__ = ["DistanceNetworkSolver"]

INF = float("inf")


class DistanceNetworkSolver:
    """One-shot k-approximation via the best connection node."""

    algorithm_name = "DistanceNetwork"

    def __init__(
        self,
        graph: Graph,
        query: Union[GSTQuery, Iterable[Hashable]],
        *,
        num_roots: int = 1,
    ) -> None:
        """``num_roots`` > 1 tries the that many best connection nodes
        and keeps the lightest answer (a cheap quality knob)."""
        if num_roots < 1:
            raise ValueError("num_roots must be >= 1")
        self.graph = graph
        self.query = query if isinstance(query, GSTQuery) else GSTQuery(query)
        self.num_roots = num_roots

    def solve(self) -> GSTResult:
        started = time.perf_counter()
        context = QueryContext.build(self.graph, self.query)
        context.require_feasible()
        stats = SearchStats(init_seconds=context.build_seconds)
        k = context.k
        dist = context.dist

        # Score every node by its distance sum; unreachable -> inf.
        scores: List[float] = []
        for node in self.graph.nodes():
            total = 0.0
            for i in range(k):
                d = dist[i][node]
                if d == INF:
                    total = INF
                    break
                total += d
            scores.append(total)
        stats.states_popped = self.graph.num_nodes  # scan accounting
        stats.peak_live_states = self.graph.num_nodes  # the score array

        candidates = sorted(
            (node for node in self.graph.nodes() if scores[node] < INF),
            key=lambda node: scores[node],
        )[: self.num_roots]

        best_tree = None
        best_weight = INF
        for root in candidates:
            edges = []
            for i in range(k):
                edges.extend(context.shortest_path_edges(i, root))
            tree = steiner_tree_from_edges(edges, anchor=root)
            tree = prune_redundant_leaves(context, tree)
            if tree.weight < best_weight:
                best_weight = tree.weight
                best_tree = tree

        stats.total_seconds = time.perf_counter() - started
        trace = (
            [ProgressPoint(stats.total_seconds, best_weight, 0.0)]
            if best_tree is not None
            else []
        )
        return GSTResult(
            algorithm=self.algorithm_name,
            labels=self.query.labels,
            tree=best_tree,
            weight=best_weight,
            lower_bound=0.0,
            optimal=False,
            stats=stats,
            trace=trace,
        )
