"""Benchmark harness: datasets, workloads, progressive runner, figures."""

from . import datasets, figures, metrics, plotting, reporting, runner, workloads
from .datasets import get_dataset, KWF_VALUES, DEFAULT_KWF
from .runner import (
    RATIO_CHECKPOINTS,
    PROGRESSIVE_ALGORITHMS,
    ALL_ALGORITHMS,
    ThroughputResult,
    run_query,
    run_suite,
    run_throughput,
)
from .workloads import make_workload, generate_queries

__all__ = [
    "datasets",
    "figures",
    "metrics",
    "plotting",
    "reporting",
    "runner",
    "workloads",
    "get_dataset",
    "KWF_VALUES",
    "DEFAULT_KWF",
    "RATIO_CHECKPOINTS",
    "PROGRESSIVE_ALGORITHMS",
    "ALL_ALGORITHMS",
    "run_query",
    "run_suite",
    "run_throughput",
    "ThroughputResult",
    "make_workload",
    "generate_queries",
]
