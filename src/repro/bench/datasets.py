"""Named benchmark datasets: scaled stand-ins for the paper's graphs.

The paper evaluates on DBLP (15.8M nodes), IMDB (30.4M), LiveJournal
(4.8M, power-law) and RoadUSA (23.9M, near-planar).  Pure Python cannot
sweep graphs of that size, so each dataset here is a structurally
faithful scaled synthetic (see ``DESIGN.md`` §3 for the substitution
argument), with **query-label pools at several frequencies** attached so
the ``kwf`` sweep of Exp-2 can run on a single graph.

``kwf`` scaling: the paper's 200/400/800/1600 on ~15M nodes corresponds
to group densities of 1.3e-5 .. 1e-4; on our ~1-2k-node graphs the pools
``4, 8, 16, 32`` nodes per label span the same relative range.

Datasets are built lazily and memoized per ``(name, scale)``.
"""

from __future__ import annotations

import random
from typing import Dict, List, Tuple

from ..graph.graph import Graph
from ..graph import generators

__all__ = [
    "KWF_VALUES",
    "DEFAULT_KWF",
    "DATASET_NAMES",
    "get_dataset",
    "kwf_pool",
    "clear_cache",
]

# Scaled analogues of the paper's kwf ∈ {200, 400, 800, 1600}.
KWF_VALUES: Tuple[int, ...] = (4, 8, 16, 32)
DEFAULT_KWF = 8
POOL_SIZE = 24  # labels per frequency pool

DATASET_NAMES = ("dblp", "imdb", "livejournal", "roadusa")

_SCALES: Dict[str, Dict[str, dict]] = {
    "tiny": {
        "dblp": dict(num_papers=120, num_authors=80),
        "imdb": dict(num_movies=140, num_people=100),
        "livejournal": dict(num_nodes=250),
        "roadusa": dict(rows=16, cols=16),
    },
    "small": {
        "dblp": dict(num_papers=500, num_authors=300),
        "imdb": dict(num_movies=550, num_people=400),
        "livejournal": dict(num_nodes=900),
        "roadusa": dict(rows=30, cols=30),
    },
    "medium": {
        "dblp": dict(num_papers=1500, num_authors=900),
        "imdb": dict(num_movies=1700, num_people=1200),
        "livejournal": dict(num_nodes=2500),
        "roadusa": dict(rows=50, cols=50),
    },
}

_cache: Dict[Tuple[str, str], Graph] = {}


def kwf_pool(kwf: int) -> List[str]:
    """Label names of the frequency-``kwf`` query pool."""
    if kwf not in KWF_VALUES:
        raise ValueError(f"kwf must be one of {KWF_VALUES}, got {kwf}")
    return [f"kwf{kwf}:{i}" for i in range(POOL_SIZE)]


def get_dataset(name: str, scale: str = "small") -> Graph:
    """Build (or fetch the cached) named dataset at the given scale."""
    name = name.lower()
    if name not in DATASET_NAMES:
        raise ValueError(f"unknown dataset {name!r}; choose from {DATASET_NAMES}")
    if scale not in _SCALES:
        raise ValueError(f"unknown scale {scale!r}; choose from {sorted(_SCALES)}")
    key = (name, scale)
    if key not in _cache:
        _cache[key] = _build(name, scale)
    return _cache[key]


def clear_cache() -> None:
    """Drop memoized datasets (tests use this to bound memory)."""
    _cache.clear()


def _build(name: str, scale: str) -> Graph:
    params = _SCALES[scale][name]
    seed = hash((name, scale)) & 0xFFFF
    if name == "dblp":
        graph = generators.dblp_like(seed=seed, num_query_labels=0, **params)
    elif name == "imdb":
        graph = generators.imdb_like(seed=seed, num_query_labels=0, **params)
    elif name == "livejournal":
        graph = generators.powerlaw(seed=seed, num_query_labels=0, **params)
    else:  # roadusa
        graph = generators.road_grid(seed=seed, num_query_labels=0, **params)
    _attach_kwf_pools(graph, seed)
    return graph


def _attach_kwf_pools(graph: Graph, seed: int) -> None:
    rng = random.Random(seed ^ 0x5EED)
    nodes = list(graph.nodes())
    for kwf in KWF_VALUES:
        freq = min(kwf, len(nodes))
        for label in kwf_pool(kwf):
            for node in rng.sample(nodes, freq):
                graph.add_labels(node, [label])
