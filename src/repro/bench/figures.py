"""Regeneration harness for every table and figure of the paper.

Each ``figure_*`` / ``table_*`` function reproduces one experiment on
the scaled datasets: it runs the same algorithm set over the same
parameter sweep and emits the same rows/series the paper plots, plus
the shape checks EXPERIMENTS.md records (who wins, by what factor).

All functions return a :class:`FigureResult` whose ``text`` is a
ready-to-print ASCII rendition and whose ``series`` holds the raw
numbers for programmatic assertions (the pytest benchmarks use both).

Scaled defaults: the paper sweeps knum ∈ 5..8 and kwf ∈ 200..1600 on
10M+-node graphs in C++; pure Python explores ~10⁴ states/second, so
the default sweeps use knum ∈ 4..6 and the scaled kwf pools (4..32)
on ~10³-node graphs.  Pass larger ``knums`` / ``scale`` for a heavier
run — the harness is size-agnostic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..baselines.banks2 import Banks2Solver
from ..core.algorithms import PrunedDPPlusPlusSolver
from .datasets import DEFAULT_KWF, KWF_VALUES
from .metrics import format_bytes, format_seconds, format_table, mean
from .runner import (
    ALL_ALGORITHMS,
    PROGRESSIVE_ALGORITHMS,
    RATIO_CHECKPOINTS,
    SuiteResult,
    run_query,
    run_suite,
)
from .workloads import make_workload

__all__ = [
    "FigureResult",
    "figure_time_vs_ratio_knum",
    "figure_time_vs_ratio_kwf",
    "figure_memory_vs_ratio_knum",
    "figure_memory_vs_ratio_kwf",
    "figure_progressive_bounds",
    "figure_large_knum",
    "table_banks_comparison",
    "table_all_algorithms",
]


@dataclass
class FigureResult:
    """One regenerated experiment: raw series + printable text."""

    name: str
    text: str
    # series[(panel, algorithm)] -> list of values along the x axis
    series: Dict[Tuple, List[float]] = field(default_factory=dict)
    suites: Dict[Tuple, SuiteResult] = field(default_factory=dict)

    def print(self) -> None:  # pragma: no cover - convenience
        print(self.text)


# ----------------------------------------------------------------------
# Figures 4/5/14/15 — time vs ratio, varying knum, per dataset
# ----------------------------------------------------------------------
def figure_time_vs_ratio_knum(
    dataset: str,
    *,
    scale: str = "small",
    knums: Sequence[int] = (4, 5, 6),
    kwf: int = DEFAULT_KWF,
    num_queries: int = 3,
    algorithms: Sequence[str] = PROGRESSIVE_ALGORITHMS,
    seed: int = 0,
    time_limit: Optional[float] = None,
) -> FigureResult:
    """Time to each approximation ratio, one panel per ``knum``.

    Paper: Fig 4 (DBLP), Fig 5 (IMDB), Fig 14 (LiveJournal),
    Fig 15 (RoadUSA).
    """
    blocks: List[str] = []
    out = FigureResult(name=f"time-vs-ratio knum sweep [{dataset}/{scale}]", text="")
    for knum in knums:
        graph, queries = make_workload(
            dataset, scale=scale, knum=knum, kwf=kwf,
            num_queries=num_queries, seed=seed,
        )
        suite = run_suite(graph, list(queries), algorithms, time_limit=time_limit)
        out.suites[(knum,)] = suite
        rows = []
        for algorithm in algorithms:
            values = [
                suite.mean_time_to_ratio(algorithm, target)
                for target in RATIO_CHECKPOINTS
            ]
            out.series[(knum, algorithm)] = values
            rows.append(
                [algorithm] + [format_seconds(v) for v in values]
            )
        headers = ["algorithm"] + [f"r<={t:g}" for t in RATIO_CHECKPOINTS]
        blocks.append(
            format_table(headers, rows, title=f"knum={knum} (kwf={kwf})")
        )
    out.text = (
        f"== {out.name} ==\n"
        "mean seconds until the proven ratio reaches each checkpoint\n\n"
        + "\n\n".join(blocks)
    )
    return out


# ----------------------------------------------------------------------
# Figures 6/7 — time vs ratio, varying kwf
# ----------------------------------------------------------------------
def figure_time_vs_ratio_kwf(
    dataset: str,
    *,
    scale: str = "small",
    knum: int = 5,
    kwfs: Sequence[int] = KWF_VALUES,
    num_queries: int = 3,
    algorithms: Sequence[str] = PROGRESSIVE_ALGORITHMS,
    seed: int = 0,
    time_limit: Optional[float] = None,
) -> FigureResult:
    """Time to each ratio, one panel per label frequency ``kwf``.

    Paper: Fig 6 (DBLP), Fig 7 (IMDB).
    """
    blocks: List[str] = []
    out = FigureResult(name=f"time-vs-ratio kwf sweep [{dataset}/{scale}]", text="")
    for kwf in kwfs:
        graph, queries = make_workload(
            dataset, scale=scale, knum=knum, kwf=kwf,
            num_queries=num_queries, seed=seed,
        )
        suite = run_suite(graph, list(queries), algorithms, time_limit=time_limit)
        out.suites[(kwf,)] = suite
        rows = []
        for algorithm in algorithms:
            values = [
                suite.mean_time_to_ratio(algorithm, target)
                for target in RATIO_CHECKPOINTS
            ]
            out.series[(kwf, algorithm)] = values
            rows.append([algorithm] + [format_seconds(v) for v in values])
        headers = ["algorithm"] + [f"r<={t:g}" for t in RATIO_CHECKPOINTS]
        blocks.append(format_table(headers, rows, title=f"kwf={kwf} (knum={knum})"))
    out.text = (
        f"== {out.name} ==\n"
        "mean seconds until the proven ratio reaches each checkpoint\n\n"
        + "\n\n".join(blocks)
    )
    return out


# ----------------------------------------------------------------------
# Figures 8/9 — memory vs ratio (same sweeps, byte estimates)
# ----------------------------------------------------------------------
def figure_memory_vs_ratio_knum(
    dataset: str,
    *,
    scale: str = "small",
    knums: Sequence[int] = (4, 5, 6),
    kwf: int = DEFAULT_KWF,
    num_queries: int = 3,
    algorithms: Sequence[str] = PROGRESSIVE_ALGORITHMS,
    seed: int = 0,
) -> FigureResult:
    """Peak memory (estimated bytes) per algorithm, varying knum.

    Paper: Fig 8.  The paper reports memory at each ratio; states are
    monotone over a run so the peak at completion dominates — we report
    the per-algorithm peak, which is the figure's right-hand edge, plus
    popped-state counts (the quantity memory is proportional to).
    """
    blocks: List[str] = []
    out = FigureResult(name=f"memory knum sweep [{dataset}/{scale}]", text="")
    for knum in knums:
        graph, queries = make_workload(
            dataset, scale=scale, knum=knum, kwf=kwf,
            num_queries=num_queries, seed=seed,
        )
        suite = run_suite(graph, list(queries), algorithms)
        out.suites[(knum,)] = suite
        rows = []
        for algorithm in algorithms:
            peak = suite.mean_peak_bytes(algorithm)
            states = suite.mean_states(algorithm)
            out.series[(knum, algorithm)] = [peak, states]
            rows.append([algorithm, format_bytes(peak), f"{states:.0f}"])
        blocks.append(
            format_table(
                ["algorithm", "peak-mem", "popped-states"],
                rows,
                title=f"knum={knum} (kwf={kwf})",
            )
        )
    out.text = f"== {out.name} ==\n\n" + "\n\n".join(blocks)
    return out


def figure_memory_vs_ratio_kwf(
    dataset: str,
    *,
    scale: str = "small",
    knum: int = 5,
    kwfs: Sequence[int] = KWF_VALUES,
    num_queries: int = 3,
    algorithms: Sequence[str] = PROGRESSIVE_ALGORITHMS,
    seed: int = 0,
) -> FigureResult:
    """Peak memory per algorithm, varying kwf.  Paper: Fig 9."""
    blocks: List[str] = []
    out = FigureResult(name=f"memory kwf sweep [{dataset}/{scale}]", text="")
    for kwf in kwfs:
        graph, queries = make_workload(
            dataset, scale=scale, knum=knum, kwf=kwf,
            num_queries=num_queries, seed=seed,
        )
        suite = run_suite(graph, list(queries), algorithms)
        out.suites[(kwf,)] = suite
        rows = []
        for algorithm in algorithms:
            peak = suite.mean_peak_bytes(algorithm)
            states = suite.mean_states(algorithm)
            out.series[(kwf, algorithm)] = [peak, states]
            rows.append([algorithm, format_bytes(peak), f"{states:.0f}"])
        blocks.append(
            format_table(
                ["algorithm", "peak-mem", "popped-states"],
                rows,
                title=f"kwf={kwf} (knum={knum})",
            )
        )
    out.text = f"== {out.name} ==\n\n" + "\n\n".join(blocks)
    return out


# ----------------------------------------------------------------------
# Figure 10 — progressive UB/LB convergence
# ----------------------------------------------------------------------
def figure_progressive_bounds(
    dataset: str,
    *,
    scale: str = "small",
    knum: int = 6,
    kwf: int = DEFAULT_KWF,
    algorithms: Sequence[str] = PROGRESSIVE_ALGORITHMS,
    seed: int = 0,
    samples: int = 8,
) -> FigureResult:
    """UB/LB trajectories of one query per algorithm (paper Fig 10).

    Emits ``samples`` evenly-spaced trace rows per algorithm; the series
    store the full ``(elapsed, UB, LB)`` trace for assertions
    (monotonicity, gap closure).
    """
    graph, queries = make_workload(
        dataset, scale=scale, knum=knum, kwf=kwf, num_queries=1, seed=seed
    )
    labels = list(queries)[0]
    blocks: List[str] = []
    out = FigureResult(name=f"progressive bounds [{dataset}/{scale}]", text="")
    for algorithm in algorithms:
        run = run_query(algorithm, graph, labels)
        trace = run.result.trace
        out.series[("trace", algorithm)] = [
            (p.elapsed, p.best_weight, p.lower_bound) for p in trace
        ]
        rows = []
        step = max(1, len(trace) // samples)
        shown = trace[::step]
        if trace and shown[-1] is not trace[-1]:
            shown.append(trace[-1])
        for point in shown:
            ub = "inf" if point.best_weight == float("inf") else f"{point.best_weight:.3f}"
            rows.append(
                [
                    format_seconds(point.elapsed),
                    ub,
                    f"{point.lower_bound:.3f}",
                    "inf" if point.ratio == float("inf") else f"{point.ratio:.3f}",
                ]
            )
        blocks.append(
            format_table(
                ["t", "UB", "LB", "ratio"], rows, title=f"{algorithm}"
            )
        )
    out.text = (
        f"== {out.name} == (knum={knum}, kwf={kwf}, query={list(labels)})\n\n"
        + "\n\n".join(blocks)
    )
    return out


# ----------------------------------------------------------------------
# Figure 16 — PrunedDP++ at relatively large knum
# ----------------------------------------------------------------------
def figure_large_knum(
    dataset: str,
    *,
    scale: str = "small",
    knums: Sequence[int] = (7, 8),
    kwf: int = DEFAULT_KWF,
    seed: int = 0,
    time_limit: Optional[float] = None,
) -> FigureResult:
    """PrunedDP++ alone at the largest query sizes (paper Fig 16)."""
    blocks: List[str] = []
    out = FigureResult(name=f"PrunedDP++ large knum [{dataset}/{scale}]", text="")
    for knum in knums:
        graph, queries = make_workload(
            dataset, scale=scale, knum=knum, kwf=kwf, num_queries=1, seed=seed
        )
        labels = list(queries)[0]
        run = run_query("PrunedDP++", graph, labels, time_limit=time_limit)
        trace = run.result.trace
        out.series[(knum, "PrunedDP++")] = [
            (p.elapsed, p.best_weight, p.lower_bound) for p in trace
        ]
        out.suites[(knum,)] = None  # type: ignore[assignment]
        near = run.result.time_to_ratio(1.41)
        opt = run.result.time_to_ratio(1.0)
        blocks.append(
            f"knum={knum}: weight={run.result.weight:.3f} "
            f"optimal={run.result.optimal} "
            f"t(ratio<=1.41)={format_seconds(near)} "
            f"t(optimal)={format_seconds(opt)} "
            f"states={run.states_popped}"
        )
    out.text = f"== {out.name} ==\n" + "\n".join(blocks)
    return out


# ----------------------------------------------------------------------
# Tables 2/3 — comparison with BANKS-II
# ----------------------------------------------------------------------
def table_banks_comparison(
    dataset: str,
    *,
    scale: str = "small",
    configurations: Sequence[Tuple[int, int]] = ((4, 8), (5, 8), (5, 4), (5, 16)),
    num_queries: int = 3,
    seed: int = 0,
) -> FigureResult:
    """BANKS-II vs PrunedDP++ (paper Tables 2/3).

    Columns mirror the paper: BANKS-II total time and its achieved
    approximation ratio (vs the exact optimum PrunedDP++ computes),
    PrunedDP++ total time, and ``T_r`` — the time PrunedDP++ needed to
    produce an answer at least as good as BANKS-II's.
    """
    rows = []
    out = FigureResult(name=f"BANKS-II vs PrunedDP++ [{dataset}/{scale}]", text="")
    for knum, kwf in configurations:
        graph, queries = make_workload(
            dataset, scale=scale, knum=knum, kwf=kwf,
            num_queries=num_queries, seed=seed,
        )
        banks_times, banks_ratios, pp_times, tr_times = [], [], [], []
        for labels in queries:
            banks = Banks2Solver(graph, labels).solve()
            pp = PrunedDPPlusPlusSolver(graph, labels).solve()
            banks_times.append(banks.stats.total_seconds)
            pp_times.append(pp.stats.total_seconds)
            if pp.weight > 0:
                banks_ratios.append(banks.weight / pp.weight)
            else:
                banks_ratios.append(1.0)
            # T_r: first trace point with UB <= BANKS-II's weight.
            tr = next(
                (
                    p.elapsed
                    for p in pp.trace
                    if p.best_weight <= banks.weight + 1e-9
                ),
                pp.stats.total_seconds,
            )
            tr_times.append(tr)
        out.series[(knum, kwf)] = [
            mean(banks_times),
            mean(banks_ratios),
            mean(pp_times),
            mean(tr_times),
        ]
        rows.append(
            [
                str(knum),
                str(kwf),
                format_seconds(mean(banks_times)),
                f"{mean(banks_ratios):.2f}",
                format_seconds(mean(pp_times)),
                format_seconds(mean(tr_times)),
            ]
        )
    out.text = format_table(
        ["knum", "kwf", "BANKS-II time", "BANKS-II ratio", "PrunedDP++ time", "T_r"],
        rows,
        title=f"== {out.name} ==",
    )
    return out


# ----------------------------------------------------------------------
# Extended comparison — every algorithm in the package on one workload
# ----------------------------------------------------------------------
def table_all_algorithms(
    dataset: str,
    *,
    scale: str = "small",
    knum: int = 5,
    kwf: int = DEFAULT_KWF,
    num_queries: int = 2,
    algorithms: Sequence[str] = ALL_ALGORITHMS,
    seed: int = 42,
) -> FigureResult:
    """Quality-vs-work Pareto table across all solvers and heuristics.

    Goes beyond the paper's Table 2/3 by positioning every baseline in
    the package (DPBF, BANKS-I/II, BLINKS, DistanceNetwork) against the
    four progressive algorithms on one workload: answer weight relative
    to the optimum, explored states, wall time, and whether optimality
    was proven.
    """
    graph, queries = make_workload(
        dataset, scale=scale, knum=knum, kwf=kwf,
        num_queries=num_queries, seed=seed,
    )
    suite = run_suite(graph, list(queries), algorithms)
    out = FigureResult(name=f"all-algorithms table [{dataset}/{scale}]", text="")
    out.suites[("all",)] = suite

    optimum = min(
        suite.mean_weight(a) for a in algorithms if suite.all_optimal(a)
    )
    # Zero-weight optima (a single node covering everything) are
    # possible on tiny workloads: fall back to ratio 1 for zero/zero.
    def ratio_of(weight: float) -> float:
        if optimum > 0:
            return weight / optimum
        return 1.0 if weight <= 1e-12 else float("inf")

    rows = []
    for algorithm in algorithms:
        weight = suite.mean_weight(algorithm)
        out.series[("row", algorithm)] = [
            ratio_of(weight),
            suite.mean_states(algorithm),
            suite.mean_total_seconds(algorithm),
        ]
        rows.append(
            [
                algorithm,
                f"{ratio_of(weight):.3f}",
                f"{suite.mean_states(algorithm):.0f}",
                format_seconds(suite.mean_total_seconds(algorithm)),
                str(suite.all_optimal(algorithm)),
            ]
        )
    out.text = format_table(
        ["algorithm", "weight/opt", "states", "time", "proven-optimal"],
        rows,
        title=f"== {out.name} == (knum={knum}, kwf={kwf})",
    )
    return out
