"""Aggregation, formatting, and memory-measurement helpers."""

from __future__ import annotations

import math
import tracemalloc
from typing import Callable, Iterable, List, Optional, Sequence, Tuple, TypeVar

__all__ = [
    "mean",
    "geometric_mean",
    "format_seconds",
    "format_bytes",
    "format_table",
    "measure_peak_memory",
]

T = TypeVar("T")


def measure_peak_memory(fn: Callable[[], T]) -> Tuple[T, int]:
    """Run ``fn`` under :mod:`tracemalloc`; return ``(result, peak_bytes)``.

    The paper's Figures 8-9 report allocator bytes; the solvers' own
    ``stats.estimated_bytes`` is a model (states × bytes/state) — this
    helper gives the ground-truth number when a benchmark wants it.
    Roughly 2-4× slower than an uninstrumented run; nesting is handled
    by saving and restoring any tracing already in progress.
    """
    was_tracing = tracemalloc.is_tracing()
    if not was_tracing:
        tracemalloc.start()
    tracemalloc.reset_peak()
    try:
        result = fn()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        if not was_tracing:
            tracemalloc.stop()
    return result, peak


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; ``nan`` for an empty sequence."""
    return sum(values) / len(values) if values else float("nan")


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of positive values (speedup aggregation)."""
    filtered = [v for v in values if v > 0.0]
    if not filtered:
        return float("nan")
    return math.exp(sum(math.log(v) for v in filtered) / len(filtered))


def format_seconds(seconds: Optional[float]) -> str:
    """Human-readable duration, paper-plot style."""
    if seconds is None or seconds != seconds:  # None or NaN
        return "-"
    if seconds == float("inf"):
        return "inf"
    if seconds < 1e-3:
        return f"{seconds * 1e6:.0f}us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.1f}ms"
    if seconds < 120.0:
        return f"{seconds:.2f}s"
    return f"{seconds / 60.0:.1f}min"


def format_bytes(count: float) -> str:
    """Human-readable byte count (the paper's Figs 8-9 axes)."""
    if count != count:
        return "-"
    for unit in ("B", "KB", "MB", "GB"):
        if count < 1024.0 or unit == "GB":
            return f"{count:.1f}{unit}" if unit != "B" else f"{int(count)}B"
        count /= 1024.0
    return f"{count:.1f}GB"  # pragma: no cover


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[str]], title: str = ""
) -> str:
    """Fixed-width ASCII table (what the bench harness prints)."""
    rows = [list(map(str, row)) for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)
