"""Terminal plotting for progressive curves (Figure-10-style output).

A reproduction repository should let the reader *see* the UB/LB
convergence without a plotting stack.  :func:`ascii_chart` renders
multiple ``(x, y)`` series on a character grid with per-series markers
and optional log-scaled x (the paper's time axes are log).

Output example::

    weight
    16.00 |A
    14.13 |AA
    12.27 | B.
     ...  |   ab....
     8.00 |      ****
          +-----------------
          0.01s        4.2s

Uppercase = upper bound, lowercase = lower bound by convention in
:func:`progressive_chart`.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

__all__ = ["ascii_chart", "progressive_chart"]

Point = Tuple[float, float]

_MARKERS = "ABCDEFGH"


def ascii_chart(
    series: Dict[str, Sequence[Point]],
    *,
    width: int = 64,
    height: int = 16,
    log_x: bool = False,
    y_label: str = "",
) -> str:
    """Render named point series on one character grid.

    Later-listed series draw on top.  Non-finite points are skipped.
    Returns the chart plus a legend mapping markers to series names.
    """
    if not series:
        raise ValueError("no series to plot")
    if width < 8 or height < 4:
        raise ValueError("chart too small")

    points: List[Tuple[str, float, float]] = []
    for name, pts in series.items():
        for x, y in pts:
            if math.isfinite(x) and math.isfinite(y):
                points.append((name, x, y))
    if not points:
        raise ValueError("no finite points to plot")

    def x_of(value: float) -> float:
        if not log_x:
            return value
        return math.log10(max(value, 1e-9))

    xs = [x_of(x) for _, x, _ in points]
    ys = [y for _, _, y in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    names = list(series)
    for name, x, y in points:
        col = int((x_of(x) - x_lo) / x_span * (width - 1))
        row = int((y_hi - y) / y_span * (height - 1))
        marker = _MARKERS[names.index(name) % len(_MARKERS)]
        grid[row][col] = marker

    gutter = 10
    lines: List[str] = []
    if y_label:
        lines.append(y_label)
    for i, row in enumerate(grid):
        y_value = y_hi - i / (height - 1) * y_span
        prefix = f"{y_value:>{gutter - 2}.2f} |"
        lines.append(prefix + "".join(row))
    lines.append(" " * (gutter - 1) + "+" + "-" * width)
    x_left = f"{min(x for _, x, _ in points):g}"
    x_right = f"{max(x for _, x, _ in points):g}"
    pad = max(1, width - len(x_left) - len(x_right))
    lines.append(" " * gutter + x_left + " " * pad + x_right)
    legend = "  ".join(
        f"{_MARKERS[i % len(_MARKERS)]}={name}" for i, name in enumerate(names)
    )
    lines.append(" " * gutter + legend)
    return "\n".join(lines)


def progressive_chart(
    traces: Dict[str, Sequence[Tuple[float, float, float]]],
    *,
    width: int = 64,
    height: int = 16,
) -> str:
    """Figure-10-style chart from ``(elapsed, UB, LB)`` traces.

    One chart per algorithm would be faithful to the paper; for a
    terminal, overlaying each algorithm's UB is more readable — pass a
    single-algorithm dict to get its UB *and* LB overlaid instead.
    """
    if not traces:
        raise ValueError("no traces to plot")
    if len(traces) == 1:
        (name, trace), = traces.items()
        series = {
            f"{name} UB": [
                (t, ub) for t, ub, _ in trace if math.isfinite(ub)
            ],
            f"{name} LB": [(t, lb) for t, _, lb in trace],
        }
    else:
        series = {
            name: [(t, ub) for t, ub, _ in trace if math.isfinite(ub)]
            for name, trace in traces.items()
        }
    return ascii_chart(
        series, width=width, height=height, log_x=True, y_label="tree weight"
    )
