"""Machine-readable experiment records.

The figure harness produces human-readable tables; this module
serializes the underlying runs to JSON so experiment results can be
diffed across runs, plotted externally, or archived next to
``EXPERIMENTS.md``.
"""

from __future__ import annotations

import json
import platform
import sys
import time
from typing import Dict, Optional

from .runner import QueryRun, RATIO_CHECKPOINTS, SuiteResult

__all__ = [
    "environment_record",
    "query_run_to_dict",
    "suite_to_dict",
    "save_json",
    "load_json",
]


def environment_record() -> dict:
    """Where/when a record was produced (embedded in every report)."""
    return {
        "python": sys.version.split()[0],
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
    }


def query_run_to_dict(run: QueryRun) -> dict:
    """Serialize one (algorithm, query) execution."""
    record = run.result.to_dict()
    record["wall_seconds"] = run.wall_seconds
    record["time_to_ratio"] = {
        f"{target:g}": run.result.time_to_ratio(target)
        for target in RATIO_CHECKPOINTS
    }
    return record


def suite_to_dict(
    suite: SuiteResult, *, metadata: Optional[dict] = None
) -> dict:
    """Serialize an aggregated suite (one figure panel)."""
    record: Dict = {
        "environment": environment_record(),
        "metadata": metadata or {},
        "algorithms": {},
    }
    for algorithm, runs in suite.runs.items():
        record["algorithms"][algorithm] = {
            "mean_total_seconds": suite.mean_total_seconds(algorithm),
            "mean_states_popped": suite.mean_states(algorithm),
            "mean_peak_bytes": suite.mean_peak_bytes(algorithm),
            "mean_weight": suite.mean_weight(algorithm),
            "all_optimal": suite.all_optimal(algorithm),
            "mean_time_to_ratio": {
                f"{target:g}": suite.mean_time_to_ratio(algorithm, target)
                for target in RATIO_CHECKPOINTS
            },
            "runs": [query_run_to_dict(run) for run in runs],
        }
    return record


def save_json(path: str, record: dict) -> None:
    """Write a record as pretty-printed JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_json(path: str) -> dict:
    """Read a record back."""
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)
