"""Progressive benchmark runner.

Reproduces how the paper *reads* its algorithms: every solve is run to
completion while recording the trace of ``(elapsed, UB, LB)`` events,
then each of Figures 4-9's curves is the **time until the proven
approximation ratio first reached each checkpoint** (their x-axes:
8, 5.66, 4, 2.83, 2, 1.41, 1), and the memory figures read the peak
live-state byte estimate at the same checkpoints.

``run_query`` executes one (algorithm, query) cell; ``run_suite``
aggregates a batch of queries into the per-checkpoint means a figure
plots; ``run_throughput`` measures serving throughput (queries/sec)
through the concurrent query service instead of the paper's
one-query-at-a-time protocol.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Sequence, Tuple, Union

from ..baselines.banks1 import Banks1Solver
from ..baselines.banks2 import Banks2Solver
from ..baselines.blinks import BlinksSolver
from ..baselines.distance_network import DistanceNetworkSolver
from ..core.algorithms import (
    BasicSolver,
    PrunedDPPlusPlusSolver,
    PrunedDPPlusSolver,
    PrunedDPSolver,
)
from ..core.budget import Budget
from ..core.dpbf import DPBFSolver
from ..core.result import GSTResult
from ..graph.graph import Graph
from ..service.executor import QueryExecutor
from ..service.index import GraphIndex, QueryOutcome
from ..service.telemetry import TraceSink
from .metrics import mean

__all__ = [
    "RATIO_CHECKPOINTS",
    "PROGRESSIVE_ALGORITHMS",
    "ALL_ALGORITHMS",
    "QueryRun",
    "SuiteResult",
    "ThroughputResult",
    "run_query",
    "run_suite",
    "run_throughput",
]

# The x-axis of the paper's Figures 4-9 (2^(3/2) spacing, 8 → 1).
RATIO_CHECKPOINTS: Tuple[float, ...] = (8.0, 5.66, 4.0, 2.83, 2.0, 1.41, 1.0)

PROGRESSIVE_ALGORITHMS: Tuple[str, ...] = (
    "Basic",
    "PrunedDP",
    "PrunedDP+",
    "PrunedDP++",
)
ALL_ALGORITHMS: Tuple[str, ...] = PROGRESSIVE_ALGORITHMS + (
    "DPBF",
    "BANKS-I",
    "BANKS-II",
    "BLINKS",
    "DistanceNetwork",
)

_SOLVERS = {
    "Basic": BasicSolver,
    "PrunedDP": PrunedDPSolver,
    "PrunedDP+": PrunedDPPlusSolver,
    "PrunedDP++": PrunedDPPlusPlusSolver,
    "DPBF": DPBFSolver,
    "BANKS-I": Banks1Solver,
    "BANKS-II": Banks2Solver,
    "BLINKS": BlinksSolver,
    "DistanceNetwork": DistanceNetworkSolver,
}


@dataclass
class QueryRun:
    """One (algorithm, query) execution with its progressive readings."""

    algorithm: str
    labels: Tuple[Hashable, ...]
    result: GSTResult
    wall_seconds: float

    @property
    def time_to_ratio(self) -> Dict[float, Optional[float]]:
        """Seconds to reach each checkpoint ratio (None = never)."""
        return {
            target: self.result.time_to_ratio(target)
            for target in RATIO_CHECKPOINTS
        }

    @property
    def states_popped(self) -> int:
        return self.result.stats.states_popped

    @property
    def peak_bytes(self) -> int:
        return self.result.stats.estimated_bytes


@dataclass
class SuiteResult:
    """Aggregated runs of several algorithms over a query batch."""

    runs: Dict[str, List[QueryRun]] = field(default_factory=dict)

    def algorithms(self) -> List[str]:
        return list(self.runs)

    def mean_time_to_ratio(self, algorithm: str, target: float) -> float:
        """Mean seconds to the checkpoint; unreached queries count as
        their full solve time (the curve's plateau in the paper)."""
        values = []
        for run in self.runs[algorithm]:
            t = run.result.time_to_ratio(target)
            values.append(t if t is not None else run.result.stats.total_seconds)
        return mean(values)

    def mean_total_seconds(self, algorithm: str) -> float:
        return mean([r.result.stats.total_seconds for r in self.runs[algorithm]])

    def mean_states(self, algorithm: str) -> float:
        return mean([float(r.states_popped) for r in self.runs[algorithm]])

    def mean_peak_bytes(self, algorithm: str) -> float:
        return mean([float(r.peak_bytes) for r in self.runs[algorithm]])

    def mean_weight(self, algorithm: str) -> float:
        return mean([r.result.weight for r in self.runs[algorithm]])

    def all_optimal(self, algorithm: str) -> bool:
        return all(r.result.optimal for r in self.runs[algorithm])


def run_query(
    algorithm: str,
    graph: Graph,
    labels: Sequence[Hashable],
    **solver_kwargs,
) -> QueryRun:
    """Run one algorithm on one query, capturing the progressive trace."""
    try:
        solver_cls = _SOLVERS[algorithm]
    except KeyError:
        raise ValueError(
            f"unknown algorithm {algorithm!r}; choose from {sorted(_SOLVERS)}"
        ) from None
    started = time.perf_counter()
    result = solver_cls(graph, labels, **solver_kwargs).solve()
    wall = time.perf_counter() - started
    return QueryRun(
        algorithm=algorithm,
        labels=tuple(labels),
        result=result,
        wall_seconds=wall,
    )


def run_suite(
    graph: Graph,
    queries: Sequence[Sequence[Hashable]],
    algorithms: Sequence[str] = PROGRESSIVE_ALGORITHMS,
    **solver_kwargs,
) -> SuiteResult:
    """Run every algorithm on every query of a batch."""
    suite = SuiteResult()
    for algorithm in algorithms:
        suite.runs[algorithm] = [
            run_query(algorithm, graph, labels, **solver_kwargs)
            for labels in queries
        ]
    return suite


# ----------------------------------------------------------------------
# Throughput mode (query service)
# ----------------------------------------------------------------------
@dataclass
class ThroughputResult:
    """A batch's serving-rate reading through the query executor."""

    outcomes: List[QueryOutcome]
    total_seconds: float
    max_workers: int
    algorithm: str

    @property
    def num_queries(self) -> int:
        return len(self.outcomes)

    @property
    def num_ok(self) -> int:
        return sum(1 for outcome in self.outcomes if outcome.ok)

    @property
    def num_failed(self) -> int:
        return self.num_queries - self.num_ok

    @property
    def queries_per_second(self) -> float:
        if self.total_seconds <= 0.0:
            return float("inf")
        return self.num_queries / self.total_seconds

    @property
    def mean_query_seconds(self) -> float:
        return mean([outcome.trace.wall_seconds for outcome in self.outcomes])

    def summary(self) -> str:
        return (
            f"{self.num_queries} queries ({self.num_ok} ok, "
            f"{self.num_failed} failed) in {self.total_seconds:.3f}s "
            f"= {self.queries_per_second:.1f} q/s "
            f"[{self.algorithm}, {self.max_workers} workers]"
        )


def run_throughput(
    graph: Union[Graph, GraphIndex],
    queries: Sequence[Sequence[Hashable]],
    *,
    algorithm: str = "pruneddp++",
    max_workers: Optional[int] = None,
    budget: Optional[Budget] = None,
    deadline: Optional[float] = None,
    trace_sink: Optional[TraceSink] = None,
    **solver_kwargs,
) -> ThroughputResult:
    """Serve a query batch through the executor and read queries/sec.

    Accepts a raw graph (an index is built, cold) or a pre-built
    :class:`~repro.service.GraphIndex` (the amortized serving path).
    Failures stay isolated per query — the throughput reading includes
    them, mirroring what a real service's load numbers would show.
    """
    index = GraphIndex.ensure(graph)
    started = time.perf_counter()
    with QueryExecutor(
        index,
        max_workers=max_workers,
        algorithm=algorithm,
        budget=budget,
        trace_sink=trace_sink,
    ) as executor:
        outcomes = executor.run_batch(
            queries, deadline=deadline, **solver_kwargs
        )
    total = time.perf_counter() - started
    return ThroughputResult(
        outcomes=outcomes,
        total_seconds=total,
        max_workers=executor.max_workers,
        algorithm=algorithm,
    )
