"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``solve``     Run a GST query over a graph stored on disk.
``generate``  Produce a synthetic dataset (edge/label files).
``info``      Summarize a stored graph.
``bench``     Regenerate one of the paper's figures/tables.

Graphs on disk use the two-file format of :mod:`repro.graph.io`
(``<stem>.edges`` + ``<stem>.labels``).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .bench import figures
from .core.solver import ALGORITHMS, solve_gst
from .core.topr import top_r_trees
from .errors import ReproError
from .graph import generators
from .graph.io import load_graph, save_graph

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Efficient and progressive Group Steiner Tree search "
        "(SIGMOD 2016 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    solve = sub.add_parser("solve", help="solve a GST query over a stored graph")
    solve.add_argument("--graph", required=True, help="graph file stem")
    solve.add_argument(
        "--labels", required=True,
        help="comma-separated query labels, e.g. q0,q1,q2",
    )
    solve.add_argument(
        "--algorithm",
        default="pruneddp++",
        choices=sorted(ALGORITHMS) + ["auto"],
    )
    solve.add_argument("--epsilon", type=float, default=0.0,
                       help="stop at a proven (1+eps)-approximation")
    solve.add_argument("--time-limit", type=float, default=None,
                       help="wall-clock budget in seconds")
    solve.add_argument("--top", type=int, default=1,
                       help="report the best TOP distinct answers")
    solve.add_argument("--exact-top", action="store_true",
                       help="with --top: exact enumeration instead of "
                            "the progressive-search harvest")
    solve.add_argument("--progress", action="store_true",
                       help="print UB/LB events while solving")
    solve.add_argument("--quiet", action="store_true",
                       help="print only the final weight")
    solve.add_argument("--json", action="store_true",
                       help="emit the full result record as JSON")
    solve.add_argument("--dot", action="store_true",
                       help="emit the answer tree as Graphviz DOT")
    solve.add_argument("--chart", action="store_true",
                       help="draw the UB/LB convergence chart")

    gen = sub.add_parser("generate", help="write a synthetic dataset")
    gen.add_argument(
        "--kind", required=True,
        choices=["dblp", "imdb", "powerlaw", "road", "random"],
    )
    gen.add_argument("--out", required=True, help="output file stem")
    gen.add_argument("--size", type=int, default=500,
                     help="approximate node count")
    gen.add_argument("--query-labels", type=int, default=20,
                     help="number of controlled-frequency query labels")
    gen.add_argument("--label-frequency", type=int, default=8,
                     help="nodes per query label (the paper's kwf)")
    gen.add_argument("--seed", type=int, default=0)

    info = sub.add_parser("info", help="summarize a stored graph")
    info.add_argument("--graph", required=True, help="graph file stem")

    bench = sub.add_parser("bench", help="regenerate a paper experiment")
    bench.add_argument(
        "--experiment", required=True,
        choices=["fig4", "fig6", "fig8", "fig10", "fig16", "table2"],
    )
    bench.add_argument("--dataset", default="dblp",
                       choices=["dblp", "imdb", "livejournal", "roadusa"])
    bench.add_argument("--scale", default="tiny",
                       choices=["tiny", "small", "medium"])

    return parser


# ----------------------------------------------------------------------
# Command implementations
# ----------------------------------------------------------------------
def _cmd_solve(args: argparse.Namespace) -> int:
    graph = load_graph(args.graph)
    labels = [token for token in args.labels.split(",") if token]

    on_progress = None
    if args.progress:
        def on_progress(point):
            ub = "inf" if point.best_weight == float("inf") else f"{point.best_weight:g}"
            print(
                f"t={point.elapsed:8.3f}s  UB={ub:>10}  "
                f"LB={point.lower_bound:10.4f}",
                file=sys.stderr,
            )

    if args.top > 1:
        from .core.topr import exact_top_r_trees

        top_fn = exact_top_r_trees if args.exact_top else top_r_trees
        trees = top_fn(
            graph, labels, args.top,
            time_limit=args.time_limit,
        )
        for i, tree in enumerate(trees, 1):
            print(f"# answer {i}: weight={tree.weight:g}")
            if not args.quiet:
                print(tree.render(graph))
        return 0

    solver_kwargs = {}
    if args.time_limit is not None:
        solver_kwargs["time_limit"] = args.time_limit
    if args.algorithm == "dpbf":
        # DPBF is the non-progressive prior art: no epsilon/progress.
        if args.epsilon or on_progress is not None:
            print(
                "note: dpbf is not progressive; ignoring --epsilon/--progress",
                file=sys.stderr,
            )
    else:
        if args.epsilon:
            solver_kwargs["epsilon"] = args.epsilon
        if on_progress is not None:
            solver_kwargs["on_progress"] = on_progress
    result = solve_gst(
        graph, labels, algorithm=args.algorithm, **solver_kwargs
    )
    if args.json:
        import json

        print(json.dumps(result.to_dict(), indent=2, sort_keys=True))
        return 0
    if args.dot:
        if result.tree is None:
            print("error: no feasible tree found", file=sys.stderr)
            return 2
        print(result.tree.to_dot(graph))
        return 0
    if args.quiet:
        print(f"{result.weight:g}")
        return 0
    print(f"algorithm : {result.algorithm}")
    print(f"weight    : {result.weight:g}")
    print(f"optimal   : {result.optimal}")
    if not result.optimal:
        print(f"ratio     : <= {result.ratio:.4f}")
    print(f"states    : {result.stats.states_popped} popped, "
          f"{result.stats.peak_live_states} peak live")
    print(f"time      : {result.stats.total_seconds:.3f}s "
          f"(init {result.stats.init_seconds:.3f}s)")
    if result.tree is not None:
        print(result.tree.render(graph))
    if args.chart and result.trace:
        from .bench.plotting import progressive_chart

        trace = [
            (p.elapsed, p.best_weight, p.lower_bound) for p in result.trace
        ]
        print()
        print(progressive_chart({result.algorithm: trace}))
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    kind = args.kind
    common = dict(
        num_query_labels=args.query_labels,
        label_frequency=args.label_frequency,
        seed=args.seed,
    )
    if kind == "dblp":
        graph = generators.dblp_like(
            num_papers=args.size * 3 // 5,
            num_authors=args.size * 2 // 5,
            **common,
        )
    elif kind == "imdb":
        graph = generators.imdb_like(
            num_movies=args.size * 3 // 5,
            num_people=args.size * 2 // 5,
            **common,
        )
    elif kind == "powerlaw":
        graph = generators.powerlaw(args.size, **common)
    elif kind == "road":
        side = max(2, int(args.size ** 0.5))
        graph = generators.road_grid(side, side, **common)
    else:
        graph = generators.random_graph(args.size, args.size * 2, **common)
    edges_path, labels_path = save_graph(graph, args.out)
    print(f"wrote {graph.num_nodes} nodes / {graph.num_edges} edges to "
          f"{edges_path} and {labels_path}")
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    graph = load_graph(args.graph)
    degrees = [graph.degree(v) for v in graph.nodes()] or [0]
    print(f"nodes        : {graph.num_nodes}")
    print(f"edges        : {graph.num_edges}")
    print(f"total weight : {graph.total_weight:g}")
    print(f"labels       : {graph.num_labels}")
    print(f"max degree   : {max(degrees)}")
    print(f"avg degree   : {sum(degrees) / len(degrees):.2f}")
    frequencies = sorted(
        (graph.label_frequency(label) for label in graph.all_labels()),
        reverse=True,
    )
    if frequencies:
        print(f"label freq   : max={frequencies[0]} "
              f"median={frequencies[len(frequencies) // 2]}")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    dataset, scale = args.dataset, args.scale
    if args.experiment == "fig4":
        fig = figures.figure_time_vs_ratio_knum(dataset, scale=scale)
    elif args.experiment == "fig6":
        fig = figures.figure_time_vs_ratio_kwf(dataset, scale=scale)
    elif args.experiment == "fig8":
        fig = figures.figure_memory_vs_ratio_knum(dataset, scale=scale)
    elif args.experiment == "fig10":
        fig = figures.figure_progressive_bounds(dataset, scale=scale)
    elif args.experiment == "fig16":
        fig = figures.figure_large_knum(dataset, scale=scale)
    else:  # table2
        fig = figures.table_banks_comparison(dataset, scale=scale)
    print(fig.text)
    return 0


_COMMANDS = {
    "solve": _cmd_solve,
    "generate": _cmd_generate,
    "info": _cmd_info,
    "bench": _cmd_bench,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # stdout consumer (e.g. `| head`) went away mid-print: not an error.
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
