"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``solve``       Run a GST query over a graph stored on disk.
``batch``       Serve a file of queries concurrently over one shared index.
``serve``       Run the streaming TCP query server (:mod:`repro.server`):
                clients get a PROGRESS frame per improved incumbent and
                a terminal RESULT; SIGTERM/SIGINT drain gracefully.
``precompute``  Materialize a persistent precompute store (``repro.store``).
``generate``    Produce a synthetic dataset (edge/label files).
``info``        Summarize a stored graph.
``bench``       Regenerate one of the paper's figures/tables.
``resume``      Resume checkpointed queries (``batch --checkpoint-dir``)
                to completion after a crash or interruption.
``verify``      Cross-check every algorithm tier on one instance and
                certify each answer (replays minimized fuzz reproducers).
``metrics``     Dump the process-wide metrics registry (:mod:`repro.obs`)
                in Prometheus text exposition format — optionally after
                running a query workload so the counters are non-zero.
``fuzz``        Seeded differential sweep over random instances
                (:mod:`repro.verify`); failures are minimized and saved.

``solve`` and ``batch`` accept ``--store PATH`` to warm-start from a
store built by ``precompute``: per-label distance tables are preloaded
and the epsilon-aware result cache is consulted/updated.  An unusable
store (corrupt, version skew, graph fingerprint mismatch) fails closed
— a warning is printed and the query runs cold.

Graphs on disk use the two-file format of :mod:`repro.graph.io`
(``<stem>.edges`` + ``<stem>.labels``).  Query files for ``batch`` hold
one query per line as comma-separated labels (``#`` comments and blank
lines are skipped).
"""

from __future__ import annotations

import argparse
import sys
import time as _time
from typing import List, Optional

from .bench import figures
from .core.solver import ALGORITHMS, solve_gst
from .core.topr import top_r_trees
from .errors import ReproError, StoreError
from .graph import generators
from .graph.io import load_graph, save_graph

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Efficient and progressive Group Steiner Tree search "
        "(SIGMOD 2016 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    solve = sub.add_parser("solve", help="solve a GST query over a stored graph")
    solve.add_argument("--graph", required=True, help="graph file stem")
    solve.add_argument(
        "--labels", required=True,
        help="comma-separated query labels, e.g. q0,q1,q2",
    )
    solve.add_argument(
        "--algorithm",
        default="pruneddp++",
        choices=sorted(ALGORITHMS) + ["auto"],
    )
    solve.add_argument("--epsilon", type=float, default=0.0,
                       help="stop at a proven (1+eps)-approximation")
    solve.add_argument("--time-limit", type=float, default=None,
                       help="wall-clock budget in seconds")
    solve.add_argument("--top", type=int, default=1,
                       help="report the best TOP distinct answers")
    solve.add_argument("--exact-top", action="store_true",
                       help="with --top: exact enumeration instead of "
                            "the progressive-search harvest")
    solve.add_argument("--progress", action="store_true",
                       help="print UB/LB events while solving")
    solve.add_argument("--quiet", action="store_true",
                       help="print only the final weight")
    solve.add_argument("--json", action="store_true",
                       help="emit the full result record as JSON")
    solve.add_argument("--dot", action="store_true",
                       help="emit the answer tree as Graphviz DOT")
    solve.add_argument("--profile", action="store_true",
                       help="run the solve under cProfile and print the top "
                            "25 functions by cumulative time to stderr")
    solve.add_argument("--chart", action="store_true",
                       help="draw the UB/LB convergence chart")
    solve.add_argument("--store", default=None, metavar="PATH",
                       help="warm-start from a precompute store directory "
                            "(falls back to cold solve if unusable)")

    batch = sub.add_parser(
        "batch",
        help="serve a file of queries concurrently over one shared index",
    )
    batch.add_argument("--graph", required=True, help="graph file stem")
    batch.add_argument(
        "--queries", required=True,
        help="query file: one comma-separated label set per line",
    )
    batch.add_argument(
        "--algorithm",
        default="pruneddp++",
        choices=sorted(ALGORITHMS) + ["auto"],
    )
    batch.add_argument("--max-workers", type=int, default=None,
                       help="executor thread count (default: cpu-bound)")
    batch.add_argument("--time-limit", type=float, default=None,
                       help="per-query wall-clock budget in seconds")
    batch.add_argument("--epsilon", type=float, default=0.0,
                       help="stop each query at a proven (1+eps)-approximation")
    batch.add_argument("--max-states", type=int, default=None,
                       help="per-query cap on popped DP states")
    batch.add_argument("--deadline", type=float, default=None,
                       help="whole-batch wall-clock allowance in seconds")
    batch.add_argument("--traces", default=None,
                       help="write per-query JSONL traces to this file")
    batch.add_argument("--retries", type=int, default=0,
                       help="re-run timed-out/crashed queries up to N times")
    batch.add_argument("--degrade", action="store_true",
                       help="with --retries: each retry drops one rung down "
                            "the pruneddp++>pruneddp>basic ladder with a "
                            "growing epsilon (bounded-gap degraded answers)")
    batch.add_argument("--admission", type=int, default=None, metavar="STATES",
                       help="reject queries whose estimated DP state space "
                            "exceeds STATES (admission control)")
    batch.add_argument("--quiet", action="store_true",
                       help="print only the summary line")
    batch.add_argument("--store", default=None, metavar="PATH",
                       help="warm-start from a precompute store directory; "
                            "successful answers are persisted back "
                            "(falls back to cold serving if unusable)")
    batch.add_argument("--isolation", default="thread",
                       choices=["thread", "process", "fleet"],
                       help="run each solve in a worker thread (default), a "
                            "supervised subprocess forked per query "
                            "(process), or a persistent pre-forked worker "
                            "attached to a shared-memory snapshot (fleet: "
                            "process isolation plus multi-core throughput)")
    batch.add_argument("--workers", type=int, default=None, metavar="N",
                       help="with --isolation=fleet: persistent worker "
                            "processes to pre-fork (default: up to 4)")
    batch.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                       help="write engine checkpoints here; interrupted or "
                            "crashed queries resume from their latest "
                            "checkpoint (see the 'resume' command)")
    batch.add_argument("--checkpoint-every", type=int, default=None,
                       metavar="POPS",
                       help="checkpoint cadence in engine state pops "
                            "(default 2000; a 2s wall-clock trigger always "
                            "runs alongside)")
    batch.add_argument("--max-rss-mb", type=float, default=None,
                       help="with --isolation=process: memory watchdog — a "
                            "worker over this RSS is checkpointed and killed")
    batch.add_argument("--worker-timeout", type=float, default=None,
                       help="with --isolation=process: hard wall-clock kill "
                            "deadline per worker in seconds")

    serve = sub.add_parser(
        "serve",
        help="run the streaming TCP query server (repro.server)",
    )
    serve.add_argument("--graph", required=True, help="graph file stem")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=7464,
                       help="TCP port (0 picks a free one; default 7464)")
    serve.add_argument(
        "--algorithm",
        default="pruneddp++",
        choices=sorted(ALGORITHMS) + ["auto"],
        help="default algorithm for queries that do not choose one",
    )
    serve.add_argument("--epsilon", type=float, default=0.0,
                       help="default per-query (1+eps) stopping gap")
    serve.add_argument("--time-limit", type=float, default=None,
                       help="default per-query wall-clock budget in seconds")
    serve.add_argument("--max-states", type=int, default=None,
                       help="default per-query cap on popped DP states")
    serve.add_argument("--max-workers", type=int, default=None,
                       help="executor thread count (default: cpu-bound)")
    serve.add_argument("--workers", type=int, default=None, metavar="N",
                       help="serve from a shared-memory worker fleet of N "
                            "persistent processes (isolation='fleet'): true "
                            "multi-core throughput, no PROGRESS streaming")
    serve.add_argument("--max-inflight", type=int, default=4,
                       help="concurrent queries allowed per connection")
    serve.add_argument("--admission", type=int, default=None, metavar="STATES",
                       help="reject queries whose estimated DP state space "
                            "exceeds STATES (admission control)")
    serve.add_argument("--traces", default=None,
                       help="write per-query JSONL traces to this file "
                            "(flushed and closed on drain)")
    serve.add_argument("--store", default=None, metavar="PATH",
                       help="warm-start from a precompute store directory "
                            "(falls back to cold serving if unusable)")
    serve.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                       help="checkpoint in-flight queries here when a drain "
                            "has to cancel them")
    serve.add_argument("--drain-grace", type=float, default=None,
                       metavar="SECONDS",
                       help="on SIGTERM/SIGINT: wait this long for in-flight "
                            "queries before cancelling them (default: wait)")
    serve.add_argument("--metrics-port", type=int, default=None, metavar="N",
                       help="also serve the Prometheus text exposition of "
                            "the metrics registry over HTTP on this port "
                            "(0 picks a free one; default: off)")

    res = sub.add_parser(
        "resume",
        help="resume checkpointed queries to completion",
    )
    res.add_argument("--graph", required=True, help="graph file stem")
    res.add_argument("--checkpoint", default=None, metavar="FILE",
                     help="one checkpoint file to resume")
    res.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                     help="resume every checkpoint found in DIR")
    res.add_argument("--time-limit", type=float, default=None,
                     help="per-query wall-clock budget in seconds "
                          "(default: run to proven optimality)")
    res.add_argument("--json", action="store_true",
                     help="emit one JSON record per resumed query")
    res.add_argument("--quiet", action="store_true",
                     help="print only the summary line")

    pre = sub.add_parser(
        "precompute",
        help="materialize a persistent precompute store for a graph",
    )
    pre.add_argument("--graph", required=True, help="graph file stem")
    pre.add_argument("--out", required=True, help="store directory to write")
    pre.add_argument("--top-k", type=int, default=64,
                     help="precompute tables for the K hottest labels")
    pre.add_argument("--labels", default=None,
                     help="comma-separated labels to precompute "
                          "(overrides --top-k selection)")
    pre.add_argument("--queries", default=None,
                     help="workload file (one comma-separated label set per "
                          "line) guiding hot-label selection")
    pre.add_argument("--solve", action="store_true",
                     help="with --queries: also pre-solve the workload and "
                          "persist the answers in the result cache")
    pre.add_argument(
        "--algorithm",
        default="pruneddp++",
        choices=sorted(ALGORITHMS) + ["auto"],
        help="algorithm tier used with --solve",
    )
    pre.add_argument("--epsilon", type=float, default=0.0,
                     help="with --solve: stop each pre-solved query at a "
                          "proven (1+eps)-approximation")

    gen = sub.add_parser("generate", help="write a synthetic dataset")
    gen.add_argument(
        "--kind", required=True,
        choices=["dblp", "imdb", "powerlaw", "road", "random"],
    )
    gen.add_argument("--out", required=True, help="output file stem")
    gen.add_argument("--size", type=int, default=500,
                     help="approximate node count")
    gen.add_argument("--query-labels", type=int, default=20,
                     help="number of controlled-frequency query labels")
    gen.add_argument("--label-frequency", type=int, default=8,
                     help="nodes per query label (the paper's kwf)")
    gen.add_argument("--seed", type=int, default=0)

    info = sub.add_parser("info", help="summarize a stored graph")
    info.add_argument("--graph", required=True, help="graph file stem")

    metrics = sub.add_parser(
        "metrics",
        help="dump the metrics registry in Prometheus text format",
    )
    metrics.add_argument("--graph", default=None, help="graph file stem: "
                         "run a workload first so counters are non-zero")
    metrics.add_argument("--queries", default=None,
                         help="query file to run before dumping "
                              "(requires --graph)")
    metrics.add_argument(
        "--algorithm",
        default="pruneddp++",
        choices=sorted(ALGORITHMS) + ["auto"],
        help="algorithm for the --queries workload",
    )

    verify = sub.add_parser(
        "verify",
        help="run every algorithm tier on one query and certify the answers",
    )
    verify.add_argument("--graph", required=True, help="graph file stem")
    verify.add_argument(
        "--labels", required=True,
        help="comma-separated query labels, e.g. q0,q1,q2",
    )
    verify.add_argument(
        "--algorithm", action="append", default=None, metavar="TIER",
        choices=sorted(ALGORITHMS) + ["bruteforce"],
        help="tier to include (repeatable; default: all applicable)",
    )
    verify.add_argument("--epsilon", type=float, default=0.0,
                        help="allow progressive tiers a proven (1+eps) gap")
    verify.add_argument("--debug-certify", action="store_true",
                        help="also certify every incumbent update inside "
                             "the engines (slower, pinpoints the bad pop)")
    verify.add_argument("--quiet", action="store_true",
                        help="print only the verdict line")

    fuzz = sub.add_parser(
        "fuzz",
        help="seeded differential fuzz sweep across all algorithm tiers",
    )
    fuzz.add_argument("--seed", type=int, default=0,
                      help="first round seed (rounds use seed..seed+N-1)")
    fuzz.add_argument("--rounds", type=int, default=200,
                      help="number of random instances to sweep")
    fuzz.add_argument("--max-nodes", type=int, default=24,
                      help="largest random graph to generate")
    fuzz.add_argument("--max-labels", type=int, default=5,
                      help="largest query-label pool to generate")
    fuzz.add_argument("--epsilon", type=float, default=0.0,
                      help="fuzz the anytime mode at this epsilon instead "
                           "of exact agreement")
    fuzz.add_argument("--metamorphic", type=int, default=0, metavar="N",
                      help="run the metamorphic transforms every N-th "
                           "round (0 = off)")
    fuzz.add_argument("--debug-certify", action="store_true",
                      help="certify every incumbent update inside the "
                           "engines during the sweep")
    fuzz.add_argument("--out", default="fuzz-failures", metavar="DIR",
                      help="directory for minimized reproducers "
                           "(created only on failure)")
    fuzz.add_argument("--quiet", action="store_true",
                      help="print only the summary line")

    bench = sub.add_parser("bench", help="regenerate a paper experiment")
    bench.add_argument(
        "--experiment", required=True,
        choices=["fig4", "fig6", "fig8", "fig10", "fig16", "table2"],
    )
    bench.add_argument("--dataset", default="dblp",
                       choices=["dblp", "imdb", "livejournal", "roadusa"])
    bench.add_argument("--scale", default="tiny",
                       choices=["tiny", "small", "medium"])

    return parser


# ----------------------------------------------------------------------
# Command implementations
# ----------------------------------------------------------------------
def _index_with_store(graph, store_path: str):
    """A GraphIndex warm-started from ``store_path`` — or cold.

    The fail-closed contract: any :class:`~repro.errors.StoreError`
    (corruption, version skew, fingerprint mismatch) prints a warning
    and returns a cold index, so a bad artifact can never corrupt or
    block a solve.
    """
    from .service import GraphIndex

    index = GraphIndex(graph)
    try:
        warmed = index.attach_store(store_path)
    except StoreError as exc:
        print(
            f"warning: precompute store {store_path!r} is unusable ({exc}); "
            "continuing with a cold index",
            file=sys.stderr,
        )
    else:
        cached = len(index.result_cache) if index.result_cache is not None else 0
        print(
            f"store: warmed {warmed} label tables, {cached} cached answers "
            f"from {store_path}",
            file=sys.stderr,
        )
    return index


def _cmd_solve(args: argparse.Namespace) -> int:
    graph = load_graph(args.graph)
    labels = [token for token in args.labels.split(",") if token]

    on_progress = None
    if args.progress:
        def on_progress(point):
            ub = "inf" if point.best_weight == float("inf") else f"{point.best_weight:g}"
            print(
                f"t={point.elapsed:8.3f}s  UB={ub:>10}  "
                f"LB={point.lower_bound:10.4f}",
                file=sys.stderr,
            )

    if args.top > 1:
        from .core.topr import exact_top_r_trees

        top_fn = exact_top_r_trees if args.exact_top else top_r_trees
        trees = top_fn(
            graph, labels, args.top,
            time_limit=args.time_limit,
        )
        for i, tree in enumerate(trees, 1):
            print(f"# answer {i}: weight={tree.weight:g}")
            if not args.quiet:
                print(tree.render(graph))
        return 0

    solver_kwargs = {}
    if args.time_limit is not None:
        solver_kwargs["time_limit"] = args.time_limit
    if args.algorithm == "dpbf":
        # DPBF is the non-progressive prior art: no epsilon/progress.
        if args.epsilon or on_progress is not None:
            print(
                "note: dpbf is not progressive; ignoring --epsilon/--progress",
                file=sys.stderr,
            )
    else:
        if args.epsilon:
            solver_kwargs["epsilon"] = args.epsilon
        if on_progress is not None:
            solver_kwargs["on_progress"] = on_progress
    profiler = None
    if args.profile:
        import cProfile

        profiler = cProfile.Profile()
        profiler.enable()
    try:
        if args.store is not None:
            index = _index_with_store(graph, args.store)
            result = index.solve(labels, algorithm=args.algorithm, **solver_kwargs)
            index.save_results()
        else:
            result = solve_gst(
                graph, labels, algorithm=args.algorithm, **solver_kwargs
            )
    finally:
        if profiler is not None:
            import pstats

            profiler.disable()
            stats = pstats.Stats(profiler, stream=sys.stderr)
            stats.strip_dirs().sort_stats("cumulative").print_stats(25)
    if args.json:
        import json

        print(json.dumps(result.to_dict(), indent=2, sort_keys=True))
        return 0
    if args.dot:
        if result.tree is None:
            print("error: no feasible tree found", file=sys.stderr)
            return 2
        print(result.tree.to_dot(graph))
        return 0
    if args.quiet:
        print(f"{result.weight:g}")
        return 0
    print(f"algorithm : {result.algorithm}")
    print(f"weight    : {result.weight:g}")
    print(f"optimal   : {result.optimal}")
    if not result.optimal:
        print(f"ratio     : <= {result.ratio:.4f}")
    print(f"states    : {result.stats.states_popped} popped, "
          f"{result.stats.peak_live_states} peak live")
    print(f"time      : {result.stats.total_seconds:.3f}s "
          f"(init {result.stats.init_seconds:.3f}s)")
    if result.tree is not None:
        print(result.tree.render(graph))
    if args.chart and result.trace:
        from .bench.plotting import progressive_chart

        trace = [
            (p.elapsed, p.best_weight, p.lower_bound) for p in result.trace
        ]
        print()
        print(progressive_chart({result.algorithm: trace}))
    return 0


def _read_query_file(path: str) -> List[List[str]]:
    """Parse a batch query file: one comma-separated label set per line."""
    queries: List[List[str]] = []
    try:
        handle = open(path, "r", encoding="utf-8")
    except OSError as exc:
        raise ReproError(f"cannot read query file: {exc}") from None
    with handle:
        for lineno, line in enumerate(handle, 1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            labels = [token.strip() for token in line.split(",") if token.strip()]
            if not labels:
                raise ReproError(f"{path}:{lineno}: empty query line")
            queries.append(labels)
    if not queries:
        raise ReproError(f"{path}: no queries found")
    return queries


def _cmd_batch(args: argparse.Namespace) -> int:
    import signal

    from .core.budget import Budget, CancellationToken
    from .service import (
        AdmissionPolicy,
        GraphIndex,
        QueryExecutor,
        RetryPolicy,
        TraceSink,
        WorkerPolicy,
    )

    graph = load_graph(args.graph)
    queries = _read_query_file(args.queries)
    budget = Budget(
        time_limit=args.time_limit,
        epsilon=args.epsilon,
        max_states=args.max_states,
    )
    if args.retries < 0:
        raise ReproError("--retries must be >= 0")
    retry_policy = None
    if args.retries > 0 or args.degrade:
        retry_policy = RetryPolicy(
            max_retries=max(1, args.retries), degrade=args.degrade
        )
    admission = (
        AdmissionPolicy(max_estimated_states=args.admission)
        if args.admission is not None
        else None
    )
    worker_policy = None
    if (
        args.max_rss_mb is not None
        or args.worker_timeout is not None
        or args.checkpoint_every is not None
    ):
        policy_kwargs = dict(
            max_rss_mb=args.max_rss_mb,
            hard_timeout_seconds=args.worker_timeout,
        )
        if args.checkpoint_every is not None:
            policy_kwargs["checkpoint_every_pops"] = args.checkpoint_every
        worker_policy = WorkerPolicy(**policy_kwargs)
    sink = TraceSink(args.traces) if args.traces else None
    if args.store is not None:
        index = _index_with_store(graph, args.store)
    else:
        index = GraphIndex(graph)

    # Graceful interruption: SIGINT/SIGTERM cancel the shared token
    # instead of killing the process mid-write.  In-flight engines
    # checkpoint (when --checkpoint-dir is set) and return their best
    # anytime answers, queued queries come back "cancelled", and the
    # partial-results summary below still prints — so an interrupted
    # batch is resumable, not lost.
    token = CancellationToken()
    interrupted: dict = {"signum": None}

    def _on_signal(signum, frame):
        if interrupted["signum"] is None:
            interrupted["signum"] = signum
            name = signal.Signals(signum).name
            print(
                f"\n{name}: cancelling batch — in-flight queries are "
                "checkpointing and returning their best answers...",
                file=sys.stderr,
            )
            token.cancel(f"interrupted by {name}")

    previous_handlers = {}
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            previous_handlers[signum] = signal.signal(signum, _on_signal)
        except (ValueError, OSError):  # pragma: no cover - non-main thread
            pass

    started = _time.perf_counter()
    try:
        with QueryExecutor(
            index,
            max_workers=args.max_workers,
            algorithm=args.algorithm,
            budget=budget,
            trace_sink=sink,
            retry_policy=retry_policy,
            admission=admission,
            isolation=args.isolation,
            checkpoint_dir=args.checkpoint_dir,
            worker_policy=worker_policy,
            workers=args.workers if args.isolation == "fleet" else None,
        ) as executor:
            outcomes = executor.run_batch(
                queries, deadline=args.deadline, cancel_token=token
            )
    finally:
        for signum, handler in previous_handlers.items():
            try:
                signal.signal(signum, handler)
            except (ValueError, OSError):  # pragma: no cover
                pass
        if sink is not None:
            sink.close()
    total = _time.perf_counter() - started

    ok = 0
    degraded = rejected = retried = 0
    for outcome in outcomes:
        trace = outcome.trace
        if outcome.ok:
            ok += 1
            weight = outcome.result.weight
            detail = (
                f"weight={weight:g} "
                f"{'optimal' if outcome.result.optimal else 'anytime'}"
            )
            if trace.degraded:
                detail += f" degraded->{trace.algorithm}"
        else:
            detail = trace.error or "failed"
        degraded += trace.degraded
        rejected += trace.status == "rejected"
        retried += trace.attempts > 1
        if not args.quiet:
            print(
                f"[{outcome.query_id:>3}] {trace.status:<10} "
                f"{','.join(str(l) for l in outcome.labels):<30} "
                f"{trace.wall_seconds * 1e3:8.1f} ms  {detail}"
            )
    qps = len(outcomes) / total if total > 0 else float("inf")
    print(
        f"batch: {len(outcomes)} queries ({ok} ok, {len(outcomes) - ok} "
        f"failed) in {total:.3f}s = {qps:.1f} q/s "
        f"[{args.algorithm}, {executor.max_workers} "
        f"{args.isolation} workers]"
    )
    if degraded or rejected or retried:
        print(
            f"resilience: {retried} retried, {degraded} degraded, "
            f"{rejected} rejected"
        )
    checkpoints = sum(o.trace.checkpoints for o in outcomes)
    resumed = sum(o.trace.resumed_from is not None for o in outcomes)
    restarts = sum(o.trace.worker_restarts for o in outcomes)
    watchdog = sum(o.trace.watchdog_kills for o in outcomes)
    if checkpoints or resumed or restarts or watchdog:
        print(
            f"durability: {checkpoints} checkpoints written, {resumed} "
            f"queries resumed, {restarts} workers restarted, "
            f"{watchdog} watchdog kills"
        )
    if sink is not None:
        print(f"traces: {sink.count} records -> {args.traces}")
    if args.store is not None and index.store is not None:
        hits = sum(o.trace.result_cache == "hit" for o in outcomes)
        saved = index.save_results()
        print(
            f"store: {hits} result-cache hits; persisted {saved} answers "
            f"-> {args.store}"
        )
    if interrupted["signum"] is not None:
        name = signal.Signals(interrupted["signum"]).name
        cancelled_n = sum(o.trace.status == "cancelled" for o in outcomes)
        # A cancelled query with an incumbent still counts as ok above;
        # here "completed" means it actually ran to its natural end.
        completed = sum(
            o.ok and o.trace.status != "cancelled" for o in outcomes
        )
        print(
            f"interrupted by {name}: partial results above — "
            f"{completed} completed, {cancelled_n} cancelled"
        )
        if args.checkpoint_dir is not None:
            print(
                "resume interrupted queries with: repro resume "
                f"--graph {args.graph} --checkpoint-dir {args.checkpoint_dir}"
            )
        return 130 if interrupted["signum"] == signal.SIGINT else 143
    return 0 if ok > 0 else 2


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import signal

    from .core.budget import Budget
    from .server import GSTServer
    from .service import AdmissionPolicy, GraphIndex

    graph = load_graph(args.graph)
    if args.store is not None:
        index = _index_with_store(graph, args.store)
    else:
        index = GraphIndex(graph)
    budget = None
    if args.epsilon or args.time_limit is not None or args.max_states is not None:
        budget = Budget(
            time_limit=args.time_limit,
            epsilon=args.epsilon,
            max_states=args.max_states,
        )
    admission = (
        AdmissionPolicy(max_estimated_states=args.admission)
        if args.admission is not None
        else None
    )

    executor_kwargs: dict = {
        "max_workers": args.max_workers,
        "trace_sink": args.traces,
        "admission": admission,
        "checkpoint_dir": args.checkpoint_dir,
    }
    if args.workers is not None:
        executor_kwargs["isolation"] = "fleet"
        executor_kwargs["workers"] = args.workers

    async def _run() -> int:
        server = GSTServer(
            index,
            host=args.host,
            port=args.port,
            algorithm=args.algorithm,
            budget=budget,
            max_inflight=args.max_inflight,
            drain_grace=args.drain_grace,
            metrics_port=args.metrics_port,
            **executor_kwargs,
        )
        await server.start()
        mode = (
            f"fleet of {args.workers} workers"
            if args.workers is not None
            else "in-process threads"
        )
        print(
            f"serving {args.graph} ({index.num_nodes} nodes, "
            f"{index.num_edges} edges) on {server.host}:{server.port} "
            f"[{args.algorithm}, {mode}]",
            flush=True,
        )
        if server.metrics_port is not None:
            print(
                f"metrics: http://{server.host}:{server.metrics_port}/metrics",
                flush=True,
            )
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        received: dict = {"signum": None}

        def _on_signal(signum: int) -> None:
            if received["signum"] is None:
                received["signum"] = signum
                stop.set()

        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, _on_signal, signum)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass
        serving = asyncio.ensure_future(server.serve_forever())
        await stop.wait()
        name = signal.Signals(received["signum"]).name
        print(
            f"{name}: draining — no new queries; waiting for "
            f"{server.inflight_queries} in flight...",
            file=sys.stderr,
            flush=True,
        )
        await server.drain()
        serving.cancel()
        try:
            await serving
        except asyncio.CancelledError:
            pass
        stats = server.stats
        print(
            f"drained: {stats.results_sent} results, "
            f"{stats.progress_frames_sent} progress frames, "
            f"{stats.errors_sent} errors over "
            f"{stats.connections_accepted} connections",
            flush=True,
        )
        # A drain is the server's *normal* end of life, so it exits 0
        # (unlike batch, where an interrupt means lost work).
        return 0

    return asyncio.run(_run())


def _cmd_resume(args: argparse.Namespace) -> int:
    import glob
    import os

    from .core.budget import Budget
    from .service import GraphIndex, resume_query
    from .service.durability import CHECKPOINT_SUFFIX

    if (args.checkpoint is None) == (args.checkpoint_dir is None):
        raise ReproError(
            "resume needs exactly one of --checkpoint / --checkpoint-dir"
        )
    if args.checkpoint is not None:
        paths = [args.checkpoint]
    else:
        paths = sorted(
            glob.glob(
                os.path.join(args.checkpoint_dir, f"*{CHECKPOINT_SUFFIX}")
            )
        )
        if not paths:
            print(
                f"resume: no checkpoints in {args.checkpoint_dir} — "
                "nothing to do"
            )
            return 0
    graph = load_graph(args.graph)
    index = GraphIndex(graph)
    budget = (
        Budget(time_limit=args.time_limit)
        if args.time_limit is not None
        else None
    )
    ok = failed = 0
    for path in paths:
        try:
            outcome = resume_query(index, path, budget=budget)
        except StoreError as exc:
            # Typed fail-closed surface: a truncated / corrupt /
            # version-skewed / wrong-graph checkpoint is reported, not
            # silently re-solved — the caller decides what to discard.
            print(f"resume: {exc}", file=sys.stderr)
            failed += 1
            continue
        trace = outcome.trace
        if outcome.ok:
            ok += 1
            result = outcome.result
            if args.json:
                import json

                record = trace.to_dict()
                record["checkpoint"] = path
                print(json.dumps(record, sort_keys=True))
            elif not args.quiet:
                print(
                    f"{os.path.basename(path):<28} "
                    f"{','.join(str(l) for l in outcome.labels):<30} "
                    f"weight={result.weight:g} "
                    f"{'optimal' if result.optimal else 'anytime'} "
                    f"({trace.wall_seconds * 1e3:.1f} ms, "
                    f"+{trace.checkpoints} checkpoints)"
                )
        else:
            failed += 1
            print(
                f"resume: {os.path.basename(path)} failed: {trace.error}",
                file=sys.stderr,
            )
    print(f"resume: {ok} completed, {failed} failed of {len(paths)}")
    return 0 if failed == 0 else 2


def _cmd_precompute(args: argparse.Namespace) -> int:
    from .store import build_store

    graph = load_graph(args.graph)
    workload = _read_query_file(args.queries) if args.queries else None
    if args.solve and workload is None:
        raise ReproError("--solve requires --queries")
    labels = None
    if args.labels is not None:
        labels = [token for token in args.labels.split(",") if token]
        if not labels:
            raise ReproError("--labels given but empty")
    report = build_store(
        graph,
        args.out,
        top_k=args.top_k,
        labels=labels,
        workload=workload,
        graph_stem=args.graph,
    )
    print(report.summary())
    if args.solve:
        index = _index_with_store(graph, args.out)
        solver_kwargs = {"epsilon": args.epsilon} if args.epsilon else {}
        ok = 0
        for labels_q in workload:
            outcome = index.execute(
                labels_q, algorithm=args.algorithm, **solver_kwargs
            )
            ok += outcome.ok
        saved = index.save_results()
        print(
            f"pre-solved {ok}/{len(workload)} workload queries; "
            f"persisted {saved} answers to the result cache"
        )
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    kind = args.kind
    common = dict(
        num_query_labels=args.query_labels,
        label_frequency=args.label_frequency,
        seed=args.seed,
    )
    if kind == "dblp":
        graph = generators.dblp_like(
            num_papers=args.size * 3 // 5,
            num_authors=args.size * 2 // 5,
            **common,
        )
    elif kind == "imdb":
        graph = generators.imdb_like(
            num_movies=args.size * 3 // 5,
            num_people=args.size * 2 // 5,
            **common,
        )
    elif kind == "powerlaw":
        graph = generators.powerlaw(args.size, **common)
    elif kind == "road":
        side = max(2, int(args.size ** 0.5))
        graph = generators.road_grid(side, side, **common)
    else:
        graph = generators.random_graph(args.size, args.size * 2, **common)
    edges_path, labels_path = save_graph(graph, args.out)
    print(f"wrote {graph.num_nodes} nodes / {graph.num_edges} edges to "
          f"{edges_path} and {labels_path}")
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    graph = load_graph(args.graph)
    degrees = [graph.degree(v) for v in graph.nodes()] or [0]
    print(f"nodes        : {graph.num_nodes}")
    print(f"edges        : {graph.num_edges}")
    print(f"total weight : {graph.total_weight:g}")
    print(f"labels       : {graph.num_labels}")
    print(f"max degree   : {max(degrees)}")
    print(f"avg degree   : {sum(degrees) / len(degrees):.2f}")
    frequencies = sorted(
        (graph.label_frequency(label) for label in graph.all_labels()),
        reverse=True,
    )
    if frequencies:
        print(f"label freq   : max={frequencies[0]} "
              f"median={frequencies[len(frequencies) // 2]}")
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    from .obs import get_registry, register_all

    registry = get_registry()
    # Register every known family up front so the dump is the complete
    # metric inventory even when a counter has never fired.
    register_all(registry)
    if args.queries is not None and args.graph is None:
        raise ReproError("--queries requires --graph")
    if args.graph is not None:
        from .service import GraphIndex, QueryExecutor

        graph = load_graph(args.graph)
        index = GraphIndex(graph)
        queries = (
            _read_query_file(args.queries) if args.queries is not None else []
        )
        if queries:
            with QueryExecutor(index, algorithm=args.algorithm) as executor:
                executor.run_batch(queries)
    sys.stdout.write(registry.render_exposition())
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    from .verify import verify_instance

    graph = load_graph(args.graph)
    labels = [token for token in args.labels.split(",") if token]
    report = verify_instance(
        graph,
        labels,
        algorithms=args.algorithm,
        epsilon=args.epsilon,
        debug_certify=args.debug_certify,
    )
    if not args.quiet:
        for name, run in report.runs.items():
            print(f"{name:<12}: {run.describe()}")
    if report.ok:
        feasible = [
            run for run in report.runs.values() if not run.infeasible
        ]
        if feasible:
            print(
                f"verify: {len(report.runs)} tiers agree, "
                f"weight={feasible[0].weight:g} — OK"
            )
        else:
            print(f"verify: {len(report.runs)} tiers agree — infeasible")
        return 0
    if report.disagreement is not None:
        print(f"verify: {report.disagreement}", file=sys.stderr)
    for violation in report.violations:
        print(f"verify: {violation}", file=sys.stderr)
    return 1


def _cmd_fuzz(args: argparse.Namespace) -> int:
    from .verify import run_sweep

    if args.rounds <= 0:
        raise ReproError("--rounds must be positive")
    progress_every = max(1, args.rounds // 10)
    started = _time.perf_counter()

    def on_round(report):
        done = report.seed - args.seed + 1
        if not args.quiet and done % progress_every == 0:
            elapsed = _time.perf_counter() - started
            print(
                f"fuzz: {done}/{args.rounds} rounds "
                f"({elapsed:.1f}s)", file=sys.stderr
            )
        if not report.ok:
            print(
                f"fuzz: seed {report.seed} FAILED: "
                f"{report.disagreement or '; '.join(report.violations)}",
                file=sys.stderr,
            )

    sweep = run_sweep(
        args.rounds,
        seed=args.seed,
        max_nodes=args.max_nodes,
        max_labels=args.max_labels,
        epsilon=args.epsilon,
        debug_certify=args.debug_certify,
        metamorphic_every=args.metamorphic,
        reproducer_dir=args.out,
        on_round=on_round,
    )
    print(sweep.summary())
    for report in sweep.failures:
        if report.reproducer is not None:
            print(
                f"fuzz: reproducer for seed {report.seed}: "
                f"{report.reproducer}(.edges/.labels/.json)",
                file=sys.stderr,
            )
    return 0 if sweep.ok else 1


def _cmd_bench(args: argparse.Namespace) -> int:
    dataset, scale = args.dataset, args.scale
    if args.experiment == "fig4":
        fig = figures.figure_time_vs_ratio_knum(dataset, scale=scale)
    elif args.experiment == "fig6":
        fig = figures.figure_time_vs_ratio_kwf(dataset, scale=scale)
    elif args.experiment == "fig8":
        fig = figures.figure_memory_vs_ratio_knum(dataset, scale=scale)
    elif args.experiment == "fig10":
        fig = figures.figure_progressive_bounds(dataset, scale=scale)
    elif args.experiment == "fig16":
        fig = figures.figure_large_knum(dataset, scale=scale)
    else:  # table2
        fig = figures.table_banks_comparison(dataset, scale=scale)
    print(fig.text)
    return 0


_COMMANDS = {
    "solve": _cmd_solve,
    "batch": _cmd_batch,
    "serve": _cmd_serve,
    "resume": _cmd_resume,
    "precompute": _cmd_precompute,
    "generate": _cmd_generate,
    "info": _cmd_info,
    "metrics": _cmd_metrics,
    "verify": _cmd_verify,
    "fuzz": _cmd_fuzz,
    "bench": _cmd_bench,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except (ReproError, ValueError) as error:
        # ValueError covers invalid limit values (Budget, max_workers,
        # deadline) raised by library-level validation.
        print(f"error: {error}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # stdout consumer (e.g. `| head`) went away mid-print: not an error.
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
