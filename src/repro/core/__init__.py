"""Core GST algorithms: the paper's contribution.

Public surface:

* :class:`GSTQuery`, :class:`SteinerTree`, :class:`GSTResult` — the
  value types;
* :class:`BasicSolver`, :class:`PrunedDPSolver`,
  :class:`PrunedDPPlusSolver`, :class:`PrunedDPPlusPlusSolver` — the
  paper's four progressive algorithms;
* :class:`DPBFSolver` — the prior state of the art (comparison point);
* :func:`solve_gst` — the one-call facade;
* :func:`top_r_trees` — approximate top-r per the paper's remark.
"""

from .budget import Budget
from .query import GSTQuery, MAX_QUERY_LABELS
from .tree import SteinerTree
from .result import GSTResult, ProgressPoint, SearchStats
from .context import QueryContext
from .allpaths import RouteTables, MAX_ALLPATHS_LABELS
from .bounds import LowerBounds
from .engine import SearchEngine
from .algorithms import (
    BasicSolver,
    PrunedDPSolver,
    PrunedDPPlusSolver,
    PrunedDPPlusPlusSolver,
)
from .dpbf import DPBFSolver, dpbf_optimal_weight
from .bruteforce import brute_force_gst, brute_force_route
from .topr import top_r_trees, exact_top_r_trees
from .solver import solve_gst, ALGORITHMS, default_algorithm
from .steiner import steiner_tree, steiner_tree_weight
from .cache import LabelDistanceCache, PreparedGraph
from .directed import (
    DirectedGSTSolver,
    DirectedSteinerTree,
    brute_force_directed_gst,
)

__all__ = [
    "Budget",
    "GSTQuery",
    "MAX_QUERY_LABELS",
    "SteinerTree",
    "GSTResult",
    "ProgressPoint",
    "SearchStats",
    "QueryContext",
    "RouteTables",
    "MAX_ALLPATHS_LABELS",
    "LowerBounds",
    "SearchEngine",
    "BasicSolver",
    "PrunedDPSolver",
    "PrunedDPPlusSolver",
    "PrunedDPPlusPlusSolver",
    "DPBFSolver",
    "dpbf_optimal_weight",
    "brute_force_gst",
    "brute_force_route",
    "top_r_trees",
    "exact_top_r_trees",
    "solve_gst",
    "ALGORITHMS",
    "default_algorithm",
    "steiner_tree",
    "steiner_tree_weight",
    "LabelDistanceCache",
    "PreparedGraph",
    "DirectedGSTSolver",
    "DirectedSteinerTree",
    "brute_force_directed_gst",
]
