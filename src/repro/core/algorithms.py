"""The four progressive GST solvers of the paper.

Each class prepares the per-query context (and, for PrunedDP++, the
AllPaths route tables), configures the shared
:class:`~repro.core.engine.SearchEngine` with the algorithm's policy,
and returns a :class:`~repro.core.result.GSTResult`.

All solvers accept the same keyword arguments, resource limits being
bundled in a single :class:`~repro.core.budget.Budget` (the loose
equivalents remain accepted and win over the budget's fields):

``budget``
    A :class:`Budget` carrying ``time_limit`` / ``epsilon`` /
    ``max_states`` / ``on_limit`` (and, for batch execution, an
    absolute deadline and/or a cooperative
    :class:`~repro.core.budget.CancellationToken`; a fired token stops
    the engine within a bounded number of state pops, returning the
    best feasible answer so far with ``result.stats.cancelled`` set).
``time_limit``
    Seconds after which the best feasible answer so far is returned
    (``result.optimal`` tells whether optimality was proven anyway).
``epsilon``
    Stop as soon as the proven ratio reaches ``1 + epsilon`` — the
    anytime mode the paper's progressive framework enables.
``max_states``
    Cap on popped states (``on_limit`` chooses return-best or raise).
``on_progress``
    Callback invoked with every :class:`ProgressPoint` (UB/LB event).
``on_event``
    Callback ``(name, payload)`` for engine lifecycle events
    (``search_started`` / ``new_best`` / ``search_finished``) — the
    structured-telemetry hook the service layer records.
``progressive``
    Set ``False`` to skip per-state feasible-solution construction
    (pure optimal-search mode; used by some ablations).
``bound_memo_limit``
    Optional cap on the A* lower-bound memo's ``(node, mask)`` entries
    (see :class:`~repro.core.bounds.LowerBounds`); evicting is safe —
    bounds are just re-derived — so long batches can bound memory.
``debug_certify``
    Opt-in correctness paranoia: every incumbent update is re-validated
    by the independent certifier in :mod:`repro.verify` (tree shape,
    coverage, recomputed weight, bound soundness); a violation raises
    :class:`~repro.errors.CertificationError` at the exact pop that
    produced the bad answer.
"""

from __future__ import annotations

from typing import Callable, Hashable, Iterable, Optional, Union

from ..errors import GraphError
from ..graph.graph import Graph
from .allpaths import RouteTables
from .bounds import LowerBounds
from .budget import Budget
from .context import QueryContext
from .engine import SearchEngine
from .query import GSTQuery
from .result import GSTResult, ProgressPoint

__all__ = [
    "BasicSolver",
    "PrunedDPSolver",
    "PrunedDPPlusSolver",
    "PrunedDPPlusPlusSolver",
]

QueryLike = Union[GSTQuery, Iterable[Hashable]]


def _coerce_query(query: QueryLike) -> GSTQuery:
    return query if isinstance(query, GSTQuery) else GSTQuery(query)


class _ProgressiveSolverBase:
    """Shared plumbing: context building, policy assembly, solve()."""

    algorithm_name = "?"
    prune_half = False
    merge_factor: Optional[float] = None
    complement_shortcut = False
    requires_positive_weights = False
    # Lower-bound selection (None → no A*).
    use_one_label = False
    use_tour1 = False
    use_tour2 = False

    def __init__(
        self,
        graph: Graph,
        query: QueryLike,
        *,
        budget: Optional[Budget] = None,
        time_limit: Optional[float] = None,
        epsilon: Optional[float] = None,
        max_states: Optional[int] = None,
        on_limit: Optional[str] = None,
        on_progress: Optional[Callable[[ProgressPoint], None]] = None,
        on_feasible=None,
        on_event: Optional[Callable[[str, dict], None]] = None,
        progressive: bool = True,
        distance_cache=None,
        bound_memo_limit: Optional[int] = None,
        debug_certify: bool = False,
        checkpointer=None,
        restore_state: Optional[dict] = None,
    ) -> None:
        self.graph = graph
        self.query = _coerce_query(query)
        self.budget = Budget.coalesce(
            budget,
            time_limit=time_limit,
            epsilon=epsilon,
            max_states=max_states,
            on_limit=on_limit,
        )
        # Legacy attribute names, kept so existing callers can keep
        # introspecting the configured limits.
        self.time_limit = self.budget.time_limit
        self.epsilon = self.budget.epsilon
        self.max_states = self.budget.max_states
        self.on_limit = self.budget.on_limit
        self.on_progress = on_progress
        self.on_feasible = on_feasible
        self.on_event = on_event
        self.progressive = progressive
        self.distance_cache = distance_cache
        # Optional bound on the LowerBounds (node, mask) memo so long
        # batches cannot grow it without limit (None = unbounded).
        self.bound_memo_limit = bound_memo_limit
        # Opt-in paranoia: the engine certifies every incumbent update
        # through repro.verify (see SearchEngine.debug_certify).
        self.debug_certify = debug_certify
        # Durability hooks (repro.service.durability): a cadence object
        # the engine calls every loop iteration, and an optional
        # SearchEngine.checkpoint() dict to resume from instead of
        # seeding a cold search.
        self.checkpointer = checkpointer
        self.restore_state = restore_state
        if self.requires_positive_weights and graph.num_edges > 0:
            if graph.min_edge_weight <= 0.0:
                raise GraphError(
                    f"{self.algorithm_name} requires strictly positive edge "
                    "weights (Theorem 1, optimal-tree decomposition); "
                    f"graph has min weight {graph.min_edge_weight}"
                )

    # Subclasses override to attach tables / bounds.
    def _prepare(self, context: QueryContext):
        """Return ``(bounds, extra_init_seconds, table_entries)``."""
        return None, 0.0, 0

    # ------------------------------------------------------------------
    # Staged execution — the service layer calls these separately so it
    # can time each stage; solve() chains them for everyone else.
    # ------------------------------------------------------------------
    def build_context(self) -> QueryContext:
        """Stage 1: per-query preprocessing (the k label Dijkstras)."""
        context = QueryContext.build(
            self.graph, self.query, cache=self.distance_cache
        )
        context.require_feasible()
        return context

    def prepare(self, context: QueryContext):
        """Stage 2: algorithm-specific tables and lower bounds."""
        return self._prepare(context)

    def run_search(self, context: QueryContext, prepared=None) -> GSTResult:
        """Stage 3: the progressive best-first search itself."""
        if prepared is None:
            prepared = self._prepare(context)
        bounds, extra_init, table_entries = prepared
        engine = SearchEngine(
            context,
            algorithm_name=self.algorithm_name,
            bounds=bounds,
            prune_half=self.prune_half,
            merge_factor=self.merge_factor,
            complement_shortcut=self.complement_shortcut,
            progressive=self.progressive,
            debug_certify=self.debug_certify,
            on_progress=self.on_progress,
            on_feasible=self.on_feasible,
            on_event=self.on_event,
            init_seconds=context.build_seconds + extra_init,
            table_entries=table_entries,
            checkpointer=self.checkpointer,
            **self.budget.engine_kwargs(),
        )
        if self.restore_state is not None:
            engine.restore(self.restore_state)
        return engine.run()

    def solve(self) -> GSTResult:
        """Run the algorithm; always returns, never raises for timeouts."""
        context = self.build_context()
        return self.run_search(context, self.prepare(context))


class BasicSolver(_ProgressiveSolverBase):
    """Algorithm 1 — progressive best-first DP with best-solution pruning.

    The baseline of the paper's experiments: already progressive and
    faster than plain DPBF thanks to the ``cost >= best`` pruning, but
    without the decomposition/merging theorems or A* bounds.
    """

    algorithm_name = "Basic"


class PrunedDPSolver(_ProgressiveSolverBase):
    """Algorithm 2 — optimal-tree decomposition + conditional merging.

    Expands only states lighter than ``best/2`` (Theorem 1), merges two
    subtrees only when their total is at most ``2/3·best`` (Theorem 2,
    whose factor the paper proves optimal), and immediately forms the
    feasible state from complementary settled pairs.
    """

    algorithm_name = "PrunedDP"
    prune_half = True
    merge_factor = 2.0 / 3.0
    complement_shortcut = True
    requires_positive_weights = True


class PrunedDPPlusSolver(PrunedDPSolver):
    """PrunedDP + A*-search with the one-label lower bound ``π₁``."""

    algorithm_name = "PrunedDP+"
    use_one_label = True

    def _prepare(self, context: QueryContext):
        bounds = LowerBounds(
            context,
            routes=None,
            use_one_label=True,
            use_tour1=False,
            use_tour2=False,
            max_entries=self.bound_memo_limit,
        )
        return bounds, 0.0, 0


class PrunedDPPlusPlusSolver(PrunedDPSolver):
    """Algorithm 4 — A*-search with the combined tour-based bounds.

    Builds the AllPaths route tables (Algorithm 3) once per query and
    uses ``π = max(π₁, π_t1, π_t2)`` with the path-max consistency fix.
    Individual bounds can be disabled for the ablation experiments.
    """

    algorithm_name = "PrunedDP++"
    use_one_label = True
    use_tour1 = True
    use_tour2 = True

    def __init__(
        self,
        graph: Graph,
        query: QueryLike,
        *,
        use_one_label: bool = True,
        use_tour1: bool = True,
        use_tour2: bool = True,
        **kwargs,
    ) -> None:
        super().__init__(graph, query, **kwargs)
        self.use_one_label = use_one_label
        self.use_tour1 = use_tour1
        self.use_tour2 = use_tour2

    def _prepare(self, context: QueryContext):
        needs_tables = self.use_tour1 or self.use_tour2
        routes = (
            RouteTables.build(self.graph, context.groups) if needs_tables else None
        )
        bounds = LowerBounds(
            context,
            routes=routes,
            use_one_label=self.use_one_label,
            use_tour1=self.use_tour1,
            use_tour2=self.use_tour2,
            max_entries=self.bound_memo_limit,
        )
        extra = routes.build_seconds if routes is not None else 0.0
        entries = routes.num_entries if routes is not None else 0
        return bounds, extra, entries
