"""Algorithm 3 — ``AllPaths``: route DP over the virtual label nodes.

For the tour-based lower bounds of Section 4.1, PrunedDP++ needs, for
every pair of query labels ``(i, j)`` and every label subset ``X̄``, the
weight ``W(ṽ_i, ṽ_j, X̄)`` of the minimum-weight route that starts at
virtual node ``ṽ_i``, ends at ``ṽ_j`` and passes through every virtual
node of ``X̄`` — where movement happens in the *label-enhanced graph*
(all virtual nodes attached simultaneously, so consecutive legs are
virtual-to-virtual shortest paths).

The paper drives the recurrence

    W(ṽ_i, ṽ_j, X̄) = min_{p ∈ X̄ \\ {j}} W(ṽ_i, ṽ_p, X̄ \\ {j}) + dist(ṽ_p, ṽ_j)

with best-first search; we evaluate the identical recurrence by subset
size (Held-Karp order), which computes exactly the same closed table in
``O(2^k k^3)`` after the ``O(k(m + n log n))`` virtual-node Dijkstras —
the complexity Theorem 3 states.  A property test checks the table
against brute-force route enumeration.

The derived open-tour table ``W(ṽ_i, X̄) = min_j W(ṽ_i, ṽ_j, X̄)`` is
precomputed too (used by the second tour bound π_t2).
"""

from __future__ import annotations

import time
from typing import Dict, List, Sequence

from ..errors import QueryError
from ..graph.graph import Graph
from ..graph.shortest_paths import label_enhanced_distances
from .state import iter_bits, popcount

__all__ = ["RouteTables", "MAX_ALLPATHS_LABELS"]

INF = float("inf")

# 2^k * k^2 floats; k=14 is ~3.2M entries (~tens of MB as Python lists),
# the practical ceiling for the pure-Python table.
MAX_ALLPATHS_LABELS = 14


class RouteTables:
    """Closed route tables ``W(ṽ_i, ṽ_j, X̄)`` and tours ``W(ṽ_i, X̄)``.

    ``route(i, j, mask)`` and ``tour(i, mask)`` expect ``mask`` to
    contain bit ``i`` (and ``j``); ``inf`` is returned for unreachable
    configurations (disconnected graphs).
    """

    __slots__ = ("k", "virtual_distance", "_routes", "_tours", "build_seconds")

    def __init__(
        self,
        k: int,
        virtual_distance: List[List[float]],
        routes: List[Dict[int, List[float]]],
        tours: List[Dict[int, float]],
        build_seconds: float,
    ) -> None:
        self.k = k
        self.virtual_distance = virtual_distance
        self._routes = routes
        self._tours = tours
        self.build_seconds = build_seconds

    # ------------------------------------------------------------------
    @classmethod
    def build(cls, graph: Graph, groups: Sequence[Sequence[int]]) -> "RouteTables":
        """Compute the full table set for the query's label groups."""
        k = len(groups)
        if k > MAX_ALLPATHS_LABELS:
            raise QueryError(
                f"AllPaths route tables support at most {MAX_ALLPATHS_LABELS} "
                f"labels, got {k}"
            )
        started = time.perf_counter()
        virtual_distance = label_enhanced_distances(graph, groups)

        # Masks grouped by popcount, ascending, so every sub-state of the
        # recurrence is already final when read (Held-Karp order).
        full = (1 << k) - 1
        by_size: List[List[int]] = [[] for _ in range(k + 1)]
        for mask in range(1, full + 1):
            by_size[popcount(mask)].append(mask)

        routes: List[Dict[int, List[float]]] = []
        for i in range(k):
            bit_i = 1 << i
            table: Dict[int, List[float]] = {}
            base = [INF] * k
            base[i] = 0.0
            table[bit_i] = base
            for size in range(2, k + 1):
                for mask in by_size[size]:
                    if not mask & bit_i:
                        continue
                    row = [INF] * k
                    for j in iter_bits(mask):
                        if j == i:
                            continue  # routes return to i only at size 1
                        prev_mask = mask ^ (1 << j)
                        prev_row = table[prev_mask]
                        dist_to_j = virtual_distance[j]
                        best = INF
                        for p in iter_bits(prev_mask):
                            candidate = prev_row[p] + dist_to_j[p]
                            if candidate < best:
                                best = candidate
                        row[j] = best
                    table[mask] = row
            routes.append(table)

        tours: List[Dict[int, float]] = []
        for i in range(k):
            table = routes[i]
            tours.append({mask: min(row) for mask, row in table.items()})

        return cls(
            k,
            virtual_distance,
            routes,
            tours,
            time.perf_counter() - started,
        )

    # ------------------------------------------------------------------
    def route(self, i: int, j: int, mask: int) -> float:
        """``W(ṽ_i, ṽ_j, mask)``; requires ``i, j ∈ mask``."""
        row = self._routes[i].get(mask)
        if row is None:
            raise KeyError(f"mask {mask:#b} does not contain start label {i}")
        return row[j]

    def route_row(self, i: int, mask: int) -> List[float]:
        """All endpoints at once: ``[W(ṽ_i, ṽ_j, mask) for j in 0..k-1]``."""
        row = self._routes[i].get(mask)
        if row is None:
            raise KeyError(f"mask {mask:#b} does not contain start label {i}")
        return row

    def tour(self, i: int, mask: int) -> float:
        """Open tour ``W(ṽ_i, mask) = min_j W(ṽ_i, ṽ_j, mask)``."""
        value = self._tours[i].get(mask)
        if value is None:
            raise KeyError(f"mask {mask:#b} does not contain start label {i}")
        return value

    @property
    def num_entries(self) -> int:
        """Total stored floats (feeds the memory accounting)."""
        return sum(len(table) * self.k for table in self._routes) + sum(
            len(table) for table in self._tours
        )
