"""Lower bounds for A*-search (Section 4.1).

For a state ``(v, X)`` the A* solvers need a lower bound on
``f*_T(v, X̄)`` — the weight of the cheapest tree rooted at ``v``
covering the *missing* labels ``X̄ = P \\ X``.  Three bounds are
implemented, each obtained by relaxing a constraint of that tree:

* **one-label** (``π₁``): drop all but one missing label —
  ``max_{x∈X̄} dist(v, ṽ_x)``.  This alone gives PrunedDP+.
* **tour bound 1** (``π_t1``): relax "tree" to "closed tour": half the
  cheapest tour ``v → ṽ_i → … → ṽ_j → v`` through all missing virtual
  nodes (Eq. 3-4), read off the AllPaths tables.
* **tour bound 2** (``π_t2``): half of
  ``max_i ( dist(v, ṽ_i) + W(ṽ_i, X̄) + min_j dist(ṽ_j, v) )`` (Eq. 6) —
  a max over entry points instead of a min over endpoints.

``π₁`` and ``π_t1`` are consistent (Lemmas 5-6); raw ``π_t2`` is not,
which the engines repair with the paper's path-max propagation (the
bound cache below is monotonically *raised* as propagated values
arrive, which keeps every cached value admissible — Section 4.2).
"""

from __future__ import annotations

from typing import Dict, Optional

from .allpaths import RouteTables
from .context import QueryContext
from .state import iter_bits

__all__ = ["LowerBounds"]

INF = float("inf")


class LowerBounds:
    """Admissible lower-bound oracle ``π(v, X)`` with a raisable cache.

    ``use_one_label`` / ``use_tour1`` / ``use_tour2`` select which
    bounds participate (the paper's PrunedDP+ is one-label only;
    PrunedDP++ is all three).  The ablation benchmarks toggle them
    individually.
    """

    __slots__ = (
        "context",
        "routes",
        "use_one_label",
        "use_tour1",
        "use_tour2",
        "_cache",
        "_bits",
        "full_mask",
        "key_bits",
        "evaluations",
        "max_entries",
        "hits",
        "misses",
        "evictions",
    )

    def __init__(
        self,
        context: QueryContext,
        routes: Optional[RouteTables] = None,
        *,
        use_one_label: bool = True,
        use_tour1: bool = True,
        use_tour2: bool = True,
        max_entries: Optional[int] = None,
    ) -> None:
        if (use_tour1 or use_tour2) and routes is None:
            raise ValueError("tour-based bounds require RouteTables")
        if max_entries is not None and max_entries <= 0:
            raise ValueError("max_entries must be positive (or None)")
        self.context = context
        self.routes = routes
        self.use_one_label = use_one_label
        self.use_tour1 = use_tour1
        self.use_tour2 = use_tour2
        # Memo keyed by packed ``node << key_bits | covered_mask`` ints —
        # the same packing the engine uses for queue/store keys, so the
        # fast loop shares one key value across all three structures.
        self._cache: Dict[int, float] = {}
        # mask -> tuple of set bit positions; at most 2^k entries, each
        # tiny, and it removes a generator per cache miss.
        self._bits: Dict[int, tuple] = {}
        self.full_mask = context.full_mask
        self.key_bits = context.k
        self.evaluations = 0
        # ``max_entries`` bounds the (node, mask) memo so a long search
        # cannot grow it without limit; evicting is always *safe* —
        # dropped states just re-derive an admissible (possibly less
        # path-max-raised) bound on their next visit.
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # ------------------------------------------------------------------
    def pi(self, node: int, covered_mask: int) -> float:
        """Current lower bound on completing state ``(node, covered_mask)``."""
        missing = self.full_mask & ~covered_mask
        if missing == 0:
            return 0.0
        key = (node << self.key_bits) | covered_mask
        cached = self._cache.get(key)
        if cached is not None:
            self.hits += 1
            return cached
        self.misses += 1
        value = self._evaluate(node, missing)
        self._insert(key, value)
        return value

    def _insert(self, key: int, value: float) -> None:
        cache = self._cache
        if self.max_entries is not None and len(cache) >= self.max_entries:
            # Drop the oldest-inserted entry (O(1) via dict ordering):
            # cheap, and old states are the least likely to be re-popped
            # by a best-first search that has moved past them.
            cache.pop(next(iter(cache)))
            self.evictions += 1
        cache[key] = value

    def raise_to(self, node: int, covered_mask: int, value: float) -> float:
        """Path-max: raise the cached bound for a state, return the max.

        The engines call this when expanding ``(v, X) → (u, X)`` with
        ``π(v,X) - w(v,u)`` and when merging with ``π(v,X) - f*(v,X')``
        — both are valid lower bounds for the successor state (proof of
        Lemmas 5-7), so the cache only ever moves toward the truth.
        """
        if (self.full_mask & ~covered_mask) == 0:
            return 0.0
        current = self.pi(node, covered_mask)
        if value > current:
            self._cache[(node << self.key_bits) | covered_mask] = value
            return value
        return current

    # ------------------------------------------------------------------
    def _evaluate(self, node: int, missing: int) -> float:
        self.evaluations += 1
        dist = self.context.dist
        bits = self._bits.get(missing)
        if bits is None:
            bits = tuple(iter_bits(missing))
            self._bits[missing] = bits

        best = 0.0
        if self.use_one_label:
            for i in bits:
                d = dist[i][node]
                if d > best:
                    best = d

        if self.use_tour1 and self.routes is not None:
            # Eq. 3-4: half the cheapest closed tour v → ṽ_i … ṽ_j → v.
            tour = INF
            routes = self.routes
            for i in bits:
                entry = dist[i][node]
                if entry >= tour:  # route weights are >= 0
                    continue
                row = routes.route_row(i, missing)
                for j in bits:
                    candidate = entry + row[j] + dist[j][node]
                    if candidate < tour:
                        tour = candidate
            half = tour / 2.0
            if half > best:
                best = half

        if self.use_tour2 and self.routes is not None:
            # Eq. 6: max over entry virtual nodes of entry + open tour +
            # cheapest exit, halved.
            exit_leg = min(dist[j][node] for j in bits)
            routes = self.routes
            worst = 0.0
            for i in bits:
                candidate = dist[i][node] + routes.tour(i, missing) + exit_leg
                if candidate > worst:
                    worst = candidate
            half = worst / 2.0
            if half > best:
                best = half

        return best

    # ------------------------------------------------------------------
    @property
    def cache_size(self) -> int:
        return len(self._cache)

    def cache_info(self) -> dict:
        """Memo size/hit/miss/eviction counters (surfaced in traces)."""
        return {
            "size": len(self._cache),
            "max_entries": self.max_entries,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "evaluations": self.evaluations,
        }
