"""Brute-force GST oracle for tiny graphs (test reference).

Fact: the optimal Group Steiner Tree weight equals

    min over node subsets S that (a) induce a connected subgraph and
    (b) cover every query label, of  MST(G[S]).

Proof sketch: for the optimal tree ``T*`` with node set ``S*``,
``MST(G[S*]) <= w(T*)`` (``T*`` is a spanning tree of ``G[S*]``), and
every such MST is itself a feasible covering tree, so equality holds at
the optimum.

Enumerating all ``2^n`` subsets is hopeless beyond ~16 nodes — which is
exactly the regime the hypothesis-based cross-checks run in.
"""

from __future__ import annotations

from typing import Hashable, Iterable, List, Optional, Tuple

from ..errors import InfeasibleQueryError
from ..graph.graph import Graph
from ..graph.mst import minimum_spanning_forest
from .query import GSTQuery
from .tree import SteinerTree

__all__ = ["brute_force_gst", "brute_force_route"]

INF = float("inf")
MAX_BRUTE_FORCE_NODES = 18


def brute_force_gst(
    graph: Graph, labels: Iterable[Hashable]
) -> Tuple[float, Optional[SteinerTree]]:
    """Exact optimum by subset enumeration.

    Returns ``(inf, None)`` when every label occurs somewhere but no
    connected subgraph covers them all.  A label carried by *no* node
    raises :class:`~repro.errors.InfeasibleQueryError` instead — the
    same typed error every solver tier raises for an empty group, so
    differential harnesses see one uniform failure mode.
    """
    query = labels if isinstance(labels, GSTQuery) else GSTQuery(labels)
    n = graph.num_nodes
    if n > MAX_BRUTE_FORCE_NODES:
        raise ValueError(
            f"brute force supports at most {MAX_BRUTE_FORCE_NODES} nodes, got {n}"
        )
    label_masks = [0] * n
    for i, label in enumerate(query.labels):
        members = graph.nodes_with_label(label)
        if not members:
            raise InfeasibleQueryError(
                f"label {label!r} occurs on no node of the graph"
            )
        for node in members:
            label_masks[node] |= 1 << i
    full = query.full_mask

    all_edges = list(graph.edges())
    best_weight = INF
    best_tree: Optional[SteinerTree] = None

    for subset in range(1, 1 << n):
        covered = 0
        node = subset
        while node:
            low = node & -node
            covered |= label_masks[low.bit_length() - 1]
            node ^= low
        if covered != full:
            continue
        members = [i for i in range(n) if subset >> i & 1]
        sub_edges = [
            (u, v, w)
            for u, v, w in all_edges
            if subset >> u & 1 and subset >> v & 1
        ]
        tree_edges = minimum_spanning_forest(sub_edges)
        if len(tree_edges) != len(members) - 1:
            continue  # induced subgraph disconnected
        weight = sum(w for _, _, w in tree_edges)
        if weight < best_weight:
            best_weight = weight
            if tree_edges:
                best_tree = SteinerTree(tree_edges)
            else:
                best_tree = SteinerTree.single_node(members[0])
    return best_weight, best_tree


def brute_force_route(
    distance: List[List[float]], start: int, end: int, through: Iterable[int]
) -> float:
    """Cheapest route start→…→end visiting ``through`` (oracle for AllPaths).

    ``distance`` is the pairwise virtual-node matrix; the route visits
    every index of ``through`` (which must include ``start`` and ``end``)
    exactly once in some order.  Exponential — test sizes only.
    """
    middle = [i for i in through if i != start and i != end]
    if start == end:
        if middle or start not in set(through):
            # A closed non-trivial route is not expressible in this DP's
            # state space (see RouteTables docstring); only the singleton
            # route has weight 0.
            return 0.0 if not middle else INF
        return 0.0
    best = INF
    from itertools import permutations

    for order in permutations(middle):
        weight = 0.0
        current = start
        for nxt in order:
            weight += distance[current][nxt]
            current = nxt
        weight += distance[current][end]
        if weight < best:
            best = weight
    return best
