"""The per-query resource budget shared by every entry point.

Historically each layer (``solve_gst``, ``PreparedGraph.solve``, the
solver classes, the benchmark runner) threaded ``time_limit`` /
``epsilon`` / ``max_states`` / ``on_limit`` through as loose keyword
arguments, and each accepted a slightly different subset.  A
:class:`Budget` is the single value object all of them now share: build
one, pass it anywhere, and the same limits reach the search engine.

Budgets are immutable; ``replace`` derives variants.  A budget may also
carry an absolute *deadline* (a ``time.perf_counter`` timestamp), which
the batch executor uses to make a whole batch share one wall-clock
allowance: each query's effective time limit is the smaller of its own
``time_limit`` and whatever remains until the deadline.

A budget may finally carry a :class:`CancellationToken` — a shared,
thread-safe flag the search engine polls inside its pop loop.  Cancel
the token and every query holding it stops within a bounded number of
state pops, returning its best feasible answer so far (the progressive
contract makes that answer valid, with a sound recorded gap).
"""

from __future__ import annotations

import dataclasses
import threading
import time
from dataclasses import dataclass
from typing import Optional

__all__ = ["Budget", "CancellationToken"]

_UNSET = object()


class CancellationToken:
    """A shared cooperative-cancellation flag.

    One token can be attached to many budgets (typically one per batch);
    :meth:`cancel` is thread-safe, idempotent, and observed by the search
    engine at its periodic limit check — queries stop within a bounded
    number of state pops, they are never killed mid-state.
    """

    __slots__ = ("_event", "_reason")

    def __init__(self) -> None:
        self._event = threading.Event()
        self._reason: Optional[str] = None

    def cancel(self, reason: Optional[str] = None) -> None:
        """Fire the token.  The first recorded reason wins."""
        if not self._event.is_set():
            self._reason = reason
        self._event.set()

    @property
    def cancelled(self) -> bool:
        return self._event.is_set()

    @property
    def reason(self) -> Optional[str]:
        """Why the token fired (``None`` while live or when unstated)."""
        return self._reason

    def __repr__(self) -> str:
        state = f"cancelled, reason={self._reason!r}" if self.cancelled else "live"
        return f"CancellationToken({state})"


@dataclass(frozen=True)
class Budget:
    """Resource limits for one GST solve.

    ``time_limit``
        Wall-clock seconds for the search (best answer so far is
        returned when it expires).
    ``epsilon``
        Stop once a ``(1 + epsilon)``-approximation is proven.
    ``max_states``
        Cap on popped DP states; ``on_limit`` chooses whether hitting
        it returns the incumbent (``"return"``) or raises
        (``"raise"``).
    ``deadline``
        Absolute ``time.perf_counter()`` timestamp after which no more
        work should start.  Usually set via :meth:`with_deadline` by
        the batch executor, not by hand.
    ``cancel_token``
        Optional shared :class:`CancellationToken` polled by the search
        engine's pop loop; usually attached via :meth:`with_cancellation`.
    """

    time_limit: Optional[float] = None
    epsilon: float = 0.0
    max_states: Optional[int] = None
    on_limit: str = "return"
    deadline: Optional[float] = None
    cancel_token: Optional[CancellationToken] = None

    def __post_init__(self) -> None:
        if self.time_limit is not None and self.time_limit < 0.0:
            raise ValueError("time_limit must be >= 0")
        if self.epsilon < 0.0:
            raise ValueError("epsilon must be >= 0")
        if self.max_states is not None and self.max_states <= 0:
            raise ValueError("max_states must be positive")
        if self.on_limit not in ("return", "raise"):
            raise ValueError("on_limit must be 'return' or 'raise'")

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def coalesce(
        cls,
        budget: Optional["Budget"] = None,
        *,
        time_limit: Optional[float] = None,
        epsilon: Optional[float] = None,
        max_states: Optional[int] = None,
        on_limit: Optional[str] = None,
    ) -> "Budget":
        """Merge a base budget with legacy loose keyword arguments.

        Explicitly-passed loose kwargs win over the base budget's
        fields, so both calling styles keep working during migration.
        """
        base = budget if budget is not None else cls()
        return cls(
            time_limit=time_limit if time_limit is not None else base.time_limit,
            epsilon=epsilon if epsilon is not None else base.epsilon,
            max_states=max_states if max_states is not None else base.max_states,
            on_limit=on_limit if on_limit is not None else base.on_limit,
            deadline=base.deadline,
            cancel_token=base.cancel_token,
        )

    def replace(self, **changes) -> "Budget":
        """A copy with the given fields changed (budgets are frozen)."""
        return dataclasses.replace(self, **changes)

    def with_deadline(self, seconds_from_now: float) -> "Budget":
        """A copy whose deadline is ``seconds_from_now`` from now.

        A budget that already carries a deadline keeps the *earlier* of
        the two — a batch nested inside an outer deadline can only
        tighten the allowance, never extend it.
        """
        if seconds_from_now < 0.0:
            raise ValueError("deadline must be >= 0 seconds from now")
        new_deadline = time.perf_counter() + seconds_from_now
        if self.deadline is not None:
            new_deadline = min(new_deadline, self.deadline)
        return self.replace(deadline=new_deadline)

    def with_cancellation(self, token: CancellationToken) -> "Budget":
        """A copy carrying the given cooperative-cancellation token."""
        return self.replace(cancel_token=token)

    # ------------------------------------------------------------------
    # Deadline arithmetic
    # ------------------------------------------------------------------
    def remaining(self) -> Optional[float]:
        """Seconds until the deadline (``None`` when no deadline set).

        Clamped at 0.0: an already-passed deadline reports *zero*
        seconds left, never a negative number — callers multiply this
        into time allowances (admission headroom, effective time
        limits) where a negative value would silently corrupt the
        arithmetic instead of meaning "no time left".
        """
        if self.deadline is None:
            return None
        return max(0.0, self.deadline - time.perf_counter())

    def expired(self) -> bool:
        """Whether the deadline has passed (never true without one)."""
        if self.deadline is None:
            return False
        return time.perf_counter() >= self.deadline

    def cancelled(self) -> bool:
        """Whether the attached cancellation token (if any) has fired."""
        return self.cancel_token is not None and self.cancel_token.cancelled

    def effective_time_limit(self) -> Optional[float]:
        """``time_limit`` clamped by whatever remains until the deadline."""
        remaining = self.remaining()
        if remaining is None:
            return self.time_limit
        remaining = max(0.0, remaining)
        if self.time_limit is None:
            return remaining
        return min(self.time_limit, remaining)

    # ------------------------------------------------------------------
    def engine_kwargs(self) -> dict:
        """The keyword arguments the search engine understands."""
        return {
            "time_limit": self.effective_time_limit(),
            "epsilon": self.epsilon,
            "max_states": self.max_states,
            "on_limit": self.on_limit,
            "cancel_token": self.cancel_token,
        }

    def to_dict(self) -> dict:
        """JSON-friendly record (deadlines reported as remaining secs)."""
        return {
            "time_limit": self.time_limit,
            "epsilon": self.epsilon,
            "max_states": self.max_states,
            "on_limit": self.on_limit,
            "deadline_remaining": self.remaining(),
            "cancelled": self.cancelled(),
        }
