"""Cross-query preprocessing cache.

Query preprocessing (Section 3.1) runs one multi-source Dijkstra per
query label — ``O(k(m + n log n))``, the dominant fixed cost of every
solve on large graphs.  Real keyword-search deployments answer many
queries over one graph, and popular labels recur, so a per-label cache
amortizes that cost exactly as a production system would.

Usage::

    cache = LabelDistanceCache(graph, max_labels=1024)
    ctx1 = QueryContext.build(graph, query1, cache=cache)
    ctx2 = QueryContext.build(graph, query2, cache=cache)  # shared labels free

or one level up (see :class:`repro.service.GraphIndex`, which owns a
bounded cache, shares it across a worker pool, and adds telemetry)::

    prepared = PreparedGraph(graph)
    result = prepared.solve(["db", "ml"])        # caches as it goes
    result = prepared.solve(["db", "graphs"])    # 'db' Dijkstra reused

The cache is LRU-bounded (``max_labels``; ``None`` = unbounded for
backwards compatibility) and thread-safe: lookups/insertions take an
internal lock, while the Dijkstra itself runs outside it so concurrent
misses on *different* labels don't serialize.  It is invalidated
manually (``clear``) — the graph is assumed immutable while cached,
which :class:`PreparedGraph` documents as its contract (matching every
index structure in the literature).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Hashable, Iterable, List, Optional, Tuple

from ..graph.graph import Graph
from ..graph.shortest_paths import multi_source_dijkstra
from .result import GSTResult

__all__ = ["LabelDistanceCache", "PreparedGraph"]


class LabelDistanceCache:
    """Memoizes per-label multi-source Dijkstra results (LRU-bounded)."""

    __slots__ = (
        "graph",
        "max_labels",
        "_entries",
        "_warm",
        "_lock",
        "hits",
        "misses",
        "evictions",
        "warm_loads",
    )

    def __init__(self, graph: Graph, *, max_labels: Optional[int] = None) -> None:
        if max_labels is not None and max_labels <= 0:
            raise ValueError("max_labels must be positive (or None)")
        self.graph = graph
        self.max_labels = max_labels
        self._entries: "OrderedDict[Hashable, Tuple[List[float], List[int]]]" = (
            OrderedDict()
        )
        # Labels whose arrays came from a persistent store (preload)
        # rather than a live Dijkstra — telemetry distinguishes them.
        self._warm: set = set()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.warm_loads = 0

    def distances(self, label: Hashable) -> Tuple[List[float], List[int]]:
        """``(dist, parent)`` arrays for the label's virtual node."""
        with self._lock:
            entry = self._entries.get(label)
            if entry is not None:
                self._entries.move_to_end(label)
                self.hits += 1
                return entry
            self.misses += 1
        # Compute outside the lock: a popular-label miss must not block
        # concurrent misses on other labels (pure-Python Dijkstras still
        # share the GIL, but they interleave instead of queueing).
        members = list(self.graph.nodes_with_label(label))
        if not members:
            raise KeyError(f"label {label!r} occurs on no node")
        entry = multi_source_dijkstra(self.graph, members)
        with self._lock:
            winner = self._entries.get(label)
            if winner is not None:
                # Another thread computed it meanwhile; keep theirs.
                self._entries.move_to_end(label)
                return winner
            self._entries[label] = entry
            self._evict_over_bound()
        return entry

    def preload(self, label: Hashable, entry: Tuple[List[float], List[int]]) -> None:
        """Insert precomputed ``(dist, parent)`` arrays (store warm-load).

        Unlike a miss-driven insert this counts as a ``warm_load``, not
        a miss, and marks the label *warm* so telemetry can attribute
        later hits to the store.  The arrays must be sized for this
        cache's graph; a live entry for the label is kept (it is
        identical by the immutable-graph contract).
        """
        dist, parent = entry
        if len(dist) != self.graph.num_nodes or len(parent) != self.graph.num_nodes:
            raise ValueError(
                f"preloaded arrays for label {label!r} have "
                f"{len(dist)} nodes; graph has {self.graph.num_nodes}"
            )
        with self._lock:
            if label not in self._entries:
                self._entries[label] = (dist, parent)
            self._warm.add(label)
            self.warm_loads += 1
            self._evict_over_bound()

    def _evict_over_bound(self) -> None:
        # Caller holds the lock.
        if self.max_labels is None:
            return
        while len(self._entries) > self.max_labels:
            evicted, _ = self._entries.popitem(last=False)
            self._warm.discard(evicted)
            self.evictions += 1

    def is_warm(self, label: Hashable) -> bool:
        """Whether the label's cached arrays came from a store."""
        with self._lock:
            return label in self._warm and label in self._entries

    def counters(self) -> dict:
        """Snapshot of the hit/miss/eviction counters (telemetry)."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "warm_loads": self.warm_loads,
                "warm_labels": len(self._warm & set(self._entries)),
                "cached_labels": len(self._entries),
                "max_labels": self.max_labels,
            }

    def __contains__(self, label: Hashable) -> bool:
        with self._lock:
            return label in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        """Drop all cached arrays (call after mutating the graph)."""
        with self._lock:
            self._entries.clear()
            self._warm.clear()


class PreparedGraph:
    """A graph plus its warm caches: the multi-query entry point.

    Contract: the underlying graph must not be mutated while prepared
    (like any index).  ``solve`` accepts the same keyword arguments as
    :func:`repro.core.solver.solve_gst` minus ``split_components``
    (the prepared path always works on the full graph — per-label
    Dijkstras already confine work to reachable regions).

    This predates :class:`repro.service.GraphIndex`, which subsumes it
    (bounded cache, component decomposition, batch execution,
    telemetry); ``PreparedGraph`` is kept as the stable minimal facade.
    """

    def __init__(self, graph: Graph, *, max_cached_labels: Optional[int] = None) -> None:
        self.graph = graph
        self.cache = LabelDistanceCache(graph, max_labels=max_cached_labels)

    def solve(
        self,
        labels: Iterable[Hashable],
        *,
        algorithm: str = "pruneddp++",
        **solver_kwargs,
    ) -> GSTResult:
        """Solve one query, reusing cached per-label distances."""
        from .solver import ALGORITHMS, solve_gst

        key = algorithm.lower()
        if key not in ALGORITHMS:
            raise ValueError(
                f"unknown algorithm {algorithm!r}; choose from {sorted(ALGORITHMS)}"
            )
        labels = tuple(labels)
        # Warm the cache (also validates label existence early).
        for label in labels:
            self.cache.distances(label)
        return solve_gst(
            self.graph,
            labels,
            algorithm=algorithm,
            split_components=False,
            distance_cache=self.cache,
            **solver_kwargs,
        )

    @property
    def cached_labels(self) -> int:
        return len(self.cache)
