"""Cross-query preprocessing cache.

Query preprocessing (Section 3.1) runs one multi-source Dijkstra per
query label — ``O(k(m + n log n))``, the dominant fixed cost of every
solve on large graphs.  Real keyword-search deployments answer many
queries over one graph, and popular labels recur, so a per-label cache
amortizes that cost exactly as a production system would.

Usage::

    cache = LabelDistanceCache(graph)
    ctx1 = QueryContext.build(graph, query1, cache=cache)
    ctx2 = QueryContext.build(graph, query2, cache=cache)  # shared labels free

or one level up::

    prepared = PreparedGraph(graph)
    result = prepared.solve(["db", "ml"])        # caches as it goes
    result = prepared.solve(["db", "graphs"])    # 'db' Dijkstra reused

The cache is invalidated manually (``clear``) — the graph is assumed
immutable while cached, which :class:`PreparedGraph` documents as its
contract (matching every index structure in the literature).
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Optional, Tuple

from ..graph.graph import Graph
from ..graph.shortest_paths import multi_source_dijkstra
from .result import GSTResult
from .solver import ALGORITHMS, solve_gst

__all__ = ["LabelDistanceCache", "PreparedGraph"]


class LabelDistanceCache:
    """Memoizes per-label multi-source Dijkstra results."""

    __slots__ = ("graph", "_entries", "hits", "misses")

    def __init__(self, graph: Graph) -> None:
        self.graph = graph
        self._entries: Dict[Hashable, Tuple[List[float], List[int]]] = {}
        self.hits = 0
        self.misses = 0

    def distances(self, label: Hashable) -> Tuple[List[float], List[int]]:
        """``(dist, parent)`` arrays for the label's virtual node."""
        entry = self._entries.get(label)
        if entry is not None:
            self.hits += 1
            return entry
        self.misses += 1
        members = list(self.graph.nodes_with_label(label))
        if not members:
            raise KeyError(f"label {label!r} occurs on no node")
        entry = multi_source_dijkstra(self.graph, members)
        self._entries[label] = entry
        return entry

    def __contains__(self, label: Hashable) -> bool:
        return label in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        """Drop all cached arrays (call after mutating the graph)."""
        self._entries.clear()


class PreparedGraph:
    """A graph plus its warm caches: the multi-query entry point.

    Contract: the underlying graph must not be mutated while prepared
    (like any index).  ``solve`` accepts the same keyword arguments as
    :func:`repro.core.solver.solve_gst` minus ``split_components``
    (the prepared path always works on the full graph — per-label
    Dijkstras already confine work to reachable regions).
    """

    def __init__(self, graph: Graph) -> None:
        self.graph = graph
        self.cache = LabelDistanceCache(graph)

    def solve(
        self,
        labels: Iterable[Hashable],
        *,
        algorithm: str = "pruneddp++",
        **solver_kwargs,
    ) -> GSTResult:
        """Solve one query, reusing cached per-label distances."""
        key = algorithm.lower()
        if key not in ALGORITHMS:
            raise ValueError(
                f"unknown algorithm {algorithm!r}; choose from {sorted(ALGORITHMS)}"
            )
        labels = tuple(labels)
        # Warm the cache (also validates label existence early).
        for label in labels:
            self.cache.distances(label)
        return solve_gst(
            self.graph,
            labels,
            algorithm=algorithm,
            split_components=False,
            distance_cache=self.cache,
            **solver_kwargs,
        )

    @property
    def cached_labels(self) -> int:
        return len(self.cache)
