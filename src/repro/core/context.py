"""Per-query preprocessing shared by every solver.

Section 3.1 of the paper: for each query label ``p`` create a virtual
node ``ṽ_p`` attached by zero-weight edges to the group ``V_p`` and run
single-source Dijkstra from it.  The resulting distance arrays
``dist(v, ṽ_p)`` power

* the feasible-solution construction (shortest path from ``v`` to each
  missing label, Algorithms 1/2/4 lines 10-13),
* the one-label lower bound ``π₁``, and
* the entry/exit legs of the tour-based bounds.

:class:`QueryContext` computes and owns those arrays (plus the shortest
path *trees* needed to materialize the actual paths), and records how
long preprocessing took — the paper includes this in every reported
query time.
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence, Tuple

from ..errors import InfeasibleQueryError
from ..graph.graph import Graph
from ..graph.shortest_paths import multi_source_dijkstra
from .query import GSTQuery

__all__ = ["QueryContext"]

INF = float("inf")


class QueryContext:
    """Distances from every node to each query label's virtual node."""

    __slots__ = (
        "graph",
        "query",
        "groups",
        "dist",
        "parent",
        "node_masks",
        "build_seconds",
        "snapshot",
        "kernel",
    )

    def __init__(
        self,
        graph: Graph,
        query: GSTQuery,
        groups: Sequence[Sequence[int]],
        dist: List[List[float]],
        parent: List[List[int]],
        node_masks: List[int],
        build_seconds: float,
        snapshot=None,
        kernel: str = "legacy",
    ) -> None:
        self.graph = graph
        self.query = query
        self.groups = groups
        self.dist = dist            # dist[i][v] = dist(v, ṽ_{p_i})
        self.parent = parent        # parent[i][v] = next hop toward V_{p_i}
        self.node_masks = node_masks  # query-label bitmask per node
        self.build_seconds = build_seconds
        # The frozen CSRGraph in effect when the context was built (None
        # for an unfrozen graph) and the kernel family it implies; the
        # engine dispatches its fast loop on these.
        self.snapshot = snapshot
        self.kernel = kernel

    @classmethod
    def build(
        cls, graph: Graph, query: GSTQuery, cache=None
    ) -> "QueryContext":
        """Run the ``k`` virtual-node Dijkstras (``O(k(m + n log n))``).

        ``cache`` is an optional
        :class:`~repro.core.cache.LabelDistanceCache` bound to the same
        graph; cached labels skip their Dijkstra entirely (the
        multi-query amortization of :class:`PreparedGraph`).  A cache
        built for a *different* graph object is rejected — its arrays
        would silently index the wrong nodes.
        """
        if cache is not None and cache.graph is not graph:
            raise ValueError(
                "distance cache was built for a different graph; "
                "caches cannot be shared across graphs (or components)"
            )
        started = time.perf_counter()
        snapshot = graph.snapshot()
        groups = query.groups(graph)
        dist: List[List[float]] = []
        parent: List[List[int]] = []
        for label, members in zip(query.labels, groups):
            if cache is not None:
                d, p = cache.distances(label)
            else:
                d, p = multi_source_dijkstra(graph, members)
            dist.append(d)
            parent.append(p)
        node_masks = [0] * graph.num_nodes
        for i, members in enumerate(groups):
            bit = 1 << i
            for node in members:
                node_masks[node] |= bit
        return cls(
            graph,
            query,
            groups,
            dist,
            parent,
            node_masks,
            time.perf_counter() - started,
            snapshot,
            "csr" if snapshot is not None else "legacy",
        )

    # ------------------------------------------------------------------
    @property
    def k(self) -> int:
        return self.query.k

    @property
    def full_mask(self) -> int:
        return self.query.full_mask

    def check_feasible_from(self, node: int) -> bool:
        """Whether every query label is reachable from ``node``."""
        return all(d[node] < INF for d in self.dist)

    def any_feasible_root(self) -> Optional[int]:
        """Some node from which all labels are reachable, else ``None``.

        Every node of a group of the first label is a candidate; since
        reachability is symmetric in an undirected graph, checking those
        suffices (a covering component contains a node of every group).
        """
        for node in self.groups[0]:
            if self.check_feasible_from(node):
                return node
        return None

    def require_feasible(self) -> None:
        """Raise :class:`InfeasibleQueryError` if no component covers P."""
        if self.any_feasible_root() is None:
            raise InfeasibleQueryError(
                "no connected component covers every query label "
                f"{list(self.query.labels)!r}"
            )

    def shortest_path_edges(
        self, label_index: int, node: int
    ) -> List[Tuple[int, int, float]]:
        """Edges of the shortest path from ``node`` to group ``label_index``.

        Walks the multi-source Dijkstra parent pointers; the path ends at
        a node carrying the label (distance 0 from the virtual node).
        Returns ``[]`` when ``node`` itself carries the label.  Raises
        ``ValueError`` if the label is unreachable from ``node``.
        """
        if self.dist[label_index][node] == INF:
            raise ValueError(
                f"label index {label_index} unreachable from node {node}"
            )
        parents = self.parent[label_index]
        edges: List[Tuple[int, int, float]] = []
        current = node
        while parents[current] != -1:
            nxt = parents[current]
            edges.append((current, nxt, self.graph.edge_weight(current, nxt)))
            current = nxt
        return edges

    def nearest_label_distance(self, node: int) -> float:
        """``min_i dist(v, ṽ_i)`` — the exit leg of the π_t2 bound."""
        return min(d[node] for d in self.dist)
