"""Directed Group Steiner Trees (the DPBF / keyword-search setting).

The paper's GST is undirected, but the algorithm it parameterizes —
DPBF (Ding et al., ICDE'07) — was formulated on *directed* graphs:
an answer is an **out-arborescence** rooted at ``r`` with a directed
path from ``r`` to at least one node of every keyword group, minimizing
total edge weight.  This module carries the package's progressive
machinery over to that setting:

* :class:`DirectedSteinerTree` — the arborescence answer type;
* :class:`DirectedGSTSolver` — progressive best-first DP with the
  directed state transition

      f(v, X) = min( min_{(v→u)∈E} w(v,u) + f(u, X),
                     min_{X=X1⊎X2} f(v, X1) + f(v, X2) )

  best-solution pruning (the directed analogue of Algorithm 1).  There
  is deliberately **no directed A\\* bound and no directed PrunedDP**:
  the paper's techniques all assume rootedness is free.  A bound built
  from ``dist(v → V_i)`` is *inadmissible* here — a state ``(v, X)``
  can complete by re-rooting, so a node unable to reach a group itself
  may still sit inside an optimal answer (see
  ``DirectedGSTSolver``'s docstring and the regression test
  ``test_rerooting_makes_distance_bounds_inadmissible``) — and
  Theorems 1-2 re-root the tree in their proofs, which edge directions
  forbid.
* :func:`brute_force_directed_gst` — an exhaustive fixpoint evaluation
  of the same recurrence (Bellman-Ford style), used as the independent
  test oracle.

Feasible solutions: the union of directed shortest paths from the root
to every missing group, reduced to an arborescence by keeping one
in-edge per node (reachability from the root survives dropping extra
in-edges) and pruning label-free leaves.
"""

from __future__ import annotations

import time
from heapq import heappop, heappush
from typing import Dict, FrozenSet, Hashable, Iterable, List, Optional, Set, Tuple, Union

from ..errors import InfeasibleQueryError
from ..graph.digraph import DiGraph
from ..graph.heap import IndexedHeap
from .query import GSTQuery
from .result import GSTResult, ProgressPoint, SearchStats
from .state import StateStore, iter_bits

__all__ = [
    "DirectedSteinerTree",
    "DirectedGSTSolver",
    "brute_force_directed_gst",
]

INF = float("inf")
_COST_EPS = 1e-12


class DirectedSteinerTree:
    """An out-arborescence: edges ``(parent, child, weight)``, one root."""

    __slots__ = ("root", "edges", "nodes", "weight")

    def __init__(
        self, root: int, edges: Iterable[Tuple[int, int, float]]
    ) -> None:
        self.root = root
        self.edges: Tuple[Tuple[int, int, float], ...] = tuple(sorted(edges))
        nodes: Set[int] = {root}
        for parent, child, _ in self.edges:
            nodes.add(parent)
            nodes.add(child)
        self.nodes: FrozenSet[int] = frozenset(nodes)
        self.weight = sum(w for _, _, w in self.edges)

    def covers(self, graph: DiGraph, labels: Iterable[Hashable]) -> bool:
        remaining = set(labels)
        for node in self.nodes:
            if not remaining:
                break
            remaining -= graph.labels_of(node)
        return not remaining

    def validate(self, graph: DiGraph, labels: Iterable[Hashable] = ()) -> None:
        """Assert arborescence shape, edge existence, and coverage."""
        from ..errors import GraphError

        in_degree: Dict[int, int] = {}
        children: Dict[int, List[int]] = {}
        for parent, child, weight in self.edges:
            actual = graph.edge_weight(parent, child)  # raises if absent
            if abs(actual - weight) > 1e-9:
                raise GraphError(
                    f"edge ({parent}->{child}) weight {weight} != {actual}"
                )
            in_degree[child] = in_degree.get(child, 0) + 1
            children.setdefault(parent, []).append(child)
        if in_degree.get(self.root, 0) != 0:
            raise GraphError("root has an incoming tree edge")
        for node in self.nodes:
            if node != self.root and in_degree.get(node, 0) != 1:
                raise GraphError(f"node {node} has in-degree != 1")
        # Reachability from the root covers every node (no cycles).
        seen = {self.root}
        stack = [self.root]
        while stack:
            node = stack.pop()
            for child in children.get(node, ()):
                if child in seen:
                    raise GraphError("cycle in arborescence")
                seen.add(child)
                stack.append(child)
        if seen != set(self.nodes):
            raise GraphError("arborescence is not connected from the root")
        labels = list(labels)
        if labels and not self.covers(graph, labels):
            raise GraphError("arborescence does not cover the query labels")

    def render(self, graph: DiGraph) -> str:
        """ASCII rendering rooted at the arborescence root."""
        children: Dict[int, List[Tuple[int, float]]] = {}
        for parent, child, weight in self.edges:
            children.setdefault(parent, []).append((child, weight))

        def describe(node: int) -> str:
            name = graph.name_of(node)
            labels = ",".join(sorted(str(x) for x in graph.labels_of(node))[:4])
            shown = name if name is not None else node
            return f"{shown} ({labels})" if labels else f"{shown}"

        lines = [f"* {describe(self.root)}"]

        def walk(node: int, prefix: str) -> None:
            kids = sorted(children.get(node, ()))
            for i, (child, weight) in enumerate(kids):
                last = i == len(kids) - 1
                branch = "`-" if last else "|-"
                lines.append(f"{prefix}{branch}[{weight:g}] {describe(child)}")
                walk(child, prefix + ("  " if last else "| "))

        walk(self.root, "")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"DirectedSteinerTree(root={self.root}, weight={self.weight:g}, "
            f"nodes={len(self.nodes)})"
        )


# ----------------------------------------------------------------------
# Preprocessing: forward distances to each group (reverse Dijkstra)
# ----------------------------------------------------------------------
def _forward_distances(
    graph: DiGraph, members: List[int]
) -> Tuple[List[float], List[int]]:
    """``dist[v] = min_{u∈members} d(v → u)`` plus next-hop pointers.

    One Dijkstra over the *reversed* graph from the group members;
    ``next_hop[v]`` is the first edge of an optimal v→group path.
    """
    n = graph.num_nodes
    dist = [INF] * n
    next_hop = [-1] * n
    in_adjacency = graph.in_adjacency()
    heap: List[Tuple[float, int]] = []
    for node in members:
        if dist[node] > 0.0:
            dist[node] = 0.0
            heappush(heap, (0.0, node))
    while heap:
        d, u = heappop(heap)
        if d > dist[u]:
            continue
        for v, weight in in_adjacency[u]:  # edge v -> u in the original
            nd = d + weight
            if nd < dist[v]:
                dist[v] = nd
                next_hop[v] = u
                heappush(heap, (nd, v))
    return dist, next_hop


# ----------------------------------------------------------------------
# The solver
# ----------------------------------------------------------------------
class DirectedGSTSolver:
    """Progressive directed GST: best-first DP with best-solution pruning.

    No A* bound is offered, deliberately.  The undirected bounds of
    Section 4.1 estimate "cover the missing labels *from this node*" —
    valid there because rootedness is free in an undirected tree.  A
    directed state ``(v, X)`` can complete by *re-rooting* (the final
    root reaches ``v`` and the missing groups by its own paths), so any
    bound built from ``dist(v → V_i)`` over-estimates the completion
    (it is infinite for nodes that cannot reach a group themselves yet
    sit inside perfectly good answers) — i.e. it is inadmissible, and
    an A* search over it returns wrong answers.  Plain best-first cost
    order is exact (Ding et al.) and keeps every progressive property.
    """

    algorithm_name = "DirectedGST"

    def __init__(
        self,
        graph: DiGraph,
        query: Union[GSTQuery, Iterable[Hashable]],
        *,
        progressive: bool = True,
        time_limit: Optional[float] = None,
        epsilon: float = 0.0,
        max_states: Optional[int] = None,
    ) -> None:
        if epsilon < 0.0:
            raise ValueError("epsilon must be >= 0")
        self.graph = graph
        self.query = query if isinstance(query, GSTQuery) else GSTQuery(query)
        self.progressive = progressive
        self.time_limit = time_limit
        self.epsilon = epsilon
        self.max_states = max_states

    # ------------------------------------------------------------------
    def solve(self) -> GSTResult:
        started = time.perf_counter()
        graph = self.graph
        query = self.query
        groups = query.groups(graph)
        k = query.k
        full = query.full_mask

        dist: List[List[float]] = []
        next_hop: List[List[int]] = []
        for members in groups:
            d, nh = _forward_distances(graph, members)
            dist.append(d)
            next_hop.append(nh)
        init_seconds = time.perf_counter() - started

        if not any(
            all(dist[i][v] < INF for i in range(k)) for v in graph.nodes()
        ):
            raise InfeasibleQueryError(
                f"no root reaches every group {list(query.labels)!r}"
            )

        stats = SearchStats(init_seconds=init_seconds)
        trace: List[ProgressPoint] = []
        queue = IndexedHeap()
        pending: Dict[Tuple[int, int], Tuple[float, tuple]] = {}
        store = StateStore(graph.num_nodes, k)
        in_adjacency = graph.in_adjacency()

        best = INF
        best_tree: Optional[DirectedSteinerTree] = None
        global_lb = 0.0

        def record_progress(force: bool = False) -> None:
            point = ProgressPoint(
                elapsed=time.perf_counter() - started,
                best_weight=best,
                lower_bound=min(global_lb, best),
            )
            if trace and not force:
                last = trace[-1]
                if (
                    point.best_weight >= last.best_weight - _COST_EPS
                    and point.ratio >= last.ratio * 0.999
                ):
                    return
            trace.append(point)

        def build_feasible(node: int, mask: int, cost: float) -> None:
            nonlocal best, best_tree
            if best <= cost:
                return
            missing = full & ~mask
            for i in iter_bits(missing):
                if dist[i][node] == INF:
                    return
            # Store edges are (new_root, old_root, w); the directed edge
            # runs new_root -> old_root, i.e. parent -> child already.
            directed = list(store.tree_edges(node, mask))
            for i in iter_bits(missing):
                current = node
                while next_hop[i][current] != -1:
                    nxt = next_hop[i][current]
                    directed.append(
                        (current, nxt, graph.edge_weight(current, nxt))
                    )
                    current = nxt
            tree = _reduce_to_arborescence(graph, node, directed, query)
            stats.feasible_built += 1
            if tree is not None and tree.weight < best - _COST_EPS:
                best = tree.weight
                best_tree = tree
                record_progress()

        def update(node: int, mask: int, cost: float, backpointer: tuple) -> None:
            settled = store.cost_or_none(node, mask)
            if settled is not None:
                if cost >= settled - _COST_EPS:
                    return
                store.reopen(node, mask)
                stats.reopened += 1
            f_value = cost
            if f_value >= best:
                return
            if mask == full and cost < best - _COST_EPS:
                adopt_goal(node, mask, cost, backpointer)
            key = (node, mask)
            existing = pending.get(key)
            if existing is not None and existing[0] <= cost + _COST_EPS:
                return
            if existing is None:
                stats.states_pushed += 1
            pending[key] = (cost, backpointer)
            queue.update(key, f_value)
            live = len(queue) + len(store)
            if live > stats.peak_live_states:
                stats.peak_live_states = live

        def adopt_goal(node: int, mask: int, cost: float, backpointer: tuple) -> None:
            nonlocal best, best_tree
            directed = list(
                store.tree_edges(node, mask, override=(node, mask, backpointer))
            )
            tree = _reduce_to_arborescence(graph, node, directed, query)
            if tree is not None:
                best = min(cost, tree.weight)
                best_tree = tree
                record_progress()

        for label_index, members in enumerate(groups):
            bit = 1 << label_index
            for node in members:
                update(node, bit, 0.0, ("seed", label_index))

        optimal = False
        pops = 0
        while queue:
            pops += 1
            if pops % 256 == 0:
                if (
                    self.time_limit is not None
                    and time.perf_counter() - started >= self.time_limit
                ):
                    break
                if self.max_states is not None and pops >= self.max_states:
                    break
            if (
                best < INF
                and global_lb > 0.0
                and best <= (1.0 + self.epsilon) * global_lb + _COST_EPS
            ):
                optimal = self.epsilon == 0.0
                break

            key, f_value = queue.pop()
            node, mask = key
            cost, backpointer = pending.pop(key)
            stats.states_popped += 1
            # Best-first pop order: the popped cost is a monotone lower
            # bound on the optimum.
            if f_value > global_lb:
                global_lb = min(f_value, best)
                record_progress()

            if mask == full:
                # Monotone pop order: this goal is provably optimal.
                if cost < best - _COST_EPS:
                    adopt_goal(node, mask, cost, backpointer)
                store.settle(node, mask, cost, backpointer)
                global_lb = best
                optimal = True
                break

            store.settle(node, mask, cost, backpointer)
            if self.progressive:
                build_feasible(node, mask, cost)

            stats.states_expanded += 1
            # Edge growing: the root moves backward along v2 -> node.
            for v2, weight in in_adjacency[node]:
                stats.edges_grown += 1
                update(v2, mask, cost + weight, ("grow", node, weight))
            # Tree merging at the same root.
            for other_mask, other_cost in list(store.masks_at(node).items()):
                if other_mask & mask:
                    continue
                stats.merges_performed += 1
                update(
                    node,
                    mask | other_mask,
                    cost + other_cost,
                    ("merge", mask, other_mask),
                )
        else:
            if best < INF:
                optimal = True
                global_lb = best

        if best < INF and global_lb >= best - _COST_EPS:
            optimal = True
        stats.total_seconds = time.perf_counter() - started
        record_progress(force=True)
        return GSTResult(
            algorithm=self.algorithm_name,
            labels=query.labels,
            tree=best_tree,  # type: ignore[arg-type]
            weight=best,
            lower_bound=best if optimal else min(global_lb, best),
            optimal=optimal,
            stats=stats,
            trace=trace,
        )


def _reduce_to_arborescence(
    graph: DiGraph,
    root: int,
    directed_edges: List[Tuple[int, int, float]],
    query: GSTQuery,
) -> Optional[DirectedSteinerTree]:
    """Collapse a parent→child edge multiset into a pruned arborescence.

    Keeps, per node, the in-edge discovered on the cheapest BFS layer
    from the root (any single in-edge preserves reachability since all
    edges originate from root-reachable paths), then strips childless
    nodes carrying no needed query label.
    """
    children: Dict[int, List[Tuple[int, float]]] = {}
    for parent, child, weight in directed_edges:
        children.setdefault(parent, []).append((child, weight))
    chosen_parent: Dict[int, Tuple[int, float]] = {}
    seen = {root}
    queue = [root]
    while queue:
        node = queue.pop()
        for child, weight in children.get(node, ()):
            if child not in seen:
                seen.add(child)
                chosen_parent[child] = (node, weight)
                queue.append(child)
    edges = [
        (parent, child, weight)
        for child, (parent, weight) in chosen_parent.items()
    ]
    tree = DirectedSteinerTree(root, edges)
    return _prune_directed_leaves(graph, tree, query)


def _prune_directed_leaves(
    graph: DiGraph, tree: DirectedSteinerTree, query: GSTQuery
) -> DirectedSteinerTree:
    """Drop childless non-root nodes whose labels stay covered."""
    label_carriers = [0] * query.k
    node_masks: Dict[int, int] = {}
    for node in tree.nodes:
        mask = 0
        node_labels = graph.labels_of(node)
        for i, label in enumerate(query.labels):
            if label in node_labels:
                mask |= 1 << i
        node_masks[node] = mask
        for bit in iter_bits(mask):
            label_carriers[bit] += 1

    child_count: Dict[int, int] = {}
    parent_of: Dict[int, Tuple[int, float]] = {}
    for parent, child, weight in tree.edges:
        child_count[parent] = child_count.get(parent, 0) + 1
        parent_of[child] = (parent, weight)

    removed: Set[int] = set()
    frontier = [
        n for n in tree.nodes
        if n != tree.root and child_count.get(n, 0) == 0
    ]
    while frontier:
        node = frontier.pop()
        if node in removed or node == tree.root:
            continue
        if child_count.get(node, 0) != 0:
            continue
        mask = node_masks[node]
        if any(label_carriers[bit] <= 1 for bit in iter_bits(mask)):
            continue
        removed.add(node)
        for bit in iter_bits(mask):
            label_carriers[bit] -= 1
        parent, _ = parent_of[node]
        child_count[parent] -= 1
        if child_count[parent] == 0 and parent != tree.root:
            frontier.append(parent)
    if not removed:
        return tree
    kept = [
        (parent, child, weight)
        for parent, child, weight in tree.edges
        if child not in removed
    ]
    return DirectedSteinerTree(tree.root, kept)


# ----------------------------------------------------------------------
# Exhaustive oracle
# ----------------------------------------------------------------------
def brute_force_directed_gst(
    graph: DiGraph, labels: Iterable[Hashable]
) -> float:
    """Fixpoint evaluation of the directed DP recurrence (test oracle).

    Bellman-Ford-style relaxation of every edge-growth and merge until
    nothing changes — exact, independent of the best-first search
    order, and exponential in memory (``n · 2^k`` floats): tiny
    instances only.
    """
    query = labels if isinstance(labels, GSTQuery) else GSTQuery(labels)
    groups = query.groups(graph)
    k = query.k
    full = query.full_mask
    n = graph.num_nodes

    f = [[INF] * (full + 1) for _ in range(n)]
    for i, members in enumerate(groups):
        for node in members:
            f[node][1 << i] = 0.0

    edges = list(graph.edges())
    changed = True
    while changed:
        changed = False
        for source, target, weight in edges:
            row_t = f[target]
            row_s = f[source]
            for mask in range(1, full + 1):
                candidate = weight + row_t[mask]
                if candidate < row_s[mask] - _COST_EPS:
                    row_s[mask] = candidate
                    changed = True
        for node in range(n):
            row = f[node]
            for mask in range(1, full + 1):
                sub = (mask - 1) & mask
                while sub:
                    other = mask ^ sub
                    if sub < other:  # each split once
                        candidate = row[sub] + row[other]
                        if candidate < row[mask] - _COST_EPS:
                            row[mask] = candidate
                            changed = True
                    sub = (sub - 1) & mask
    return min(f[node][full] for node in range(n))
