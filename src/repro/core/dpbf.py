"""DPBF — the state-of-the-art parameterized DP of Ding et al. (ICDE'07).

This is the algorithm the paper improves on (Section 2): best-first
dynamic programming over states ``(v, X)`` with the transition

    f*(v, X) = min(  min_{(v,u)∈E}  f*(u, X)  + w(v, u),
                     min_{X = X₁ ⊎ X₂} f*(v, X₁) + f*(v, X₂) )

It finds the optimum in ``O(3^k n + 2^k (n log n + m))`` time and
``O(2^k n)`` space but — the paper's two complaints — produces *no*
answer until it terminates, and prunes nothing.

Kept as an independent implementation (no shared engine) so the test
suite can cross-check the progressive solvers against genuinely
separate code.
"""

from __future__ import annotations

import time
from typing import Dict, Hashable, Iterable, Optional, Tuple

from ..graph.graph import Graph
from ..graph.heap import IndexedHeap
from .budget import Budget
from .context import QueryContext
from .feasible import steiner_tree_from_edges
from .query import GSTQuery
from .result import GSTResult, ProgressPoint, SearchStats
from .state import StateStore

__all__ = ["DPBFSolver", "dpbf_optimal_weight"]

INF = float("inf")


class DPBFSolver:
    """Plain best-first parameterized DP; exact, non-progressive."""

    algorithm_name = "DPBF"

    def __init__(
        self,
        graph: Graph,
        query: Union[GSTQuery, Iterable[Hashable]],
        *,
        budget: Optional[Budget] = None,
        time_limit: Optional[float] = None,
        max_states: Optional[int] = None,
        distance_cache=None,
        on_event=None,
        on_progress=None,
    ) -> None:
        self.graph = graph
        self.query = query if isinstance(query, GSTQuery) else GSTQuery(query)
        # DPBF is non-progressive: epsilon in the budget is meaningless
        # here and simply ignored (the CLI warns about it).
        self.budget = Budget.coalesce(
            budget, time_limit=time_limit, max_states=max_states
        )
        self.time_limit = self.budget.time_limit
        self.max_states = self.budget.max_states
        self.distance_cache = distance_cache
        self.on_event = on_event
        # DPBF has no incumbent stream; the callback is accepted for
        # interface parity (callers need not care which algorithm runs)
        # and fired once with the terminal exact answer.
        self.on_progress = on_progress

    # Staged execution, mirroring the progressive solver protocol so
    # the service layer can time DPBF's stages the same way.
    def build_context(self) -> QueryContext:
        context = QueryContext.build(
            self.graph, self.query, cache=self.distance_cache
        )
        context.require_feasible()
        return context

    def prepare(self, context: QueryContext):
        return None

    def solve(self) -> GSTResult:
        return self.run_search(self.build_context())

    def run_search(self, context: QueryContext, prepared=None) -> GSTResult:
        time_limit = self.budget.effective_time_limit()
        if self.on_event is not None:
            self.on_event("search_started", {"algorithm": self.algorithm_name})
        started = time.perf_counter() - context.build_seconds
        stats = SearchStats(init_seconds=context.build_seconds)

        full = context.full_mask
        # Queue/pending keys are packed ``node << k | mask`` ints (the
        # same scheme as repro.core.state.pack_state), kept inline here
        # so DPBF stays a genuinely independent cross-check of the
        # progressive engine.
        kb = context.k
        mask_filter = (1 << kb) - 1
        adjacency = self.graph.adjacency()
        queue = IndexedHeap()
        pending: Dict[int, tuple] = {}
        store = StateStore(self.graph.num_nodes, kb)

        def push(node: int, mask: int, cost: float, backpointer: tuple) -> None:
            if store.contains(node, mask):
                return
            key = (node << kb) | mask
            old = pending.get(key)
            if old is not None and old[0] <= cost:
                return
            if old is None:
                stats.states_pushed += 1
            pending[key] = (cost, backpointer)
            queue.update(key, cost)

        for label_index, members in enumerate(context.groups):
            bit = 1 << label_index
            for node in members:
                push(node, bit, 0.0, ("seed", label_index))

        goal: Optional[Tuple[int, float, tuple]] = None
        interrupted = False
        while queue:
            if self.max_states is not None and stats.states_popped >= self.max_states:
                interrupted = True
                break
            if (
                time_limit is not None
                and stats.states_popped % 256 == 0
                and time.perf_counter() - started >= time_limit
            ):
                interrupted = True
                break
            key, cost = queue.pop()
            node = key >> kb
            mask = key & mask_filter
            backpointer = pending.pop(key)[1]
            stats.states_popped += 1
            if mask == full:
                goal = (node, cost, backpointer)
                break
            store.settle(node, mask, cost, backpointer)
            live = len(queue) + len(store)
            if live > stats.peak_live_states:
                stats.peak_live_states = live
            stats.peak_queue_size = max(stats.peak_queue_size, len(queue))
            stats.peak_store_size = max(stats.peak_store_size, len(store))
            stats.states_expanded += 1
            for neighbor, weight in adjacency[node]:
                stats.edges_grown += 1
                push(neighbor, mask, cost + weight, ("grow", node, weight))
            for other_mask, other_cost in list(store.masks_at(node).items()):
                if other_mask & mask:
                    continue
                stats.merges_performed += 1
                push(node, mask | other_mask, cost + other_cost, ("merge", mask, other_mask))

        stats.total_seconds = time.perf_counter() - started
        if self.on_event is not None:
            self.on_event(
                "search_finished",
                {
                    "optimal": goal is not None or not interrupted,
                    "elapsed": stats.total_seconds,
                    "states_popped": stats.states_popped,
                },
            )
        if goal is None:
            # Interrupted or (with a feasible query) impossible.
            return GSTResult(
                algorithm=self.algorithm_name,
                labels=self.query.labels,
                tree=None,
                weight=INF,
                lower_bound=0.0,
                optimal=not interrupted,
                stats=stats,
                trace=[],
            )
        node, cost, backpointer = goal
        edges = store.tree_edges(node, full, override=(node, full, backpointer))
        tree = steiner_tree_from_edges(edges, anchor=node)
        weight = min(cost, tree.weight)
        trace = [ProgressPoint(stats.total_seconds, weight, weight)]
        if self.on_progress is not None:
            self.on_progress(trace[0])
        return GSTResult(
            algorithm=self.algorithm_name,
            labels=self.query.labels,
            tree=tree,
            weight=weight,
            lower_bound=weight,
            optimal=True,
            stats=stats,
            trace=trace,
        )


def dpbf_optimal_weight(
    graph: Graph, labels: Iterable[Hashable]
) -> float:
    """Convenience: the exact optimal GST weight via DPBF."""
    return DPBFSolver(graph, labels).solve().weight
