"""The progressive best-first / A* search engine.

Algorithms 1 (``Basic``), 2 (``PrunedDP``) and 4 (``PrunedDP++``) share
their entire control flow — pop the best state, construct a feasible
solution, expand by *edge growing* and *tree merging*, maintain the best
feasible answer and a monotone lower bound — and differ only in four
policy knobs:

======================  =======  =========  ==========  ============
knob                    Basic    PrunedDP   PrunedDP+   PrunedDP++
======================  =======  =========  ==========  ============
``bounds`` (A* π)       —        —          one-label   π₁+π_t1+π_t2
``prune_half``          no       yes        yes         yes
``merge_factor``        —        2/3        2/3         2/3
``complement_shortcut`` no       yes        yes         yes
======================  =======  =========  ==========  ============

``prune_half`` is Theorem 1 (only states lighter than ``best/2`` are
expanded), ``merge_factor`` is Theorem 2 (two subtrees merge only when
their total is at most ``2/3 · best``), and ``complement_shortcut`` is
Algorithm 2 lines 16-18 (a popped state whose complement is settled
immediately forms the feasible state and is not otherwise expanded).

A* priorities use the paper's path-max fix (Section 4.2): the bound
cache is raised with ``π(parent) - δ`` on every expansion, which keeps
the combined bound consistent in practice.  As a *belt-and-braces*
exactness guarantee — independent of any consistency argument — the
engine reopens a settled state if a strictly cheaper derivation ever
appears (``stats.reopened`` counts these; the test suite asserts
agreement with plain DPBF on thousands of random instances).

Progressiveness: the engine emits :class:`~repro.core.result.ProgressPoint`
events whose ``(best_weight, lower_bound)`` pairs are exactly the UB/LB
curves of the paper's Figure 10, and every intermediate answer carries a
sound approximation guarantee (monotone non-increasing ratio).
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Tuple

from ..errors import LimitExceededError
from ..graph.heap import IndexedHeap
from .bounds import LowerBounds
from .context import QueryContext
from .feasible import (
    build_feasible_tree,
    prune_redundant_leaves,
    steiner_tree_from_edges,
)
from .result import GSTResult, ProgressPoint, SearchStats
from .state import StateStore
from .tree import SteinerTree

__all__ = ["SearchEngine"]

INF = float("inf")
_COST_EPS = 1e-12
_LIMIT_CHECK_INTERVAL = 256


class SearchEngine:
    """One run of the progressive GST search over a prepared query context."""

    def __init__(
        self,
        context: QueryContext,
        *,
        algorithm_name: str,
        bounds: Optional[LowerBounds] = None,
        prune_half: bool = False,
        merge_factor: Optional[float] = None,
        complement_shortcut: bool = False,
        progressive: bool = True,
        time_limit: Optional[float] = None,
        epsilon: float = 0.0,
        max_states: Optional[int] = None,
        on_limit: str = "return",
        cancel_token=None,
        checkpointer=None,
        debug_certify: bool = False,
        on_progress: Optional[Callable[[ProgressPoint], None]] = None,
        on_feasible: Optional[Callable[[SteinerTree], None]] = None,
        on_event: Optional[Callable[[str, dict], None]] = None,
        init_seconds: float = 0.0,
        table_entries: int = 0,
    ) -> None:
        if epsilon < 0.0:
            raise ValueError("epsilon must be >= 0")
        if on_limit not in ("return", "raise"):
            raise ValueError("on_limit must be 'return' or 'raise'")
        if merge_factor is not None and not 0.0 < merge_factor <= 1.0:
            raise ValueError("merge_factor must be in (0, 1]")
        self.context = context
        self.algorithm_name = algorithm_name
        self.bounds = bounds
        self.prune_half = prune_half
        self.merge_factor = merge_factor
        self.complement_shortcut = complement_shortcut
        self.progressive = progressive
        self.time_limit = time_limit
        self.epsilon = epsilon
        self.max_states = max_states
        self.on_limit = on_limit
        self.cancel_token = cancel_token
        # Durability hook (see :mod:`repro.service.durability`): an
        # object with ``maybe_checkpoint(engine)`` called once per loop
        # iteration at a consistent point (before the pop), and invoked
        # with ``checkpoint(engine)`` on cooperative cancellation.
        self.checkpointer = checkpointer
        self.debug_certify = debug_certify
        self.on_progress = on_progress
        self.on_feasible = on_feasible
        self.on_event = on_event

        self.stats = SearchStats(
            init_seconds=init_seconds, table_entries=table_entries
        )
        self.trace: List[ProgressPoint] = []

        # Queue/pending keys are ``(node, mask)`` tuples in the legacy
        # loop and packed ``node << k | mask`` ints in the CSR fast loop
        # (the store packs its backpointers the same way either way).
        self._queue = IndexedHeap()
        self._pending: Dict[object, Tuple[float, tuple]] = {}
        self._store = StateStore(context.graph.num_nodes, context.k)
        self._full = context.full_mask
        self.kernel = context.kernel
        # CSR-loop memos: materialized shortest-path pieces per
        # (label, node), and signatures of feasible-tree unions already
        # refined (see ``_build_feasible_csr``).
        self._path_pieces: Dict[int, Optional[tuple]] = {}
        self._union_seen: set = set()
        self._best = INF
        self._best_tree: Optional[SteinerTree] = None
        self._global_lb = 0.0
        self._last_ratio_recorded = INF
        self._started = 0.0
        # Set by :meth:`restore`: skips seeding and offsets the clock so
        # elapsed time is cumulative across checkpoint/resume cycles.
        self._restored = False
        self._elapsed_offset = 0.0

    # ------------------------------------------------------------------
    # Public entry point
    # ------------------------------------------------------------------
    def run(self) -> GSTResult:
        """Execute the search and return the (possibly anytime) result.

        Dispatches on the query context: a frozen graph (``snapshot``
        present) takes the packed-key CSR fast loop, an unfrozen graph
        takes the original tuple-keyed loop.  The two are semantically
        identical — the legacy loop is kept verbatim as the differential
        reference (``repro.verify`` pins agreement) — and differ only in
        mechanics: single-int state keys, snapshot adjacency views, a
        π₁ gate in front of redundant feasible-tree constructions, and
        sampled instead of per-push peak tracking.
        """
        if self.context.snapshot is not None:
            return self._run_csr()
        return self._run_legacy()

    def _run_legacy(self) -> GSTResult:
        """The original tuple-keyed search loop (reference semantics)."""
        self._started = time.perf_counter() - self.stats.init_seconds
        self._emit("search_started", algorithm=self.algorithm_name)
        if self.cancel_token is not None and self.cancel_token.cancelled:
            # Cancelled before any work: return an empty anytime result
            # without seeding a single state.
            self.stats.cancelled = True
            self.stats.total_seconds = self._elapsed()
            self._record_progress(force=True)
            self._emit("search_cancelled", elapsed=self.stats.total_seconds)
            return GSTResult(
                algorithm=self.algorithm_name,
                labels=self.context.query.labels,
                tree=None,
                weight=INF,
                lower_bound=0.0,
                optimal=False,
                stats=self.stats,
                trace=self.trace,
            )
        if not self._restored:
            self._seed_states()

        checkpointer = self.checkpointer
        optimal = False
        pops_since_check = 0
        while self._queue:
            if checkpointer is not None:
                # Loop top is the engine's consistent point: the queue,
                # pending map, and settled store agree with each other.
                checkpointer.maybe_checkpoint(self)
            pops_since_check += 1
            if pops_since_check >= _LIMIT_CHECK_INTERVAL:
                pops_since_check = 0
                if self._limits_hit():
                    break
            if self._epsilon_satisfied():
                optimal = self.epsilon == 0.0 or self._best <= 0.0
                break

            key, f_value = self._queue.pop()
            node, mask = key
            cost, backpointer = self._pending.pop(key)
            self.stats.states_popped += 1
            self._raise_global_lb(f_value if self.bounds is not None else cost)

            if mask == self._full:
                # Goal popped: its cost is the proven optimum.
                if cost < self._best - _COST_EPS:
                    self._adopt_best_state(node, mask, cost, backpointer)
                self._store.settle(node, mask, cost, backpointer)
                self._raise_global_lb(self._best)
                optimal = True
                break

            self._store.settle(node, mask, cost, backpointer)
            self._track_peak()

            if self.progressive:
                self._build_feasible(node, mask, cost, backpointer)

            parent_f = f_value if self.bounds is not None else cost

            if self.complement_shortcut:
                complement = self._full ^ mask
                complement_cost = self._store.cost_or_none(node, complement)
                if complement_cost is not None:
                    self._update(
                        node,
                        self._full,
                        cost + complement_cost,
                        ("merge", mask, complement),
                        parent_f,
                    )
                    continue  # Algorithm 2 line 18

            if self.prune_half and cost >= self._best / 2.0:
                self.stats.states_pruned += 1
                continue  # Theorem 1: no expansion needed

            self._expand(node, mask, cost, parent_f)

        else:
            # Queue drained without popping a goal: every alternative was
            # pruned against `best`, so the best feasible answer is optimal
            # (provided one exists at all).
            if self._best < INF:
                optimal = True
                self._raise_global_lb(self._best)

        if self._best < INF and self._global_lb >= self._best - _COST_EPS:
            optimal = True
        self.stats.total_seconds = self._elapsed()
        self._record_progress(force=True)
        self._emit(
            "search_finished",
            optimal=optimal,
            elapsed=self.stats.total_seconds,
            states_popped=self.stats.states_popped,
            best_weight=self._best,
        )
        return GSTResult(
            algorithm=self.algorithm_name,
            labels=self.context.query.labels,
            tree=self._best_tree,
            weight=self._best,
            lower_bound=self._best if optimal else min(self._global_lb, self._best),
            optimal=optimal,
            stats=self.stats,
            trace=self.trace,
        )

    # ------------------------------------------------------------------
    # CSR fast loop
    # ------------------------------------------------------------------
    def _run_csr(self) -> GSTResult:
        """Packed-key search loop over a frozen snapshot.

        Hot-path mechanics (all behavior-preserving):

        * state keys are single ints ``node << k | mask`` shared by the
          queue, the pending map, the settled store, and the bound cache
          — no tuple allocation or composite hashing per touch;
        * adjacency comes from the snapshot's immutable per-node tuple
          views (no method call, no defensive copy);
        * the ``update`` procedure is a closure over local bindings
          instead of a bound method;
        * feasible-tree construction memoizes shortest-path pieces and
          skips re-refining a union of edges it has already refined
          (:meth:`_build_feasible_csr`) — an *exact* dedup, so the
          incumbent trajectory is unchanged.  The top-r collector
          (``on_feasible``) bypasses the memo so every candidate still
          materializes;
        * peak-size tracking is sampled at the limit-check interval
          rather than per push.
        """
        self._started = time.perf_counter() - self.stats.init_seconds
        self._emit("search_started", algorithm=self.algorithm_name)
        if self.cancel_token is not None and self.cancel_token.cancelled:
            self.stats.cancelled = True
            self.stats.total_seconds = self._elapsed()
            self._record_progress(force=True)
            self._emit("search_cancelled", elapsed=self.stats.total_seconds)
            return GSTResult(
                algorithm=self.algorithm_name,
                labels=self.context.query.labels,
                tree=None,
                weight=INF,
                lower_bound=0.0,
                optimal=False,
                stats=self.stats,
                trace=self.trace,
            )

        context = self.context
        kb = context.k
        mask_filter = (1 << kb) - 1
        full = self._full
        store = self._store
        store_cost = store._cost
        pending = self._pending
        queue = self._queue
        queue_update = queue.update
        queue_pop = queue.pop
        pending_pop = pending.pop
        bounds = self.bounds
        raise_bound = bounds.raise_to if bounds is not None else None
        has_bounds = bounds is not None
        adjacency = context.snapshot.adjacency
        stats = self.stats
        eps = _COST_EPS
        merge_factor = self.merge_factor
        prune_half = self.prune_half
        complement_shortcut = self.complement_shortcut
        progressive = self.progressive
        on_feasible = self.on_feasible

        # Resumed runs continue the checkpointed counters (cumulative
        # across interruptions); cold runs start from the zeros the
        # constructor put in ``stats``.
        pops = stats.states_popped
        pushes = stats.states_pushed
        expanded = stats.states_expanded
        grown = stats.edges_grown
        merges = stats.merges_performed
        pruned = stats.states_pruned

        def update(node, mask, cost, backpointer, parent_f):
            # Inlined twin of ``_update`` (Alg 1 lines 21-26 / Alg 4
            # 28-36) over packed keys; reads ``self._best`` fresh so
            # mid-expansion incumbent drops tighten pruning immediately.
            nonlocal pushes, pruned
            settled = store_cost[node].get(mask)
            if settled is not None:
                if cost >= settled - eps:
                    return
                store.reopen(node, mask)
                stats.reopened += 1
            if raise_bound is not None:
                f_value = cost + raise_bound(node, mask, parent_f - cost)
            else:
                f_value = cost
            if f_value >= self._best:
                pruned += 1
                return
            if mask == full and cost < self._best - eps:
                self._adopt_best_state(node, mask, cost, backpointer)
            key = (node << kb) | mask
            existing = pending.get(key)
            if existing is not None and existing[0] <= cost + eps:
                return
            if existing is None:
                pushes += 1
            pending[key] = (cost, backpointer)
            queue_update(key, f_value)

        if not self._restored:
            for label_index, members in enumerate(context.groups):
                bit = 1 << label_index
                seed_bp = ("seed", label_index)
                for node in members:
                    update(node, bit, 0.0, seed_bp, 0.0)
        self._track_peak()

        checkpointer = self.checkpointer
        optimal = False
        pops_since_check = 0
        try:
            while queue:
                if checkpointer is not None:
                    # Sync the counters the checkpoint serializes, then
                    # give the cadence hook its per-iteration look.  Loop
                    # top is the consistent point: queue, pending, and
                    # settled store agree with each other here.
                    stats.states_popped = pops
                    stats.states_pushed = pushes
                    stats.states_expanded = expanded
                    stats.edges_grown = grown
                    stats.merges_performed = merges
                    stats.states_pruned = pruned
                    checkpointer.maybe_checkpoint(self)
                pops_since_check += 1
                if pops_since_check >= _LIMIT_CHECK_INTERVAL:
                    pops_since_check = 0
                    stats.states_popped = pops
                    self._track_peak()
                    if self._limits_hit():
                        break
                if self._epsilon_satisfied():
                    optimal = self.epsilon == 0.0 or self._best <= 0.0
                    break

                key, f_value = queue_pop()
                node = key >> kb
                mask = key & mask_filter
                cost, backpointer = pending_pop(key)
                pops += 1
                self._raise_global_lb(f_value if has_bounds else cost)

                if mask == full:
                    # Goal popped: its cost is the proven optimum.
                    if cost < self._best - eps:
                        self._adopt_best_state(node, mask, cost, backpointer)
                    store.settle(node, mask, cost, backpointer)
                    self._raise_global_lb(self._best)
                    optimal = True
                    break

                store.settle(node, mask, cost, backpointer)

                if progressive:
                    if on_feasible is not None:
                        self._build_feasible(node, mask, cost, backpointer)
                    elif cost < self._best:
                        self._build_feasible_csr(node, mask, cost)

                parent_f = f_value if has_bounds else cost

                if complement_shortcut:
                    complement = full ^ mask
                    complement_cost = store_cost[node].get(complement)
                    if complement_cost is not None:
                        update(
                            node,
                            full,
                            cost + complement_cost,
                            ("merge", mask, complement),
                            parent_f,
                        )
                        continue  # Algorithm 2 line 18

                if prune_half and cost >= self._best / 2.0:
                    pruned += 1
                    continue  # Theorem 1: no expansion needed

                expanded += 1
                for neighbor, weight in adjacency[node]:
                    grown += 1
                    update(
                        neighbor,
                        mask,
                        cost + weight,
                        ("grow", node, weight),
                        parent_f,
                    )
                best = self._best
                merge_budget = (
                    merge_factor * best
                    if merge_factor is not None and best < INF
                    else INF
                )
                # list() copy: a reopen inside update() mutates this dict.
                for other_mask, other_cost in list(store_cost[node].items()):
                    if other_mask & mask:
                        continue
                    combined = cost + other_cost
                    new_mask = mask | other_mask
                    if new_mask != full and combined > merge_budget:
                        continue  # Theorem 2: unpromising partial merge
                    merges += 1
                    update(
                        node,
                        new_mask,
                        combined,
                        ("merge", mask, other_mask),
                        parent_f,
                    )
            else:
                # Queue drained without popping a goal: every alternative
                # was pruned against `best`, so the best feasible answer
                # is optimal (provided one exists at all).
                if self._best < INF:
                    optimal = True
                    self._raise_global_lb(self._best)
        finally:
            stats.states_popped = pops
            stats.states_pushed = pushes
            stats.states_expanded = expanded
            stats.edges_grown = grown
            stats.merges_performed = merges
            stats.states_pruned = pruned

        if self._best < INF and self._global_lb >= self._best - eps:
            optimal = True
        self._track_peak()
        stats.total_seconds = self._elapsed()
        self._record_progress(force=True)
        self._emit(
            "search_finished",
            optimal=optimal,
            elapsed=stats.total_seconds,
            states_popped=stats.states_popped,
            best_weight=self._best,
        )
        return GSTResult(
            algorithm=self.algorithm_name,
            labels=self.context.query.labels,
            tree=self._best_tree,
            weight=self._best,
            lower_bound=self._best if optimal else min(self._global_lb, self._best),
            optimal=optimal,
            stats=self.stats,
            trace=self.trace,
        )

    # ------------------------------------------------------------------
    # Checkpoint / restore (durability layer)
    # ------------------------------------------------------------------
    def checkpoint(self) -> dict:
        """Serialize the live search state to a JSON-safe dict.

        Captures everything :meth:`restore` needs to continue the search
        as if it had never stopped: the priority queue (``(key, f)``
        pairs), the pending map (``(key, cost, backpointer)``), the
        settled :class:`~repro.core.state.StateStore`, the incumbent
        tree, the global lower bound, cumulative elapsed time, and the
        stats counters.  All state keys are normalized to packed
        ``node << k | mask`` ints (:func:`~repro.core.state.pack_state`)
        regardless of which run loop produced them, so a checkpoint
        taken by the legacy loop restores into the CSR loop and vice
        versa.  Must be called at a consistent point — between loop
        iterations, which is where the engine invokes its checkpointer.
        """
        kb = self.context.k
        legacy = self.context.snapshot is None
        if legacy:
            queue = [
                [(key[0] << kb) | key[1], f] for key, f in self._queue.items()
            ]
            pending = [
                [(key[0] << kb) | key[1], cost, list(bp)]
                for key, (cost, bp) in self._pending.items()
            ]
        else:
            queue = [[key, f] for key, f in self._queue.items()]
            pending = [
                [key, cost, list(bp)]
                for key, (cost, bp) in self._pending.items()
            ]
        settled = [
            [(node << kb) | mask, cost, list(bp)]
            for node, mask, cost, bp in self._store.items()
        ]
        best_tree = None
        if self._best_tree is not None:
            best_tree = {
                "edges": [[u, v, w] for u, v, w in self._best_tree.edges],
                "nodes": sorted(self._best_tree.nodes),
            }
        stats = self.stats
        return {
            "key_bits": kb,
            "algorithm": self.algorithm_name,
            "epsilon": self.epsilon,
            "elapsed": self._elapsed(),
            "best_weight": self._best,
            "best_tree": best_tree,
            "global_lb": self._global_lb,
            "queue": queue,
            "pending": pending,
            "settled": settled,
            "stats": {
                "states_popped": stats.states_popped,
                "states_pushed": stats.states_pushed,
                "states_expanded": stats.states_expanded,
                "states_pruned": stats.states_pruned,
                "incumbent_improvements": stats.incumbent_improvements,
                "merges_performed": stats.merges_performed,
                "edges_grown": stats.edges_grown,
                "feasible_built": stats.feasible_built,
                "reopened": stats.reopened,
                "peak_queue_size": stats.peak_queue_size,
                "peak_store_size": stats.peak_store_size,
                "peak_live_states": stats.peak_live_states,
                "feasible_seconds": stats.feasible_seconds,
            },
        }

    def restore(self, state: dict) -> None:
        """Rehydrate a :meth:`checkpoint` dict; call before :meth:`run`.

        Rebuilds the queue, pending map, settled store, incumbent, and
        lower bound, and marks the engine restored so the run loops skip
        seeding and continue the clock and counters cumulatively.  The
        caller (:mod:`repro.service.durability`) is responsible for
        binding the checkpoint to the right graph/query — this method
        only validates the mask width.
        """
        kb = int(state["key_bits"])
        if kb != self.context.k:
            raise ValueError(
                f"checkpoint was taken with key_bits={kb} but this query "
                f"has k={self.context.k} labels"
            )
        legacy = self.context.snapshot is None
        mask_filter = (1 << kb) - 1
        for packed, cost, bp in state["settled"]:
            self._store.settle(
                packed >> kb, packed & mask_filter, cost, tuple(bp)
            )
        for packed, cost, bp in state["pending"]:
            key = (packed >> kb, packed & mask_filter) if legacy else packed
            self._pending[key] = (cost, tuple(bp))
        for packed, f_value in state["queue"]:
            key = (packed >> kb, packed & mask_filter) if legacy else packed
            self._queue.update(key, f_value)
        self._best = float(state["best_weight"])
        tree = state.get("best_tree")
        if tree is not None:
            self._best_tree = SteinerTree(
                ((u, v, w) for u, v, w in tree["edges"]), nodes=tree["nodes"]
            )
        self._global_lb = float(state["global_lb"])
        self._elapsed_offset = float(state.get("elapsed", 0.0))
        counters = state.get("stats", {})
        stats = self.stats
        stats.states_popped = int(counters.get("states_popped", 0))
        stats.states_pushed = int(counters.get("states_pushed", 0))
        stats.states_expanded = int(counters.get("states_expanded", 0))
        stats.states_pruned = int(counters.get("states_pruned", 0))
        stats.incumbent_improvements = int(
            counters.get("incumbent_improvements", 0)
        )
        stats.merges_performed = int(counters.get("merges_performed", 0))
        stats.edges_grown = int(counters.get("edges_grown", 0))
        stats.feasible_built = int(counters.get("feasible_built", 0))
        stats.reopened = int(counters.get("reopened", 0))
        stats.peak_queue_size = int(counters.get("peak_queue_size", 0))
        stats.peak_store_size = int(counters.get("peak_store_size", 0))
        stats.peak_live_states = int(counters.get("peak_live_states", 0))
        stats.feasible_seconds = float(counters.get("feasible_seconds", 0.0))
        self._restored = True
        self._emit(
            "search_resumed",
            states_popped=stats.states_popped,
            queue_size=len(self._queue),
            best_weight=self._best,
        )

    # ------------------------------------------------------------------
    # Search phases
    # ------------------------------------------------------------------
    def _seed_states(self) -> None:
        """Initial states ``(v, {p})`` at cost 0 for every ``v ∈ V_p``."""
        # Seeding one label per state matches the paper; nodes carrying
        # several query labels reach the richer masks via zero-cost merges
        # of their seed states.
        for label_index, members in enumerate(self.context.groups):
            bit = 1 << label_index
            for node in members:
                self._update(node, bit, 0.0, ("seed", label_index), 0.0)
        self._track_peak()

    def _expand(self, node: int, mask: int, cost: float, parent_f: float) -> None:
        self.stats.states_expanded += 1
        full = self._full
        # Edge growing: state (u, X) from (v, X) plus edge (v, u).
        for neighbor, weight in self.context.graph.adjacency()[node]:
            self.stats.edges_grown += 1
            self._update(
                neighbor, mask, cost + weight, ("grow", node, weight), parent_f
            )
        # Tree merging with every settled, disjoint mask at this node.
        merge_budget = (
            self.merge_factor * self._best
            if self.merge_factor is not None and self._best < INF
            else INF
        )
        for other_mask, other_cost in list(self._store.masks_at(node).items()):
            if other_mask & mask:
                continue
            combined = cost + other_cost
            new_mask = mask | other_mask
            if new_mask != full and combined > merge_budget:
                continue  # Theorem 2: unpromising partial merge
            self.stats.merges_performed += 1
            self._update(
                node, new_mask, combined, ("merge", mask, other_mask), parent_f
            )

    def _update(
        self,
        node: int,
        mask: int,
        cost: float,
        backpointer: tuple,
        parent_f: float,
    ) -> None:
        """The paper's ``update`` procedure (Alg 1 lines 21-26 / Alg 4 28-36)."""
        settled = self._store.cost_or_none(node, mask)
        if settled is not None:
            if cost >= settled - _COST_EPS:
                return
            # A strictly cheaper derivation reached a settled state: the
            # exactness safety net (see module docstring).
            self._store.reopen(node, mask)
            self.stats.reopened += 1

        if self.bounds is not None:
            pi = self.bounds.raise_to(node, mask, parent_f - cost)
            f_value = cost + pi
        else:
            f_value = cost

        if f_value >= self._best:
            self.stats.states_pruned += 1
            return  # cannot improve on the best feasible solution

        if mask == self._full and cost < self._best - _COST_EPS:
            self._adopt_best_state(node, mask, cost, backpointer)

        key = (node, mask)
        existing = self._pending.get(key)
        if existing is not None and existing[0] <= cost + _COST_EPS:
            return
        if existing is None:
            self.stats.states_pushed += 1
        self._pending[key] = (cost, backpointer)
        self._queue.update(key, f_value)
        self._track_peak()

    # ------------------------------------------------------------------
    # Feasible solutions and progress reporting
    # ------------------------------------------------------------------
    def _build_feasible(
        self, node: int, mask: int, cost: float, backpointer: tuple
    ) -> None:
        """Algorithms 1/2/4 lines 10-15: upper bound from this state."""
        if self._best <= cost and self.on_feasible is None:
            # The feasible tree costs at least `cost`; it cannot beat
            # the incumbent, so skip the MST work.  (With an on_feasible
            # collector installed — the top-r mode — every candidate is
            # still materialized.)
            return
        started = time.perf_counter()
        state_edges = self._store.tree_edges(node, mask)
        tree = build_feasible_tree(self.context, state_edges, node, mask)
        self.stats.feasible_built += 1
        self.stats.feasible_seconds += time.perf_counter() - started
        if tree is None:
            return
        if self.on_feasible is not None:
            self.on_feasible(tree)
        if tree.weight < self._best - _COST_EPS:
            self._best = tree.weight
            self._best_tree = tree
            self.stats.incumbent_improvements += 1
            self._clamp_stale_lb()
            self._emit("new_best", weight=tree.weight, elapsed=self._elapsed())
            self._record_progress()
            if self.debug_certify:
                self._certify_incumbent()

    def _build_feasible_csr(self, node: int, mask: int, cost: float) -> None:
        """Memoized feasible construction for the CSR fast loop.

        Same output as :meth:`_build_feasible` with two exact
        accelerations:

        * the shortest-path edge walk from ``v`` toward each missing
          group depends only on ``(label, v)`` and is cached across
          pops (the parent trees are fixed for the whole query);
        * the union of state edges + path pieces is signatured; a union
          already refined earlier in the run would produce the *same*
          tree, whose weight was already compared against an incumbent
          that has only decreased since — so duplicates skip the
          MST/prune refinement with zero effect on the trajectory.
        """
        started = time.perf_counter()
        state_edges = self._store.tree_edges(node, mask)
        pieces = self._path_pieces
        context = self.context
        kb = self._store.key_bits
        missing = self._full & ~mask
        union: List[tuple] = list(state_edges)
        m = missing
        while m:
            low = m & -m
            m ^= low
            label_index = low.bit_length() - 1
            key = (node << kb) | label_index
            piece = pieces.get(key, False)
            if piece is False:
                if context.dist[label_index][node] == INF:
                    piece = None
                else:
                    piece = tuple(
                        context.shortest_path_edges(label_index, node)
                    )
                pieces[key] = piece
            if piece is None:
                # Missing label unreachable: no feasible tree here.
                self.stats.feasible_seconds += time.perf_counter() - started
                return
            union.extend(piece)

        signature = frozenset(
            (u, v) if u < v else (v, u) for u, v, _ in union
        )
        if signature in self._union_seen:
            self.stats.feasible_seconds += time.perf_counter() - started
            return
        self._union_seen.add(signature)

        tree = steiner_tree_from_edges(union, anchor=node)
        tree = prune_redundant_leaves(context, tree)
        self.stats.feasible_built += 1
        self.stats.feasible_seconds += time.perf_counter() - started
        if tree.weight < self._best - _COST_EPS:
            self._best = tree.weight
            self._best_tree = tree
            self.stats.incumbent_improvements += 1
            self._clamp_stale_lb()
            self._emit("new_best", weight=tree.weight, elapsed=self._elapsed())
            self._record_progress()
            if self.debug_certify:
                self._certify_incumbent()

    def _adopt_best_state(
        self, node: int, mask: int, cost: float, backpointer: tuple
    ) -> None:
        """A goal state beat the incumbent: rebuild its tree."""
        started = time.perf_counter()
        edges = self._store.tree_edges(node, mask, override=(node, mask, backpointer))
        tree = steiner_tree_from_edges(edges, anchor=node)
        self.stats.feasible_seconds += time.perf_counter() - started
        # Merged derivations may share edges, in which case the actual
        # union is even lighter than the state cost; keep the real weight.
        self._best = min(cost, tree.weight)
        self._best_tree = tree
        self.stats.incumbent_improvements += 1
        self._clamp_stale_lb()
        if self.on_feasible is not None:
            self.on_feasible(tree)
        self._emit("new_best", weight=self._best, elapsed=self._elapsed())
        self._record_progress()
        if self.debug_certify:
            self._certify_incumbent()

    def _raise_global_lb(self, value: float) -> None:
        if value > self._global_lb:
            self._global_lb = min(value, self._best)
            self._record_progress()

    def _clamp_stale_lb(self) -> None:
        """Keep the global lower bound from crossing a new incumbent.

        ``_raise_global_lb`` clamps against the incumbent *at raise
        time*; when a later feasible tree drops ``_best`` below the
        already-raised bound the stored value would cross it.  (The pi
        bound paths can also overshoot by float rounding.)  Every report
        derives its LB from ``min(_global_lb, _best)``, so this keeps
        the stored state itself sound.
        """
        if self._global_lb > self._best:
            self._global_lb = self._best

    def _certify_incumbent(self) -> None:
        """``debug_certify`` hook: independently re-validate the incumbent."""
        from ..verify.certify import certify_incumbent

        certify_incumbent(
            self.context.graph,
            self.context.query.labels,
            self._best_tree,
            self._best,
            min(self._global_lb, self._best),
        )

    def _record_progress(self, force: bool = False) -> None:
        point = ProgressPoint(
            elapsed=self._elapsed(),
            best_weight=self._best,
            lower_bound=min(self._global_lb, self._best),
        )
        ratio = point.ratio
        if not force and self.trace:
            last = self.trace[-1]
            improved_best = point.best_weight < last.best_weight - _COST_EPS
            improved_ratio = ratio < self._last_ratio_recorded * 0.999
            if not improved_best and not improved_ratio:
                return
        self._last_ratio_recorded = ratio
        self.trace.append(point)
        if self.on_progress is not None:
            self.on_progress(point)

    def _emit(self, name: str, **payload) -> None:
        """Publish a lifecycle event to the telemetry hook, if any."""
        if self.on_event is not None:
            self.on_event(name, payload)

    # ------------------------------------------------------------------
    # Limits
    # ------------------------------------------------------------------
    def _elapsed(self) -> float:
        # ``_elapsed_offset`` carries the wall-clock already spent before
        # a checkpoint this engine was restored from (0.0 on cold runs),
        # so progress reports and time limits see cumulative time.
        return time.perf_counter() - self._started + self._elapsed_offset

    def _epsilon_satisfied(self) -> bool:
        if self._best == INF:
            return False
        if self._best <= 0.0:
            # Non-negative edge weights make a zero-weight incumbent
            # trivially optimal; without this the lb-positivity guard
            # below would drain the whole queue (and could even trip
            # max_states) with the proven answer already in hand.
            return True
        if self._global_lb <= 0.0:
            return False
        return self._best <= (1.0 + self.epsilon) * self._global_lb + _COST_EPS

    def _limits_hit(self) -> bool:
        if self.cancel_token is not None and self.cancel_token.cancelled:
            # Cooperative cancellation: checked every
            # ``_LIMIT_CHECK_INTERVAL`` pops, so a cancelled query stops
            # within that many pops and returns its incumbent answer.
            self.stats.cancelled = True
            if self.checkpointer is not None:
                # Persist the frontier before unwinding so the query can
                # be resumed exactly where cancellation struck.
                self.checkpointer.checkpoint(self)
            self._emit("search_cancelled", elapsed=self._elapsed())
            return True
        if self.time_limit is not None and self._elapsed() >= self.time_limit:
            if self.checkpointer is not None:
                # Anytime exits persist a final checkpoint too, so a
                # budget-limited answer can later be resumed and pushed
                # to proven optimality instead of restarting cold.
                self.checkpointer.checkpoint(self)
            return True
        if self.max_states is not None and self.stats.states_popped >= self.max_states:
            if self.on_limit == "raise":
                raise LimitExceededError(
                    f"{self.algorithm_name}: max_states={self.max_states} exhausted"
                )
            if self.checkpointer is not None:
                self.checkpointer.checkpoint(self)
            return True
        return False

    def _track_peak(self) -> None:
        live = len(self._queue) + len(self._store)
        if live > self.stats.peak_live_states:
            self.stats.peak_live_states = live
        if len(self._queue) > self.stats.peak_queue_size:
            self.stats.peak_queue_size = len(self._queue)
        if len(self._store) > self.stats.peak_store_size:
            self.stats.peak_store_size = len(self._store)
