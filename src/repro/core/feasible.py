"""Feasible-solution construction (Algorithms 1/2/4, lines 10-15).

Given a popped DP state ``(v, X)`` whose tree ``T(v, X)`` is known, the
paper builds a full feasible solution by

1. uniting ``T(v, X)`` with the shortest path from ``v`` to the virtual
   node of every *missing* label ``p ∈ X̄`` (giving ``T'(v, X̄)``),
2. taking the MST of the united edge set, and
3. (implicitly, by taking a *tree*) dropping redundancy.

We additionally prune leaf branches that cover no needed label — a
strictly-improving post-pass that keeps the feasible tree (and therefore
the paper's upper-bound curves) tight.  The result is always a valid
covering tree, so its weight is a sound upper bound on ``f*(P)``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..graph.mst import minimum_spanning_forest
from .context import QueryContext
from .state import iter_bits
from .tree import SteinerTree

__all__ = ["build_feasible_tree", "steiner_tree_from_edges"]

INF = float("inf")
EdgeTuple = Tuple[int, int, float]


def build_feasible_tree(
    context: QueryContext,
    state_edges: List[EdgeTuple],
    root: int,
    covered_mask: int,
) -> Optional[SteinerTree]:
    """Feasible tree for state ``(root, covered_mask)``, or ``None``.

    ``state_edges`` is the (possibly empty) edge set of ``T(v, X)``.
    Returns ``None`` when some missing label is unreachable from the
    root (disconnected graph) — the state simply yields no feasible
    solution, mirroring the paper's connected-graph assumption.
    """
    missing = context.full_mask & ~covered_mask
    edges: List[EdgeTuple] = list(state_edges)
    for label_index in iter_bits(missing):
        if context.dist[label_index][root] == INF:
            return None
        edges.extend(context.shortest_path_edges(label_index, root))
    tree = steiner_tree_from_edges(edges, anchor=root)
    return prune_redundant_leaves(context, tree)


def steiner_tree_from_edges(
    edges: List[EdgeTuple], anchor: int
) -> SteinerTree:
    """Collapse an edge multiset into a tree: dedupe + MST.

    Union of shortest paths and a DP tree can contain duplicate edges
    and cycles; ``minimum_spanning_forest`` resolves both.  If the union
    is (unexpectedly) disconnected only the component containing
    ``anchor`` is kept — the other fragments cannot contribute coverage
    reachable from the anchor anyway.
    """
    if not edges:
        return SteinerTree.single_node(anchor)
    forest = minimum_spanning_forest(edges)
    # Split into components and keep the anchor's.
    adjacency: Dict[int, List[EdgeTuple]] = {}
    for u, v, w in forest:
        adjacency.setdefault(u, []).append((u, v, w))
        adjacency.setdefault(v, []).append((u, v, w))
    if anchor not in adjacency:
        return SteinerTree.single_node(anchor)
    component: Set[int] = {anchor}
    stack = [anchor]
    kept: List[EdgeTuple] = []
    seen_edges: Set[Tuple[int, int]] = set()
    while stack:
        node = stack.pop()
        for u, v, w in adjacency.get(node, ()):
            key = (min(u, v), max(u, v))
            if key in seen_edges:
                continue
            seen_edges.add(key)
            kept.append((u, v, w))
            other = v if node == u else u
            if other not in component:
                component.add(other)
                stack.append(other)
    return SteinerTree(kept, nodes=(anchor,))


def prune_redundant_leaves(
    context: QueryContext, tree: SteinerTree
) -> SteinerTree:
    """Iteratively strip leaves whose removal keeps all labels covered.

    A leaf is removable when it is not the sole tree node carrying some
    query label.  Strictly decreases weight, never breaks feasibility;
    fixpoint is reached in ``O(|tree|)`` rounds (each removes >= 1 node).
    """
    if not tree.edges:
        return tree
    node_masks = context.node_masks
    degree: Dict[int, int] = tree.degree_map()
    adjacency: Dict[int, List[Tuple[int, float]]] = {n: [] for n in tree.nodes}
    for u, v, w in tree.edges:
        adjacency[u].append((v, w))
        adjacency[v].append((u, w))

    # How many remaining tree nodes carry each query label.
    carriers = [0] * context.k
    for node in tree.nodes:
        for bit in iter_bits(node_masks[node]):
            carriers[bit] += 1

    removed: Set[int] = set()
    removed_edges: Set[Tuple[int, int]] = set()
    frontier = [n for n, d in degree.items() if d == 1]
    while frontier:
        node = frontier.pop()
        if node in removed or degree[node] != 1:
            continue
        mask = node_masks[node]
        if any(carriers[bit] <= 1 for bit in iter_bits(mask)):
            continue  # sole carrier of a needed label: keep
        if len(removed) == len(tree.nodes) - 1:
            break  # never remove the final node
        removed.add(node)
        for bit in iter_bits(mask):
            carriers[bit] -= 1
        for neighbor, _ in adjacency[node]:
            if neighbor in removed:
                continue
            removed_edges.add((min(node, neighbor), max(node, neighbor)))
            degree[neighbor] -= 1
            degree[node] -= 1
            if degree[neighbor] == 1:
                frontier.append(neighbor)
            break  # a leaf has exactly one live neighbor

    if not removed:
        return tree
    kept_edges = [
        (u, v, w)
        for u, v, w in tree.edges
        if (u, v) not in removed_edges
    ]
    kept_nodes = [n for n in tree.nodes if n not in removed]
    if not kept_edges:
        # Tree collapsed to one node; pick any survivor (there is
        # exactly one, by the degree bookkeeping).
        return SteinerTree.single_node(kept_nodes[0])
    return SteinerTree(kept_edges)
