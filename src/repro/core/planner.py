"""Automatic algorithm selection (``algorithm="auto"``).

A downstream user should not need the paper's Section 5 to pick a
solver.  The planner encodes the decision tree the experiments justify:

1. ``k = 1`` — any solver answers instantly; use Basic (no table cost).
2. zero-weight edges — the PrunedDP family's Theorem 1 precondition
   fails; fall back to Basic (still progressive, still exact).
3. ``k`` within the AllPaths table budget — PrunedDP++ (the paper's
   fastest throughout Figs 4-16).
4. larger ``k`` — PrunedDP+ (one-label bound needs no ``2^k`` tables).

:func:`plan_algorithm` returns the name plus a human-readable reason
(surfaced by the CLI); :func:`repro.core.solver.solve_gst` accepts
``algorithm="auto"`` and delegates here.
"""

from __future__ import annotations

from typing import Hashable, Sequence, Tuple

from ..graph.graph import Graph
from .allpaths import MAX_ALLPATHS_LABELS

__all__ = ["plan_algorithm"]


def plan_algorithm(
    graph: Graph, labels: Sequence[Hashable]
) -> Tuple[str, str]:
    """Choose a solver for this (graph, query) pair.

    Returns ``(algorithm_name, reason)``.
    """
    k = len(set(labels))
    if k <= 1:
        return (
            "basic",
            "single-label query: any group member answers at weight 0",
        )
    if graph.num_edges > 0 and graph.min_edge_weight <= 0.0:
        return (
            "basic",
            "graph has non-positive edge weights: Theorem 1 (optimal-tree "
            "decomposition) does not apply, pruned solvers are unsound",
        )
    if k <= MAX_ALLPATHS_LABELS:
        return (
            "pruneddp++",
            "tour-based A* dominates at this query size (paper Figs 4-16)",
        )
    return (
        "pruneddp+",
        f"k={k} exceeds the AllPaths table budget "
        f"({MAX_ALLPATHS_LABELS}); one-label A* has no 2^k table",
    )
