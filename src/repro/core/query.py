"""GST query objects and validation.

A query is an ordered set of labels ``P``.  Internally every solver works
with *label indexes* ``0..k-1`` packed into an int bitmask, so the query
object owns the label→index mapping used throughout a solve.
"""

from __future__ import annotations

from typing import Hashable, Iterable, List, Tuple

from ..errors import InfeasibleQueryError, QueryError
from ..graph.graph import Graph

__all__ = ["GSTQuery", "MAX_QUERY_LABELS"]

# Bitmask DP over label subsets: 2^k states per node.  20 labels is far
# beyond anything the paper runs (knum <= 10) but keeps the door open.
MAX_QUERY_LABELS = 20


class GSTQuery:
    """An ordered, duplicate-free set of query labels.

    >>> q = GSTQuery(["db", "ml"])
    >>> q.k
    2
    >>> q.full_mask
    3
    >>> q.labels_of_mask(0b10)
    ('ml',)
    """

    __slots__ = ("labels", "_index")

    def __init__(self, labels: Iterable[Hashable]) -> None:
        labels = tuple(labels)
        if not labels:
            raise QueryError("query must contain at least one label")
        if len(set(labels)) != len(labels):
            raise QueryError(f"query labels must be unique, got {labels!r}")
        if len(labels) > MAX_QUERY_LABELS:
            raise QueryError(
                f"query has {len(labels)} labels; the bitmask DP supports "
                f"at most {MAX_QUERY_LABELS}"
            )
        self.labels: Tuple[Hashable, ...] = labels
        self._index = {label: i for i, label in enumerate(labels)}

    # ------------------------------------------------------------------
    @property
    def k(self) -> int:
        """Number of query labels (``knum`` in the paper)."""
        return len(self.labels)

    @property
    def full_mask(self) -> int:
        """Bitmask with all ``k`` label bits set (the goal set ``P``)."""
        return (1 << len(self.labels)) - 1

    def index_of(self, label: Hashable) -> int:
        """Index of a query label (raises ``QueryError`` for foreign labels)."""
        try:
            return self._index[label]
        except KeyError:
            raise QueryError(f"label {label!r} is not part of this query") from None

    def mask_of(self, labels: Iterable[Hashable]) -> int:
        """Bitmask of a subset of query labels."""
        mask = 0
        for label in labels:
            mask |= 1 << self.index_of(label)
        return mask

    def labels_of_mask(self, mask: int) -> Tuple[Hashable, ...]:
        """The labels selected by ``mask`` (in query order)."""
        return tuple(
            label for i, label in enumerate(self.labels) if mask >> i & 1
        )

    def node_mask(self, graph: Graph, node: int) -> int:
        """Bitmask of the query labels carried by ``node``."""
        node_labels = graph.labels_of(node)
        mask = 0
        for i, label in enumerate(self.labels):
            if label in node_labels:
                mask |= 1 << i
        return mask

    # ------------------------------------------------------------------
    def groups(self, graph: Graph) -> List[List[int]]:
        """Node groups ``V_p`` for each query label, validating coverage.

        Raises :class:`InfeasibleQueryError` if any label is missing from
        the graph entirely (no tree can ever cover it).
        """
        groups: List[List[int]] = []
        for label in self.labels:
            members = list(graph.nodes_with_label(label))
            if not members:
                raise InfeasibleQueryError(
                    f"query label {label!r} occurs on no node of the graph"
                )
            groups.append(members)
        return groups

    def __repr__(self) -> str:
        return f"GSTQuery({list(self.labels)!r})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, GSTQuery) and self.labels == other.labels

    def __hash__(self) -> int:
        return hash(self.labels)
