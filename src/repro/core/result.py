"""Result and progress-reporting types shared by all solvers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, List, Optional, Tuple

from .tree import SteinerTree

__all__ = ["ProgressPoint", "SearchStats", "GSTResult"]

INF = float("inf")

# Tolerance for lower-bound/incumbent comparisons.  Float rounding in
# the A* bound paths (halved tour bounds, path-max raising) can push a
# lower bound a few ulps past the incumbent; a crossing within this
# relative tolerance is rounding noise and is clamped to the incumbent.
# A crossing *beyond* it means the bound itself cannot be trusted, so it
# is discarded (reset to 0.0 — "nothing proven") rather than laundered
# into a false optimality certificate.
_BOUND_TOL = 1e-9


def _clamped_lower_bound(lower_bound: float, weight: float) -> float:
    """``lower_bound`` made sound against ``weight`` (never crossing it)."""
    if lower_bound < 0.0:
        return 0.0
    if lower_bound <= weight:
        return lower_bound
    if weight < INF and lower_bound <= weight + _BOUND_TOL * max(1.0, abs(weight)):
        return weight
    return 0.0


# Rough per-state footprint used to translate peak live-state counts into
# the byte figures the paper plots (Figs 8/9).  A state costs a queue
# entry (priority tuple + key tuple + heap slot + position-map slot) or a
# store entry (cost + backpointer) — ~100 bytes in CPython either way.
BYTES_PER_STATE = 100


@dataclass(frozen=True)
class ProgressPoint:
    """One progressive-report event: the paper's (UB, LB) pair over time.

    ``ratio`` is the proven approximation guarantee ``UB / LB`` of the
    feasible solution held at ``elapsed`` seconds (``inf`` before the
    first lower bound, ``1.0`` at proven optimality).
    """

    elapsed: float
    best_weight: float
    lower_bound: float

    def __post_init__(self) -> None:
        # Report-time enforcement of the non-crossing invariant: no
        # progress event may ever claim LB > UB (the certifier asserts
        # this on every trace).
        clamped = _clamped_lower_bound(self.lower_bound, self.best_weight)
        if clamped != self.lower_bound:
            object.__setattr__(self, "lower_bound", clamped)

    @property
    def ratio(self) -> float:
        if self.best_weight == INF:
            return INF
        if self.lower_bound <= 0.0:
            return INF if self.best_weight > 0.0 else 1.0
        return max(1.0, self.best_weight / self.lower_bound)


@dataclass
class SearchStats:
    """Counters a solve accumulates; the basis of the memory experiments."""

    states_popped: int = 0
    states_pushed: int = 0
    states_expanded: int = 0
    # States rejected by the bound test (f >= incumbent) or the
    # PrunedDP half-weight rule before doing any work.
    states_pruned: int = 0
    # Times the incumbent (best feasible tree) strictly improved.
    incumbent_improvements: int = 0
    merges_performed: int = 0
    edges_grown: int = 0
    feasible_built: int = 0
    reopened: int = 0
    peak_queue_size: int = 0
    peak_store_size: int = 0
    peak_live_states: int = 0
    table_entries: int = 0
    init_seconds: float = 0.0
    total_seconds: float = 0.0
    feasible_seconds: float = 0.0
    # True when a cooperative cancellation token stopped the search
    # before it could finish (the result is then the best-so-far answer).
    cancelled: bool = False

    @property
    def estimated_bytes(self) -> int:
        """Approximate peak working-set size in bytes.

        Live DP states dominate (the paper's own argument for why its
        memory and time curves look alike); PrunedDP++ adds the
        ``O(2^k k^2)`` route tables.
        """
        return self.peak_live_states * BYTES_PER_STATE + self.table_entries * 8

    def to_dict(self) -> dict:
        """JSON-serializable snapshot of every counter (telemetry)."""
        return {
            "states_popped": self.states_popped,
            "states_pushed": self.states_pushed,
            "states_expanded": self.states_expanded,
            "states_pruned": self.states_pruned,
            "incumbent_improvements": self.incumbent_improvements,
            "merges_performed": self.merges_performed,
            "edges_grown": self.edges_grown,
            "feasible_built": self.feasible_built,
            "reopened": self.reopened,
            "peak_queue_size": self.peak_queue_size,
            "peak_store_size": self.peak_store_size,
            "peak_live_states": self.peak_live_states,
            "table_entries": self.table_entries,
            "estimated_bytes": self.estimated_bytes,
            "init_seconds": self.init_seconds,
            "total_seconds": self.total_seconds,
            "feasible_seconds": self.feasible_seconds,
            "cancelled": self.cancelled,
        }


@dataclass
class GSTResult:
    """Outcome of a (possibly interrupted) GST solve.

    ``optimal`` is True only when optimality was *proven* (a goal state
    was popped, the queue drained, or the lower bound met the upper
    bound).  ``ratio`` is always a sound guarantee: ``weight`` is within
    that factor of the true optimum.
    """

    algorithm: str
    labels: Tuple[Hashable, ...]
    tree: Optional[SteinerTree]
    weight: float
    lower_bound: float
    optimal: bool
    stats: SearchStats
    trace: List[ProgressPoint] = field(default_factory=list)

    def __post_init__(self) -> None:
        # Edge weights are validated non-negative, so a weight-0.0
        # feasible tree (a single node carrying every query label, or a
        # zero-weight component) is trivially optimal: nothing can cost
        # less.  Normalizing here fixes every producer at once — the
        # engine, the baselines, and cache rehydration.
        if self.tree is not None and self.weight == 0.0:
            self.optimal = True
        if self.optimal and self.weight < INF:
            self.lower_bound = self.weight
        else:
            self.lower_bound = _clamped_lower_bound(self.lower_bound, self.weight)

    @property
    def ratio(self) -> float:
        """Proven approximation ratio of ``weight`` (1.0 when optimal)."""
        if self.optimal:
            return 1.0
        if self.weight == INF:
            return INF
        if self.lower_bound <= 0.0:
            return INF if self.weight > 0.0 else 1.0
        return max(1.0, self.weight / self.lower_bound)

    def time_to_ratio(self, target: float) -> Optional[float]:
        """Seconds until the proven ratio first dropped to ``target``.

        This is how the paper's Figures 4-9 are read: one curve point
        per (algorithm, target-ratio).  Returns ``None`` if the solve
        never achieved the target.
        """
        for point in self.trace:
            if point.ratio <= target + 1e-12:
                return point.elapsed
        return None

    def to_dict(self) -> dict:
        """JSON-serializable record of the solve (experiment logging).

        Tree edges are included verbatim; ``inf`` weights become the
        string ``"inf"`` so the dict survives ``json.dumps`` round
        trips losslessly.
        """
        def _num(value: float):
            return "inf" if value == INF else value

        return {
            "algorithm": self.algorithm,
            "labels": [str(label) for label in self.labels],
            "weight": _num(self.weight),
            "lower_bound": _num(self.lower_bound),
            "optimal": self.optimal,
            "ratio": _num(self.ratio),
            "tree": {
                "nodes": sorted(self.tree.nodes),
                "edges": [[u, v, w] for u, v, w in self.tree.edges],
            }
            if self.tree is not None
            else None,
            "stats": self.stats.to_dict(),
            "trace": [
                [p.elapsed, _num(p.best_weight), p.lower_bound]
                for p in self.trace
            ],
        }

    def __repr__(self) -> str:
        status = "optimal" if self.optimal else f"ratio<={self.ratio:.3f}"
        return (
            f"GSTResult({self.algorithm}, weight={self.weight:g}, {status}, "
            f"popped={self.stats.states_popped})"
        )
