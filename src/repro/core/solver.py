"""One-call facade: :func:`solve_gst`.

Downstream users (and the applications in :mod:`repro.apps`) usually
just want "the best tree covering these labels, within this budget".
This module maps algorithm names to solver classes and delegates the
actual execution to the query service
(:class:`repro.service.GraphIndex`): each call builds a transient index
over the graph — or adopts the caller's ``distance_cache`` — and runs
the query through the same staged path batch serving uses.  Multi-query
workloads should build one :class:`~repro.service.GraphIndex` (or
:class:`~repro.service.QueryExecutor`) and reuse it; this facade is the
one-shot convenience wrapper.

The disconnected-graph case of the paper's preliminaries is handled by
the full-graph search itself: per-label virtual-node Dijkstras confine
feasible roots to covering components, and the engine's pruning keeps
dead components' seed states from mattering — the best answer over all
covering components comes back with original node ids.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, Iterable, Optional

from ..graph.graph import Graph
from .algorithms import (
    BasicSolver,
    PrunedDPPlusPlusSolver,
    PrunedDPPlusSolver,
    PrunedDPSolver,
)
from .budget import Budget
from .dpbf import DPBFSolver
from .result import GSTResult

__all__ = ["solve_gst", "ALGORITHMS", "default_algorithm"]

ALGORITHMS: Dict[str, type] = {
    "basic": BasicSolver,
    "pruneddp": PrunedDPSolver,
    "pruneddp+": PrunedDPPlusSolver,
    "pruneddp++": PrunedDPPlusPlusSolver,
    "dpbf": DPBFSolver,
}


def default_algorithm() -> str:
    """The paper's best algorithm — what you get when you don't choose."""
    return "pruneddp++"


def solve_gst(
    graph: Graph,
    labels: Iterable[Hashable],
    *,
    algorithm: str = "pruneddp++",
    split_components: bool = True,
    budget: Optional[Budget] = None,
    on_progress: Optional[Callable] = None,
    **solver_kwargs,
) -> GSTResult:
    """Find the minimum-weight connected tree covering ``labels``.

    Parameters
    ----------
    graph:
        The labelled graph to search.
    labels:
        The query label set ``P``.
    algorithm:
        One of ``basic``, ``pruneddp``, ``pruneddp+``, ``pruneddp++``
        (default, the paper's fastest), ``dpbf`` (the prior state of
        the art, non-progressive), or ``auto`` to let the planner pick
        (see :mod:`repro.core.planner`).
    split_components:
        Kept for backwards compatibility; the service-backed path
        always searches the full graph (correct on disconnected graphs
        — see the module docstring), so this flag no longer changes
        the answer.
    budget:
        A :class:`~repro.core.budget.Budget` bundling ``time_limit`` /
        ``epsilon`` / ``max_states`` / ``on_limit``; the loose keyword
        equivalents below remain accepted and win over its fields.
    on_progress:
        Called with a :class:`~repro.core.result.ProgressPoint` each
        time the incumbent improves — the paper's anytime UB/LB stream.
        Successive points are monotone: ``best_weight`` never
        increases, ``lower_bound`` never decreases.  The
        non-progressive ``dpbf`` emits a single terminal point.
    solver_kwargs:
        Forwarded to the solver: ``time_limit``, ``epsilon``,
        ``max_states``, ``on_event``, ``distance_cache``, ...

    Raises
    ------
    InfeasibleQueryError
        When no connected component covers every label.
    """
    from ..service.index import GraphIndex

    labels = tuple(labels)
    cache = solver_kwargs.pop("distance_cache", None)
    if on_progress is not None:
        solver_kwargs["on_progress"] = on_progress
    index = GraphIndex(graph, cache=cache, max_cached_labels=None)
    return index.solve(
        labels, algorithm=algorithm, budget=budget, **solver_kwargs
    )
