"""One-call facade: :func:`solve_gst`.

Downstream users (and the applications in :mod:`repro.apps`) usually
just want "the best tree covering these labels, within this budget".
This module maps algorithm names to solver classes and handles the
disconnected-graph case the paper's preliminaries describe (solve per
covering component, keep the best answer).
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Optional, Type

from ..errors import InfeasibleQueryError
from ..graph.graph import Graph
from ..graph.components import components_covering_labels, is_connected
from .algorithms import (
    BasicSolver,
    PrunedDPPlusPlusSolver,
    PrunedDPPlusSolver,
    PrunedDPSolver,
    _ProgressiveSolverBase,
)
from .dpbf import DPBFSolver
from .result import GSTResult
from .tree import SteinerTree

__all__ = ["solve_gst", "ALGORITHMS", "default_algorithm"]

ALGORITHMS: Dict[str, type] = {
    "basic": BasicSolver,
    "pruneddp": PrunedDPSolver,
    "pruneddp+": PrunedDPPlusSolver,
    "pruneddp++": PrunedDPPlusPlusSolver,
    "dpbf": DPBFSolver,
}


def default_algorithm() -> str:
    """The paper's best algorithm — what you get when you don't choose."""
    return "pruneddp++"


def solve_gst(
    graph: Graph,
    labels: Iterable[Hashable],
    *,
    algorithm: str = "pruneddp++",
    split_components: bool = True,
    **solver_kwargs,
) -> GSTResult:
    """Find the minimum-weight connected tree covering ``labels``.

    Parameters
    ----------
    graph:
        The labelled graph to search.
    labels:
        The query label set ``P``.
    algorithm:
        One of ``basic``, ``pruneddp``, ``pruneddp+``, ``pruneddp++``
        (default, the paper's fastest), ``dpbf`` (the prior state of
        the art, non-progressive), or ``auto`` to let the planner pick
        (see :mod:`repro.core.planner`).
    split_components:
        On a disconnected graph, solve each covering component
        separately and keep the best (the paper's preliminaries).  With
        ``False`` the solver runs on the full graph directly, which is
        also correct but explores dead components' seed states.
    solver_kwargs:
        Forwarded to the solver: ``time_limit``, ``epsilon``,
        ``max_states``, ``on_progress``, ...

    Raises
    ------
    InfeasibleQueryError
        When no connected component covers every label.
    """
    labels = tuple(labels)
    key = algorithm.lower()
    if key == "auto":
        from .planner import plan_algorithm

        key, _ = plan_algorithm(graph, labels)
    try:
        solver_cls = ALGORITHMS[key]
    except KeyError:
        raise ValueError(
            f"unknown algorithm {algorithm!r}; choose from "
            f"{sorted(ALGORITHMS) + ['auto']}"
        ) from None
    if split_components and not is_connected(graph):
        return _solve_per_component(graph, labels, solver_cls, solver_kwargs)
    return solver_cls(graph, labels, **solver_kwargs).solve()


def _solve_per_component(
    graph: Graph,
    labels,
    solver_cls: type,
    solver_kwargs: dict,
) -> GSTResult:
    # A distance cache is bound to the full graph's node ids; component
    # subgraphs renumber nodes, so the cache must not leak into them.
    solver_kwargs = {
        k: v for k, v in solver_kwargs.items() if k != "distance_cache"
    }
    components = components_covering_labels(graph, labels)
    if not components:
        raise InfeasibleQueryError(
            f"no connected component covers every query label {list(labels)!r}"
        )
    best: Optional[GSTResult] = None
    for nodes in components:
        subgraph, mapping = graph.subgraph(nodes)
        result = solver_cls(subgraph, labels, **solver_kwargs).solve()
        result = _translate_result(result, mapping, subgraph)
        if best is None or result.weight < best.weight:
            best = result
    assert best is not None
    return best


def _translate_result(result: GSTResult, mapping: Dict[int, int], subgraph) -> GSTResult:
    """Map a component-local result's tree back to original node ids."""
    if result.tree is None:
        return result
    reverse = {new: old for old, new in mapping.items()}
    edges = [(reverse[u], reverse[v], w) for u, v, w in result.tree.edges]
    nodes = [reverse[n] for n in result.tree.nodes]
    result.tree = SteinerTree(edges, nodes=nodes)
    return result
