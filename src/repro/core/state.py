"""DP state bookkeeping for the parameterized Steiner tree algorithms.

A state is a pair ``(v, X)`` — node id plus bitmask of covered query
labels.  :class:`StateStore` is the set ``D`` of the paper: the states
whose optimal weight has been settled, together with *backpointers*
recording how each state's tree was derived so the actual Steiner tree
can be reconstructed:

* ``('seed', label_index)`` — initial state ``(v, {p})`` with weight 0;
* ``('grow', parent_node, weight)`` — tree of ``(v, X)`` is the tree of
  ``(parent_node, X)`` plus the edge ``(v, parent_node)``;
* ``('merge', mask_a, mask_b)`` — tree of ``(v, X)`` is the union of the
  trees of ``(v, mask_a)`` and ``(v, mask_b)``.

The store also answers the queries the engines hammer in their inner
loops: "which settled masks exist at node v" (tree merging) and "is the
complement of X settled at v" (PrunedDP's complementary-pair merge).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

__all__ = ["StateStore", "iter_bits", "popcount", "pack_state", "unpack_state"]

Backpointer = Tuple  # ('seed', i) | ('grow', u, w) | ('merge', m1, m2)

# Default width of the mask field in a packed state key.  32 bits is far
# above any real query (MAX_ALLPATHS_LABELS is 14 and the paper's k
# tops out well below 32), so the default keeps packing transparent for
# callers that construct a store without announcing their k.
DEFAULT_KEY_BITS = 32


def pack_state(node: int, mask: int, key_bits: int = DEFAULT_KEY_BITS) -> int:
    """Pack ``(node, mask)`` into one int: ``node << key_bits | mask``.

    The engines key their queues, settled sets, and bound caches by
    packed ints instead of ``(node, mask)`` tuples — one small-int hash
    instead of a tuple allocation + composite hash per touch.  ``mask``
    must fit in ``key_bits`` bits (the engines pass ``key_bits =
    len(query)``, the exact mask width).
    """
    return (node << key_bits) | mask


def unpack_state(key: int, key_bits: int = DEFAULT_KEY_BITS) -> Tuple[int, int]:
    """Inverse of :func:`pack_state`: recover ``(node, mask)``."""
    return key >> key_bits, key & ((1 << key_bits) - 1)


def iter_bits(mask: int) -> Iterator[int]:
    """Yield the set bit positions of ``mask`` in increasing order."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


try:
    popcount = int.bit_count  # type: ignore[attr-defined]  # Python >= 3.10
except AttributeError:  # pragma: no cover - Python 3.9 fallback

    def popcount(mask: int) -> int:
        return bin(mask).count("1")


class StateStore:
    """Settled DP states (the paper's ``D``) with tree reconstruction."""

    __slots__ = ("_cost", "_backpointer", "_size", "_peak", "key_bits")

    def __init__(self, num_nodes: int, key_bits: int = DEFAULT_KEY_BITS) -> None:
        # Per-node dicts keep the merge scan ("all settled masks at v")
        # allocation-free and O(#masks at v).  Backpointers are keyed by
        # packed ``node << key_bits | mask`` ints; engines that share the
        # store's ``key_bits`` can address ``_backpointer`` without
        # building tuples.
        self._cost: List[Dict[int, float]] = [dict() for _ in range(num_nodes)]
        self._backpointer: Dict[int, Backpointer] = {}
        self._size = 0
        self._peak = 0
        self.key_bits = key_bits

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def settle(self, node: int, mask: int, cost: float, backpointer: Backpointer) -> None:
        """Record ``(node, mask)`` as settled with its derivation."""
        bucket = self._cost[node]
        if mask not in bucket:
            self._size += 1
            if self._size > self._peak:
                self._peak = self._size
        bucket[mask] = cost
        self._backpointer[(node << self.key_bits) | mask] = backpointer

    def reopen(self, node: int, mask: int) -> None:
        """Remove a settled state (safety net for inconsistent bounds)."""
        if self._cost[node].pop(mask, None) is not None:
            self._size -= 1
        self._backpointer.pop((node << self.key_bits) | mask, None)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def contains(self, node: int, mask: int) -> bool:
        return mask in self._cost[node]

    def cost(self, node: int, mask: int) -> float:
        """Settled cost; raises ``KeyError`` if not settled."""
        return self._cost[node][mask]

    def cost_or_none(self, node: int, mask: int) -> Optional[float]:
        return self._cost[node].get(mask)

    def masks_at(self, node: int) -> Dict[int, float]:
        """All settled ``mask -> cost`` entries at ``node`` (live view)."""
        return self._cost[node]

    def backpointer(self, node: int, mask: int) -> Backpointer:
        return self._backpointer[(node << self.key_bits) | mask]

    def __len__(self) -> int:
        return self._size

    def items(self) -> Iterator[Tuple[int, int, float, Backpointer]]:
        """Yield every settled ``(node, mask, cost, backpointer)``.

        Iteration order follows node id, then the per-node dict's
        insertion order — deterministic for a deterministic search, which
        keeps engine checkpoints byte-stable across identical runs.
        """
        key_bits = self.key_bits
        for node, bucket in enumerate(self._cost):
            for mask, cost in bucket.items():
                yield node, mask, cost, self._backpointer[(node << key_bits) | mask]

    @property
    def peak_size(self) -> int:
        """High-water mark of settled states (memory accounting)."""
        return self._peak

    # ------------------------------------------------------------------
    # Tree reconstruction
    # ------------------------------------------------------------------
    def tree_edges(
        self,
        node: int,
        mask: int,
        override: Optional[Tuple[int, int, Backpointer]] = None,
    ) -> List[Tuple[int, int, float]]:
        """Edges of the tree recorded for state ``(node, mask)``.

        ``override`` lets the caller reconstruct a *pending* (not yet
        settled) state: it supplies ``(node, mask, backpointer)`` for the
        root of the derivation while all referenced sub-states must be
        settled — which the engines guarantee, since a state is only
        generated from settled parents.
        """
        edges: List[Tuple[int, int, float]] = []
        if override is not None:
            stack: List[Tuple[int, int, Optional[Backpointer]]] = [
                (override[0], override[1], override[2])
            ]
        else:
            stack = [(node, mask, None)]
        key_bits = self.key_bits
        while stack:
            v, m, bp = stack.pop()
            if bp is None:
                bp = self._backpointer[(v << key_bits) | m]
            kind = bp[0]
            if kind == "seed":
                continue
            if kind == "grow":
                _, parent, weight = bp
                edges.append((v, parent, weight))
                stack.append((parent, m, None))
            elif kind == "merge":
                _, mask_a, mask_b = bp
                stack.append((v, mask_a, None))
                stack.append((v, mask_b, None))
            else:  # pragma: no cover - defensive
                raise ValueError(f"unknown backpointer kind {kind!r}")
        return edges
