"""Classic (terminal-based) Steiner tree on top of the GST machinery.

The parameterized DP the paper builds on "is a generalization of the
well-known Dreyfus-Wagner algorithm for the traditional Steiner tree
problem" — conversely, the traditional problem is the GST instance
where every terminal forms its own singleton group.  This module
exposes that reduction as a first-class API so the package doubles as
a Steiner-tree solver.
"""

from __future__ import annotations

from typing import List, Sequence

from ..errors import QueryError
from ..graph.graph import Graph
from .result import GSTResult
from .solver import solve_gst

__all__ = ["steiner_tree", "steiner_tree_weight"]

_TERMINAL_PREFIX = "__terminal__"


def steiner_tree(
    graph: Graph,
    terminals: Sequence[int],
    *,
    algorithm: str = "pruneddp++",
    **solver_kwargs,
) -> GSTResult:
    """Minimum-weight tree connecting the given terminal *nodes*.

    Reduction: attach a unique private label to each terminal and solve
    the GST query over those labels (each group is a singleton, so a
    covering tree is exactly a connecting tree).  The private labels
    are attached to a shallow copy; the input graph is not modified.

    Duplicate terminals are collapsed; a single terminal yields the
    weight-0 single-node tree.
    """
    unique = list(dict.fromkeys(terminals))
    if not unique:
        raise QueryError("at least one terminal is required")
    marked = graph.copy()
    labels: List[str] = []
    for i, node in enumerate(unique):
        label = f"{_TERMINAL_PREFIX}{i}"
        marked.add_labels(node, [label])  # validates the node id
        labels.append(label)
    result = solve_gst(marked, labels, algorithm=algorithm, **solver_kwargs)
    # Trees reference node ids only, which are shared with `graph`;
    # re-validate the tree against the original to be safe.
    if result.tree is not None:
        result.tree.validate(graph)
        missing = [t for t in unique if t not in result.tree.nodes]
        assert not missing, f"terminals not connected: {missing}"
    result.labels = tuple(unique)  # report terminals, not private labels
    return result


def steiner_tree_weight(graph: Graph, terminals: Sequence[int]) -> float:
    """Just the optimal connection weight."""
    return steiner_tree(graph, terminals).weight
