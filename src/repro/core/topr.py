"""Top-r GST search: the paper's approximate remark, plus an exact mode.

**Approximate** (:func:`top_r_trees`) — the paper's Section 4.2 remark:
its progressive algorithms "report many near-optimal solutions during
execution, and thus we can select the best r results among them as the
approximate top-r results".  We run any progressive solver with a
feasible-tree collector installed and return the ``r`` lightest
distinct covering trees it materialized.  The first is the exact top-1
(when the solve completed); the rest are near-optimal candidates.

**Exact** (:func:`exact_top_r_trees`) — the paper points at Kimelfeld &
Sagiv's enumeration framework ([21]) without spelling it out; we
implement the classic Lawler-style *exclusion branching* instead, which
is exact for distinct trees: maintain a priority queue of subproblems,
each defined by a set of forbidden edges (and, for single-node answers,
forbidden nodes).  Popping the lightest subproblem winner yields the
next result; it then spawns one child subproblem per element of the
winner (forbid that element too).  Correctness invariant: any tree not
yet emitted differs from each emitted tree in at least one edge (or is
a different single node), so it survives in some queued subproblem;
subproblem winners are true minima of their subspaces, hence the
global pop order is the true top-r order.  Cost: one full GST solve
per generated subproblem — ``O(r · |T*|)`` solves.
"""

from __future__ import annotations

import heapq
from typing import Dict, FrozenSet, Hashable, Iterable, List, Optional, Set, Tuple, Type

from ..errors import InfeasibleQueryError
from ..graph.graph import Graph
from .algorithms import PrunedDPPlusPlusSolver, _ProgressiveSolverBase
from .tree import SteinerTree

__all__ = ["top_r_trees", "exact_top_r_trees"]


def top_r_trees(
    graph: Graph,
    labels: Iterable[Hashable],
    r: int,
    *,
    solver_cls: Type[_ProgressiveSolverBase] = PrunedDPPlusPlusSolver,
    **solver_kwargs,
) -> List[SteinerTree]:
    """The ``r`` lightest distinct covering trees seen during a solve.

    Sorted by weight; the first is the proven optimum when the solve
    completed.  Fewer than ``r`` trees are returned if the search did
    not encounter that many distinct feasible solutions.  Extra keyword
    arguments are forwarded to the solver (e.g. ``time_limit``).
    """
    if r <= 0:
        raise ValueError("r must be positive")
    collected: Dict[Tuple, SteinerTree] = {}

    def collect(tree: SteinerTree) -> None:
        key = (tree.edges, tree.nodes)
        if key not in collected:
            collected[key] = tree

    solver = solver_cls(graph, labels, on_feasible=collect, **solver_kwargs)
    result = solver.solve()
    if result.tree is not None:
        collect(result.tree)
    trees = sorted(collected.values(), key=lambda t: (t.weight, t.edges))
    return trees[:r]


# ----------------------------------------------------------------------
# Exact top-r via exclusion branching
# ----------------------------------------------------------------------
EdgeKey = Tuple[int, int]


def _restricted_graph(
    graph: Graph,
    forbidden_edges: FrozenSet[EdgeKey],
    forbidden_nodes: FrozenSet[int],
) -> Graph:
    """Copy of ``graph`` without the forbidden elements.

    Node ids stay stable: a forbidden node keeps its slot but loses its
    labels and edges, so trees of the restricted graph map back 1:1.
    """
    restricted = Graph()
    for node in graph.nodes():
        labels = () if node in forbidden_nodes else graph.labels_of(node)
        restricted.add_node(labels=labels)
    for u, v, w in graph.edges():
        if u in forbidden_nodes or v in forbidden_nodes:
            continue
        if (u, v) in forbidden_edges:
            continue
        restricted.add_edge(u, v, w)
    return restricted


def exact_top_r_trees(
    graph: Graph,
    labels: Iterable[Hashable],
    r: int,
    *,
    solver_cls: Optional[Type[_ProgressiveSolverBase]] = None,
    max_subproblems: int = 10_000,
    **solver_kwargs,
) -> List[SteinerTree]:
    """The true ``r`` lightest distinct *minimal* covering trees.

    Semantics: answers are **reduced** trees — no proper subtree covers
    the query (standard keyword-search semantics: a tree carrying a
    redundant branch is a worse duplicate of a smaller answer, not a
    new answer).  Under strictly positive edge weights every subspace
    optimum is automatically reduced, and the exclusion branching
    enumerates exactly the reduced covering trees in non-decreasing
    weight order (see the module docstring for the invariant).

    Each emitted tree is the proven optimum of its subspace, so the
    sequence is globally correct — unlike :func:`top_r_trees`, at the
    price of up to ``r · |T|`` full solves.  ``max_subproblems`` bounds
    the enumeration as a safety valve (raising it is safe, just
    slower).  Prefer solvers that require positive weights (the default
    does): zero-weight edges would let non-reduced optima slip in.
    """
    if r <= 0:
        raise ValueError("r must be positive")
    labels = tuple(labels)
    if solver_cls is None:
        # PrunedDP+ by default: each subproblem runs on a *different*
        # restricted graph, so PrunedDP++'s 2^k route tables cannot be
        # reused across solves and their rebuild cost dominates (~3x
        # slower end-to-end in the top-r benchmark).
        from .algorithms import PrunedDPPlusSolver

        solver_cls = PrunedDPPlusSolver

    def solve_subspace(
        forbidden_edges: FrozenSet[EdgeKey], forbidden_nodes: FrozenSet[int]
    ) -> Optional[SteinerTree]:
        restricted = _restricted_graph(graph, forbidden_edges, forbidden_nodes)
        try:
            result = solver_cls(restricted, labels, **solver_kwargs).solve()
        except InfeasibleQueryError:
            return None
        if result.tree is None or not result.optimal:
            return None
        # Re-weight edges against the original graph (weights are equal
        # by construction; this also validates the mapping).
        return result.tree

    results: List[SteinerTree] = []
    emitted: Set[Tuple] = set()
    explored: Set[Tuple[FrozenSet[EdgeKey], FrozenSet[int]]] = set()
    counter = 0  # heap tiebreaker
    queue: List[Tuple[float, int, SteinerTree, FrozenSet[EdgeKey], FrozenSet[int]]] = []

    first = solve_subspace(frozenset(), frozenset())
    if first is None:
        raise InfeasibleQueryError(
            f"no connected tree covers labels {list(labels)!r}"
        )
    heapq.heappush(queue, (first.weight, counter, first, frozenset(), frozenset()))
    subproblems = 1

    while queue and len(results) < r and subproblems < max_subproblems:
        weight, _, tree, forbidden_edges, forbidden_nodes = heapq.heappop(queue)
        key = (tree.edges, tree.nodes)
        is_new = key not in emitted
        if is_new:
            emitted.add(key)
            results.append(tree)
            if len(results) >= r:
                break
        # Spawn children: exclude each element of this winner in turn.
        # (Also done for duplicate winners — the next-best tree of this
        # subspace hides behind the duplicate.)
        children: List[Tuple[FrozenSet[EdgeKey], FrozenSet[int]]] = []
        if tree.edges:
            for u, v, _ in tree.edges:
                children.append(
                    (forbidden_edges | {(u, v)}, forbidden_nodes)
                )
        else:
            (node,) = tree.nodes
            children.append((forbidden_edges, forbidden_nodes | {node}))
        for child in children:
            if child in explored:
                continue
            explored.add(child)
            subproblems += 1
            winner = solve_subspace(*child)
            if winner is not None:
                counter += 1
                heapq.heappush(
                    queue, (winner.weight, counter, winner, child[0], child[1])
                )
            if subproblems >= max_subproblems:
                break

    return results
