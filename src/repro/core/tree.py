"""Steiner tree result objects.

A :class:`SteinerTree` is an immutable set of weighted edges forming a
tree (or a single node, for queries satisfiable at one vertex).  It is
the value every solver and baseline returns, and the thing the keyword
search / team formation applications render back into domain objects.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, Iterable, List, Set, Tuple

from ..errors import GraphError
from ..graph.graph import Graph
from ..graph.mst import is_tree

__all__ = ["SteinerTree"]

EdgeTuple = Tuple[int, int, float]


class SteinerTree:
    """Immutable weighted tree over graph node ids.

    ``edges`` are normalized (``u < v``) and sorted; ``nodes`` always
    contains at least one node (single-node trees have no edges but a
    non-empty node set).
    """

    __slots__ = ("edges", "nodes", "weight")

    def __init__(self, edges: Iterable[EdgeTuple], nodes: Iterable[int] = ()) -> None:
        normalized = sorted(
            (min(u, v), max(u, v), w) for u, v, w in edges
        )
        self.edges: Tuple[EdgeTuple, ...] = tuple(normalized)
        node_set: Set[int] = set(nodes)
        for u, v, _ in self.edges:
            node_set.add(u)
            node_set.add(v)
        if not node_set:
            raise ValueError("a SteinerTree must contain at least one node")
        self.nodes: FrozenSet[int] = frozenset(node_set)
        self.weight: float = sum(w for _, _, w in self.edges)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def single_node(cls, node: int) -> "SteinerTree":
        """Weight-zero tree consisting of one node."""
        return cls((), nodes=(node,))

    @classmethod
    def from_edge_pairs(
        cls, graph: Graph, pairs: Iterable[Tuple[int, int]]
    ) -> "SteinerTree":
        """Build from ``(u, v)`` pairs, reading weights off the graph."""
        return cls((u, v, graph.edge_weight(u, v)) for u, v in pairs)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def num_edges(self) -> int:
        return len(self.edges)

    def covers(self, graph: Graph, labels: Iterable[Hashable]) -> bool:
        """Whether every label occurs on at least one tree node."""
        remaining = set(labels)
        for node in self.nodes:
            if not remaining:
                break
            remaining -= graph.labels_of(node)
        return not remaining

    def degree_map(self) -> Dict[int, int]:
        """Node → degree within the tree."""
        degree: Dict[int, int] = {node: 0 for node in self.nodes}
        for u, v, _ in self.edges:
            degree[u] += 1
            degree[v] += 1
        return degree

    def validate(
        self,
        graph: Graph,
        labels: Iterable[Hashable] = (),
    ) -> None:
        """Assert this is a real tree of ``graph`` covering ``labels``.

        Checks: every edge exists in the graph with the stored weight,
        the edge set is connected and acyclic, and the label coverage
        holds.  Raises ``GraphError`` on any violation — used heavily by
        the test suite and available to applications as a safety net.
        """
        for u, v, w in self.edges:
            actual = graph.edge_weight(u, v)  # raises if absent
            if abs(actual - w) > 1e-9:
                raise GraphError(
                    f"tree edge ({u},{v}) weight {w} != graph weight {actual}"
                )
        if not is_tree(self.edges):
            raise GraphError("edge set is not a tree (cycle or disconnected)")
        if self.edges:
            touched = {u for u, _, _ in self.edges} | {v for _, v, _ in self.edges}
            if touched != set(self.nodes):
                raise GraphError("node set inconsistent with edge set")
        labels = list(labels)
        if labels and not self.covers(graph, labels):
            missing = [
                label
                for label in labels
                if not any(graph.has_label(n, label) for n in self.nodes)
            ]
            raise GraphError(f"tree does not cover labels: {missing!r}")

    # ------------------------------------------------------------------
    # Rendering (used by the case studies)
    # ------------------------------------------------------------------
    def render(self, graph: Graph, root: int = -1) -> str:
        """ASCII rendering of the tree with node names and labels.

        ``root`` picks the display root (default: the highest-degree
        node, which matches how the paper draws its case-study figures).
        """
        if not self.edges:
            (node,) = self.nodes
            return f"* {self._describe(graph, node)}"
        adjacency: Dict[int, List[Tuple[int, float]]] = {n: [] for n in self.nodes}
        for u, v, w in self.edges:
            adjacency[u].append((v, w))
            adjacency[v].append((u, w))
        if root < 0 or root not in self.nodes:
            root = max(self.nodes, key=lambda n: len(adjacency[n]))
        lines: List[str] = [f"* {self._describe(graph, root)}"]
        seen = {root}

        def _walk(node: int, prefix: str) -> None:
            children = [(v, w) for v, w in adjacency[node] if v not in seen]
            for i, (child, weight) in enumerate(children):
                seen.add(child)
                last = i == len(children) - 1
                branch = "`-" if last else "|-"
                lines.append(
                    f"{prefix}{branch}[{weight:g}] {self._describe(graph, child)}"
                )
                _walk(child, prefix + ("  " if last else "| "))

        _walk(root, "")
        return "\n".join(lines)

    def to_dot(self, graph: Graph, name: str = "gst") -> str:
        """Graphviz DOT rendering (for papers/slides).

        Node labels come from the graph's external names (falling back
        to ids); edge labels show weights.
        """
        lines = [f"graph {name} {{", "  node [shape=box];"]
        for node in sorted(self.nodes):
            display = graph.name_of(node)
            display = node if display is None else display
            labels = ",".join(sorted(str(x) for x in graph.labels_of(node))[:3])
            text = f"{display}" + (f"\\n{labels}" if labels else "")
            lines.append(f'  n{node} [label="{text}"];')
        for u, v, w in self.edges:
            lines.append(f'  n{u} -- n{v} [label="{w:g}"];')
        lines.append("}")
        return "\n".join(lines)

    @staticmethod
    def _describe(graph: Graph, node: int) -> str:
        name = graph.name_of(node)
        label_text = ",".join(sorted(str(x) for x in graph.labels_of(node))[:4])
        shown = name if name is not None else node
        return f"{shown} ({label_text})" if label_text else f"{shown}"

    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, SteinerTree)
            and self.edges == other.edges
            and self.nodes == other.nodes
        )

    def __hash__(self) -> int:
        return hash((self.edges, self.nodes))

    def __repr__(self) -> str:
        return (
            f"SteinerTree(weight={self.weight:g}, nodes={len(self.nodes)}, "
            f"edges={len(self.edges)})"
        )
