"""Exception hierarchy for the ``repro`` package.

Every error raised by the library derives from :class:`ReproError`, so
applications can catch a single type at their boundary.  The subclasses
distinguish the failure modes a Group Steiner Tree (GST) workload can
hit: malformed graphs, malformed or unsatisfiable queries,
resource-limit interruptions, for the query service's resilience
layer — admission rejections, cooperative cancellations, and open
circuit breakers — and, for the persistent precompute store
(:mod:`repro.store`), artifact corruption / version / fingerprint
failures.
"""

from __future__ import annotations

from typing import Optional

__all__ = [
    "ReproError",
    "GraphError",
    "NodeRangeError",
    "QueryError",
    "InfeasibleQueryError",
    "LimitExceededError",
    "QueryRejectedError",
    "QueryCancelledError",
    "CircuitOpenError",
    "CertificationError",
    "WorkerCrashedError",
    "ProtocolError",
    "RemoteQueryError",
    "SharedMemoryGraphError",
    "ShmAttachError",
    "ShmLayoutError",
    "StoreError",
    "StoreCorruptError",
    "StoreVersionError",
    "StoreFingerprintError",
]


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class GraphError(ReproError):
    """A graph is structurally invalid for the requested operation.

    Examples: referencing a node id that was never added, adding an edge
    with a negative weight, or running a pruned solver on a graph with
    non-positive edge weights (PrunedDP's optimal-tree decomposition
    theorem requires strictly positive weights).
    """


class NodeRangeError(GraphError, IndexError):
    """A node id lies outside the graph's ``0..n-1`` id space.

    Subclasses both :class:`GraphError` (the package's typed hierarchy)
    and ``IndexError`` so callers that historically caught the bare
    ``IndexError`` from the shortest-path kernels keep working.
    """


class QueryError(ReproError):
    """A query is malformed: empty, too many labels, or duplicated labels."""


class InfeasibleQueryError(QueryError):
    """No connected tree covering all query labels exists.

    Raised when a query label occurs on no node of the graph, or when no
    single connected component covers every query label.
    """


class LimitExceededError(ReproError):
    """A configured resource limit (states, time) was exhausted.

    Solvers normally do *not* raise this: hitting ``time_limit`` returns
    the best feasible answer found so far (that is the whole point of a
    progressive algorithm).  The error is reserved for hard limits such
    as ``max_states`` with ``on_limit='raise'``.
    """


class QueryRejectedError(ReproError):
    """Admission control refused to run the query at all.

    Raised (or captured into a :class:`~repro.service.index.QueryOutcome`)
    by the service's :class:`~repro.service.resilience.AdmissionController`
    when a query's estimated state-space cost would blow the batch
    deadline or exceed the configured ceiling.  Carries the estimate so
    callers can resubmit with a smaller query or a bigger budget.
    """

    def __init__(
        self,
        message: str,
        *,
        estimated_states: Optional[int] = None,
        estimated_seconds: Optional[float] = None,
    ) -> None:
        super().__init__(message)
        self.estimated_states = estimated_states
        self.estimated_seconds = estimated_seconds


class QueryCancelledError(ReproError):
    """The query's cooperative cancellation token fired.

    The engine stops within a bounded number of state pops after the
    token is cancelled.  If a feasible tree was already found it is
    returned (the progressive contract); this error appears only when
    cancellation struck before *any* feasible answer existed.
    """


class CircuitOpenError(ReproError):
    """Every eligible algorithm's circuit breaker is open.

    The executor's per-algorithm breakers shed a systematically failing
    configuration down the degradation ladder; when the whole ladder is
    open the query is failed fast with this error instead of burning a
    worker on a doomed attempt.
    """


class CertificationError(ReproError):
    """An answer failed independent re-validation (:mod:`repro.verify`).

    Raised by the solution certifier when a :class:`~repro.core.result.GSTResult`
    is internally inconsistent: the tree is not a connected acyclic
    subgraph of the instance, it misses a query group, its recomputed
    edge-weight sum disagrees with the reported ``weight``, or a claimed
    bound is unsound (``lower_bound > weight``, or an optimal/epsilon
    exit whose bounds do not actually prove it).  Seeing this error
    means a solver, cache, or store produced a wrong answer — it is a
    bug report, not an input error.
    """


class WorkerCrashedError(ReproError):
    """A process-isolated worker died before delivering its outcome.

    Raised (or captured into a :class:`~repro.service.index.QueryOutcome`)
    by the :class:`~repro.service.durability.ProcessWorkerPool` when a
    subprocess solving a query is killed — OOM-killer, ``kill -9``, a
    segfault, the pool's own memory watchdog, or a hard-deadline kill of
    a hung worker.  The query itself may be perfectly fine, so the error
    is *retryable*: the service resumes it from its latest engine
    checkpoint (or re-runs it cold) instead of failing the batch.
    """

    def __init__(
        self,
        message: str,
        *,
        pid: Optional[int] = None,
        exitcode: Optional[int] = None,
        reason: Optional[str] = None,
    ) -> None:
        super().__init__(message)
        self.pid = pid
        self.exitcode = exitcode
        self.reason = reason


class ProtocolError(ReproError):
    """A wire frame violated the :mod:`repro.server` protocol.

    Raised by the length-prefixed NDJSON codec on oversized frames,
    truncated or non-JSON payloads, and frames missing the mandatory
    ``type`` field.  The server answers one typed ``ERROR`` frame
    (code ``"protocol"``) and closes the connection — a misbehaving
    client can never wedge a worker.
    """


class RemoteQueryError(ReproError):
    """A query shipped to a :mod:`repro.server` failed on the server.

    The client libraries raise this when an ``ERROR`` frame comes back
    instead of a ``RESULT``.  ``code`` is the server's stable error
    code (``"infeasible"``, ``"rejected"``, ``"circuit_open"``,
    ``"cancelled"``, ``"overloaded"``, ``"draining"``, ``"protocol"``,
    ``"bad_request"``, ``"internal"``); ``details`` carries whatever
    extra fields the frame had (e.g. an admission cost estimate).
    """

    def __init__(
        self,
        message: str,
        *,
        code: str = "internal",
        details: Optional[dict] = None,
    ) -> None:
        super().__init__(message)
        self.code = code
        self.details = details or {}


class SharedMemoryGraphError(ReproError):
    """A shared-memory CSR segment (:mod:`repro.graph.shm`) failed.

    The umbrella type for the fleet's shared-graph transport.  Like the
    store hierarchy, shared segments fail *closed*: a worker that
    cannot attach (or attaches something malformed) sees a typed error
    it can surface as a crashed query — never a ``BufferError``, a bare
    ``FileNotFoundError``, or a read of someone else's memory.
    """


class ShmAttachError(SharedMemoryGraphError):
    """The named shared-memory segment cannot be attached.

    Raised when the segment was never created, was already unlinked by
    its owner (e.g. a fleet whose owner died or shut down mid-respawn),
    or is too small to even hold the header.
    """


class ShmLayoutError(SharedMemoryGraphError):
    """The attached segment is not a valid CSR export.

    Bad magic, an unsupported layout version, a truncated metadata
    record, or buffer offsets pointing outside the segment.  The
    segment belongs to someone else or was torn; it is never read
    further.
    """


class StoreError(ReproError):
    """A persistent precompute store could not be used.

    The umbrella type for every :mod:`repro.store` failure: artifacts
    fail *closed* — a load problem raises a ``StoreError`` subclass
    (never a bare ``KeyError``/``EOFError``/``struct.error``) so
    callers can catch one type and fall back to a cold solve.
    """


class StoreCorruptError(StoreError):
    """A store file is truncated, checksum-mismatched, or malformed."""


class StoreVersionError(StoreError):
    """A store was written by an incompatible format version."""


class StoreFingerprintError(StoreError):
    """A store's graph fingerprint does not match the live graph.

    Distance tables index nodes by dense id; loading them against a
    different graph would silently corrupt every answer, so a
    fingerprint mismatch always rejects the whole store.
    """
