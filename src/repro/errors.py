"""Exception hierarchy for the ``repro`` package.

Every error raised by the library derives from :class:`ReproError`, so
applications can catch a single type at their boundary.  The subclasses
distinguish the three failure modes a Group Steiner Tree (GST) workload
can hit: malformed graphs, malformed or unsatisfiable queries, and
resource-limit interruptions.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "GraphError",
    "QueryError",
    "InfeasibleQueryError",
    "LimitExceededError",
]


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class GraphError(ReproError):
    """A graph is structurally invalid for the requested operation.

    Examples: referencing a node id that was never added, adding an edge
    with a negative weight, or running a pruned solver on a graph with
    non-positive edge weights (PrunedDP's optimal-tree decomposition
    theorem requires strictly positive weights).
    """


class QueryError(ReproError):
    """A query is malformed: empty, too many labels, or duplicated labels."""


class InfeasibleQueryError(QueryError):
    """No connected tree covering all query labels exists.

    Raised when a query label occurs on no node of the graph, or when no
    single connected component covers every query label.
    """


class LimitExceededError(ReproError):
    """A configured resource limit (states, time) was exhausted.

    Solvers normally do *not* raise this: hitting ``time_limit`` returns
    the best feasible answer found so far (that is the whole point of a
    progressive algorithm).  The error is reserved for hard limits such
    as ``max_states`` with ``on_limit='raise'``.
    """
