"""Graph substrate: storage, shortest paths, MST, generators, I/O."""

from .graph import Graph
from .csr import CSRGraph
from .shm import SharedCSR, share_csr
from .digraph import DiGraph
from .heap import IndexedHeap
from .union_find import UnionFind
from .shortest_paths import (
    dijkstra,
    multi_source_dijkstra,
    label_enhanced_distances,
    reconstruct_path,
    path_edges_to_source,
)
from .mst import kruskal_mst, minimum_spanning_forest, is_tree
from .components import (
    connected_components,
    component_ids,
    is_connected,
    component_covering_labels,
    components_covering_labels,
)
from .partition import Partition, bfs_partition
from . import generators
from .io import save_graph, load_graph

__all__ = [
    "Graph",
    "CSRGraph",
    "SharedCSR",
    "share_csr",
    "DiGraph",
    "IndexedHeap",
    "UnionFind",
    "dijkstra",
    "multi_source_dijkstra",
    "label_enhanced_distances",
    "reconstruct_path",
    "path_edges_to_source",
    "kruskal_mst",
    "minimum_spanning_forest",
    "is_tree",
    "connected_components",
    "component_ids",
    "is_connected",
    "component_covering_labels",
    "components_covering_labels",
    "Partition",
    "bfs_partition",
    "generators",
    "save_graph",
    "load_graph",
]
