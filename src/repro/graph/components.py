"""Connectivity utilities.

The paper assumes a connected graph ("if the graph is disconnected, we
can solve the GST problem in each maximal connected component").  The DP
solvers actually handle disconnection natively — edge growth can never
cross components and merges require a shared root — but the query
validator uses these helpers to *fail fast* when no single component
covers every query label, and the facade uses them to restrict work to
the relevant component.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from .graph import Graph

__all__ = [
    "connected_components",
    "component_ids",
    "is_connected",
    "component_covering_labels",
    "components_covering_labels",
]


def component_ids(graph: Graph) -> List[int]:
    """Label each node with a component id (0-based, BFS order)."""
    n = graph.num_nodes
    ids = [-1] * n
    adjacency = graph.adjacency()
    current = 0
    for start in range(n):
        if ids[start] != -1:
            continue
        ids[start] = current
        stack = [start]
        while stack:
            u = stack.pop()
            for v, _ in adjacency[u]:
                if ids[v] == -1:
                    ids[v] = current
                    stack.append(v)
        current += 1
    return ids


def connected_components(graph: Graph) -> List[List[int]]:
    """Node lists of each connected component."""
    ids = component_ids(graph)
    count = max(ids) + 1 if ids else 0
    components: List[List[int]] = [[] for _ in range(count)]
    for node, cid in enumerate(ids):
        components[cid].append(node)
    return components


def is_connected(graph: Graph) -> bool:
    """Whether the graph is a single connected component (empty = True)."""
    if graph.num_nodes == 0:
        return True
    ids = component_ids(graph)
    return all(cid == 0 for cid in ids)


def component_covering_labels(
    graph: Graph, labels: Sequence
) -> Optional[List[int]]:
    """Pick one component containing at least one node per label.

    Returns the node list of the smallest such component, or ``None``
    when no component covers all labels (the query is infeasible).  When
    several components qualify the smallest is returned — the GST
    optimum lives in *some* qualifying component, so the caller should
    solve each and keep the best; the facade does exactly that.
    """
    ids = component_ids(graph)
    qualifying: Optional[Dict[int, int]] = None
    for label in labels:
        members = graph.nodes_with_label(label)
        present = {ids[node] for node in members}
        if qualifying is None:
            qualifying = {cid: 0 for cid in present}
        else:
            qualifying = {cid: 0 for cid in qualifying if cid in present}
        if not qualifying:
            return None
    if qualifying is None:  # empty label list
        return None
    sizes: Dict[int, int] = {}
    for cid in ids:
        if cid in qualifying:
            sizes[cid] = sizes.get(cid, 0) + 1
    best = min(sizes, key=sizes.get)
    return [node for node, cid in enumerate(ids) if cid == best]


def components_covering_labels(
    graph: Graph, labels: Sequence
) -> List[List[int]]:
    """All components containing at least one node per label."""
    ids = component_ids(graph)
    count = max(ids) + 1 if ids else 0
    qualifying = set(range(count))
    for label in labels:
        present = {ids[node] for node in graph.nodes_with_label(label)}
        qualifying &= present
        if not qualifying:
            return []
    buckets: List[List[int]] = [[] for _ in range(count)]
    for node, cid in enumerate(ids):
        if cid in qualifying:
            buckets[cid].append(node)
    return [bucket for bucket in buckets if bucket]
