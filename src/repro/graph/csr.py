"""Immutable CSR snapshot of a :class:`~repro.graph.graph.Graph`.

The mutable adjacency-list :class:`Graph` is the construction surface;
every read-path kernel (the Dijkstra family, the DP search engines)
wants a flat, immutable view it can index without defensive copies or
locks.  :class:`CSRGraph` is that view:

* the canonical compressed-sparse-row buffers — ``indptr`` /
  ``indices`` / ``weights`` as flat ``array('q')`` / ``array('d')``
  arcs (each undirected edge appears twice) — which future compiled or
  numpy backends can adopt wholesale and which :attr:`fingerprint`
  hashes byte-for-byte,
* per-node immutable ``(neighbor, weight)`` tuple views
  (:attr:`adjacency`) that the pure-Python heap kernels iterate — in
  CPython, tuple iteration beats per-element flat-array indexing, so
  the flat buffers are the interchange format and the tuple views are
  the interpreter-shaped mirror of the same data,
* per-label group arrays (:meth:`members`) so kernels stop re-querying
  the mutable graph's group dict, and
* an integer-weight fast lane: when every edge weight is a small
  non-negative integer (checked once at build time), ``int_adjacency``
  holds ``(neighbor, int_weight)`` views and the kernels switch from a
  binary heap to Dial's bucket queue — exact integer distances, no
  tuple-per-push allocation, measured ~2.5x faster on the DBLP-like
  family whose weights are all 1.0/2.0.

A ``CSRGraph`` is never mutated after construction, so it is safe to
share across threads without locking; :meth:`Graph.freeze`
caches one per graph and drops it on any mutation.
"""

from __future__ import annotations

import hashlib
import time
from array import array
from typing import Dict, Hashable, List, Optional, Tuple

__all__ = ["CSRGraph", "MAX_DIAL_WEIGHT"]

# Dial's bucket queue allocates one bucket per distinct integer
# distance up to the largest settled distance (<= max_weight * n).
# Restrict the fast lane to small weights so the bucket list stays
# O(n) in practice; larger integer weights fall back to the heap
# kernel, which is always correct.
MAX_DIAL_WEIGHT = 64


class CSRGraph:
    """Frozen flat-array view of one graph (see module docstring)."""

    __slots__ = (
        "num_nodes",
        "num_edges",
        "indptr",
        "indices",
        "weights",
        "adjacency",
        "int_adjacency",
        "integer_weights",
        "max_int_weight",
        "build_seconds",
        "_label_members",
        "_fingerprint",
    )

    def __init__(
        self,
        num_nodes: int,
        num_edges: int,
        indptr: array,
        indices: array,
        weights: array,
        adjacency: Tuple[Tuple[Tuple[int, float], ...], ...],
        int_adjacency: Optional[Tuple[Tuple[Tuple[int, int], ...], ...]],
        max_int_weight: int,
        label_members: Dict[Hashable, Tuple[int, ...]],
        build_seconds: float,
    ) -> None:
        self.num_nodes = num_nodes
        self.num_edges = num_edges
        self.indptr = indptr
        self.indices = indices
        self.weights = weights
        self.adjacency = adjacency
        self.int_adjacency = int_adjacency
        self.integer_weights = int_adjacency is not None
        self.max_int_weight = max_int_weight
        self.build_seconds = build_seconds
        self._label_members = label_members
        self._fingerprint: Optional[str] = None

    # ------------------------------------------------------------------
    @classmethod
    def from_graph(cls, graph) -> "CSRGraph":
        """Snapshot ``graph`` (one O(n + m) pass; no fingerprint yet)."""
        started = time.perf_counter()
        n = graph.num_nodes
        raw = graph.adjacency()

        indptr = array("q", [0])
        indices = array("q")
        weights = array("d")
        adjacency: List[Tuple[Tuple[int, float], ...]] = []
        integral = True
        max_w = 0.0
        for u in range(n):
            row = tuple(raw[u])
            adjacency.append(row)
            for v, w in row:
                indices.append(v)
                weights.append(w)
                if integral and not w.is_integer():
                    integral = False
                if w > max_w:
                    max_w = w
            indptr.append(len(indices))

        int_adjacency: Optional[Tuple[Tuple[Tuple[int, int], ...], ...]] = None
        max_int_weight = 0
        if integral and max_w <= MAX_DIAL_WEIGHT:
            max_int_weight = int(max_w)
            int_adjacency = tuple(
                tuple((v, int(w)) for v, w in row) for row in adjacency
            )

        label_members: Dict[Hashable, Tuple[int, ...]] = {
            label: tuple(graph.nodes_with_label(label))
            for label in graph.all_labels()
        }

        return cls(
            num_nodes=n,
            num_edges=graph.num_edges,
            indptr=indptr,
            indices=indices,
            weights=weights,
            adjacency=tuple(adjacency),
            int_adjacency=int_adjacency,
            max_int_weight=max_int_weight,
            label_members=label_members,
            build_seconds=time.perf_counter() - started,
        )

    # ------------------------------------------------------------------
    def to_shared(self, *, name: Optional[str] = None):
        """Export this snapshot into a shared-memory segment.

        Returns the owner-side :class:`~repro.graph.shm.SharedCSR`
        handle; worker processes attach by ``handle.name`` via
        :meth:`from_shared`.  The handle must be :meth:`closed
        <repro.graph.shm.SharedCSR.close>` when serving ends — the
        segment is refcounted, so the unlink happens once the owner
        *and* every attached worker have detached.
        """
        from .shm import SharedCSR

        return SharedCSR.create(self, name=name)

    @classmethod
    def from_shared(
        cls, name: str, *, expect_fingerprint: Optional[str] = None
    ):
        """Attach a shared segment and materialize its snapshot.

        Returns ``(csr, handle)``: the :class:`CSRGraph` whose flat
        buffers are zero-copy views into the mapped segment, and the
        :class:`~repro.graph.shm.SharedCSR` handle keeping the mapping
        (and the segment's refcount) alive — close it only after the
        returned graph is no longer used.  The attach is fingerprint
        verified; pass ``expect_fingerprint`` to additionally pin the
        exact snapshot identity (raises
        :class:`~repro.errors.StoreFingerprintError` on any mismatch).
        """
        from .shm import SharedCSR

        handle = SharedCSR.attach(name)
        try:
            csr = handle.load(expect_fingerprint=expect_fingerprint)
        except Exception:
            handle.close()
            raise
        return csr, handle

    # ------------------------------------------------------------------
    def members(self, label: Hashable) -> Tuple[int, ...]:
        """The group ``V_p`` at freeze time (empty tuple when absent)."""
        return self._label_members.get(label, ())

    def all_labels(self):
        """Iterate the labels captured at freeze time."""
        return iter(self._label_members)

    @property
    def num_labels(self) -> int:
        return len(self._label_members)

    def degree(self, node: int) -> int:
        return self.indptr[node + 1] - self.indptr[node]

    # ------------------------------------------------------------------
    @property
    def fingerprint(self) -> str:
        """sha256 over the flat buffers + label groups (lazy, cached).

        Hashes the CSR arrays byte-for-byte plus every label's member
        array, so two snapshots agree iff they describe the same
        structure *in the same construction order* — strictly finer
        than :func:`repro.store.manifest.graph_fingerprint`, which
        sorts edges first.  The store records both.
        """
        if self._fingerprint is None:
            digest = hashlib.sha256()
            digest.update(f"csr;n={self.num_nodes};m={self.num_edges};".encode())
            digest.update(self.indptr.tobytes())
            digest.update(self.indices.tobytes())
            digest.update(self.weights.tobytes())
            for label in sorted(self._label_members, key=str):
                members = self._label_members[label]
                digest.update(
                    f"l={label!s}:{','.join(map(str, members))};".encode()
                )
            self._fingerprint = digest.hexdigest()
        return self._fingerprint

    # ------------------------------------------------------------------
    def info(self) -> dict:
        """JSON-safe summary (surfaced by ``GraphIndex.cache_info``)."""
        return {
            "num_nodes": self.num_nodes,
            "num_edges": self.num_edges,
            "num_labels": self.num_labels,
            "integer_weights": self.integer_weights,
            "max_int_weight": self.max_int_weight if self.integer_weights else None,
            "build_seconds": self.build_seconds,
        }

    def __repr__(self) -> str:
        kind = "int" if self.integer_weights else "float"
        return (
            f"CSRGraph(n={self.num_nodes}, m={self.num_edges}, "
            f"labels={self.num_labels}, weights={kind})"
        )
