"""Directed weighted labelled graph.

The paper formulates GST on undirected graphs, but its lineage — DPBF
(Ding et al.) and the BANKS/BLINKS systems — works on *directed* tuple
graphs where an answer is a rooted tree with directed paths from the
root to every keyword.  :class:`DiGraph` is the substrate for that
extension (see :mod:`repro.core.directed`).

Mirrors :class:`~repro.graph.graph.Graph` where the semantics coincide;
adjacency is kept in both directions (out-lists drive answer
construction, in-lists drive the backward Dijkstras and the DP's
edge-growing step, which moves the root *backward* along an edge).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, Iterable, Iterator, List, Optional, Tuple

from ..errors import GraphError

__all__ = ["DiGraph"]

Label = Hashable


class DiGraph:
    """Directed graph with weighted edges and labelled nodes."""

    __slots__ = (
        "_out",
        "_in",
        "_labels",
        "_groups",
        "_names",
        "_name_to_id",
        "_num_edges",
        "_min_weight",
    )

    def __init__(self) -> None:
        self._out: List[List[Tuple[int, float]]] = []
        self._in: List[List[Tuple[int, float]]] = []
        self._labels: List[FrozenSet[Label]] = []
        self._groups: Dict[Label, List[int]] = {}
        self._names: List[Optional[Hashable]] = []
        self._name_to_id: Dict[Hashable, int] = {}
        self._num_edges = 0
        self._min_weight = float("inf")

    # ------------------------------------------------------------------
    def add_node(
        self, labels: Iterable[Label] = (), name: Optional[Hashable] = None
    ) -> int:
        node = len(self._out)
        if name is not None:
            if name in self._name_to_id:
                raise GraphError(f"duplicate node name: {name!r}")
            self._name_to_id[name] = node
        self._out.append([])
        self._in.append([])
        label_set = frozenset(labels)
        self._labels.append(label_set)
        self._names.append(name)
        for label in label_set:
            self._groups.setdefault(label, []).append(node)
        return node

    def add_labels(self, node: int, labels: Iterable[Label]) -> None:
        self._check_node(node)
        new = frozenset(labels) - self._labels[node]
        if not new:
            return
        self._labels[node] = self._labels[node] | new
        for label in new:
            self._groups.setdefault(label, []).append(node)

    def add_edge(self, source: int, target: int, weight: float = 1.0) -> None:
        """Directed edge ``source → target``; parallels keep the lighter."""
        self._check_node(source)
        self._check_node(target)
        if source == target:
            raise GraphError(f"self-loop on node {source} is not allowed")
        weight = float(weight)
        if not (weight >= 0.0) or weight == float("inf"):
            raise GraphError(f"edge weight must be finite and >= 0, got {weight!r}")
        for i, (node, old) in enumerate(self._out[source]):
            if node == target:
                if weight < old:
                    self._out[source][i] = (target, weight)
                    for j, (back, _) in enumerate(self._in[target]):
                        if back == source:
                            self._in[target][j] = (source, weight)
                            break
                    if weight < self._min_weight:
                        self._min_weight = weight
                return
        self._out[source].append((target, weight))
        self._in[target].append((source, weight))
        self._num_edges += 1
        if weight < self._min_weight:
            self._min_weight = weight

    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return len(self._out)

    @property
    def num_edges(self) -> int:
        return self._num_edges

    @property
    def min_edge_weight(self) -> float:
        return self._min_weight

    def nodes(self) -> range:
        return range(len(self._out))

    def out_neighbors(self, node: int) -> List[Tuple[int, float]]:
        self._check_node(node)
        return self._out[node]

    def in_neighbors(self, node: int) -> List[Tuple[int, float]]:
        self._check_node(node)
        return self._in[node]

    def out_adjacency(self) -> List[List[Tuple[int, float]]]:
        return self._out

    def in_adjacency(self) -> List[List[Tuple[int, float]]]:
        return self._in

    def edges(self) -> Iterator[Tuple[int, int, float]]:
        """Yield every directed edge once as ``(source, target, weight)``."""
        for source, out in enumerate(self._out):
            for target, weight in out:
                yield (source, target, weight)

    def edge_weight(self, source: int, target: int) -> float:
        self._check_node(source)
        self._check_node(target)
        for node, weight in self._out[source]:
            if node == target:
                return weight
        raise GraphError(f"no edge {source} -> {target}")

    def has_edge(self, source: int, target: int) -> bool:
        self._check_node(source)
        self._check_node(target)
        return any(node == target for node, _ in self._out[source])

    # ------------------------------------------------------------------
    def labels_of(self, node: int) -> FrozenSet[Label]:
        self._check_node(node)
        return self._labels[node]

    def has_label(self, node: int, label: Label) -> bool:
        self._check_node(node)
        return label in self._labels[node]

    def nodes_with_label(self, label: Label):
        return self._groups.get(label, ())

    def all_labels(self) -> Iterator[Label]:
        return iter(self._groups)

    def name_of(self, node: int) -> Optional[Hashable]:
        self._check_node(node)
        return self._names[node]

    def node_by_name(self, name: Hashable) -> int:
        try:
            return self._name_to_id[name]
        except KeyError:
            raise GraphError(f"unknown node name: {name!r}") from None

    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check out/in list symmetry and group coherence."""
        out_count = sum(len(out) for out in self._out)
        in_count = sum(len(inn) for inn in self._in)
        if out_count != in_count or out_count != self._num_edges:
            raise GraphError("edge counters out of sync")
        for source, out in enumerate(self._out):
            for target, weight in out:
                if (source, weight) not in self._in[target]:
                    raise GraphError(
                        f"missing reverse entry for edge {source}->{target}"
                    )
        for label, group in self._groups.items():
            for node in group:
                if label not in self._labels[node]:
                    raise GraphError(f"group index broken for {label!r}")

    def _check_node(self, node: int) -> None:
        if not isinstance(node, int) or not 0 <= node < len(self._out):
            raise GraphError(f"invalid node id: {node!r}")

    def __repr__(self) -> str:
        return f"DiGraph(n={self.num_nodes}, m={self.num_edges})"
