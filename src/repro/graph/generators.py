"""Synthetic graph generators standing in for the paper's datasets.

The paper evaluates on four real graphs that are unavailable offline and
far too large for a pure-Python reproduction (DBLP 15.8M nodes, IMDB
30.4M, LiveJournal 4.8M, RoadUSA 23.9M).  Each generator below produces
a scaled graph preserving the structural property that drives the
corresponding experiment:

* :func:`dblp_like` — bipartite author/paper graph with citations;
  labels are keywords (Zipf-assigned) plus controlled-frequency query
  label pools.  Mirrors the keyword-search workload of Figs 4/6/8-12.
* :func:`imdb_like` — movie/person bipartite graph (actors, directors);
  same role as DBLP but denser star patterns (Figs 5/7, Table 3).
* :func:`powerlaw` — preferential-attachment graph with heavy-tailed
  degrees and small diameter (LiveJournal stand-in, Fig 14).
* :func:`road_grid` — perturbed lattice: near-planar, degree ≤ 4, huge
  diameter (RoadUSA stand-in, Fig 15).

Every generator takes ``label_frequency`` (the paper's ``kwf``: average
number of nodes carrying each query label) and ``num_query_labels`` (the
size of the pool queries are drawn from) so the benchmark harness can
sweep ``kwf`` exactly like Exp-2.  Query-pool labels are strings
``"q0".."q{L-1}"``; background labels (keywords, names) coexist so the
label index is realistically crowded.

All generators are deterministic given ``seed``.
"""

from __future__ import annotations

import math
import random
from typing import List, Optional, Sequence

from .graph import Graph

__all__ = [
    "attach_query_labels",
    "dblp_like",
    "imdb_like",
    "powerlaw",
    "road_grid",
    "random_graph",
    "QUERY_LABEL_PREFIX",
]

QUERY_LABEL_PREFIX = "q"


def query_label_pool(num_query_labels: int) -> List[str]:
    """The names of the controlled-frequency labels queries draw from."""
    return [f"{QUERY_LABEL_PREFIX}{i}" for i in range(num_query_labels)]


def attach_query_labels(
    graph: Graph,
    num_query_labels: int,
    label_frequency: int,
    rng: random.Random,
    nodes: Optional[Sequence[int]] = None,
) -> List[str]:
    """Attach ``num_query_labels`` labels, each to ``label_frequency`` nodes.

    This reproduces the paper's query generation knob ``kwf`` exactly:
    every query-pool label appears on (close to) ``label_frequency``
    distinct nodes, sampled uniformly from ``nodes`` (default: all).
    Returns the pool of label names.
    """
    if nodes is None:
        nodes = range(graph.num_nodes)
    nodes = list(nodes)
    if not nodes:
        raise ValueError("cannot attach labels to an empty node set")
    freq = min(label_frequency, len(nodes))
    pool = query_label_pool(num_query_labels)
    for label in pool:
        for node in rng.sample(nodes, freq):
            graph.add_labels(node, [label])
    return pool


def _zipf_keyword(rng: random.Random, vocabulary: int, exponent: float = 1.1) -> int:
    """Sample a keyword id with a Zipf-ish distribution via inverse CDF."""
    # Rejection-free approximation: u^( -1/(exponent-1) ) style tail is
    # overkill here; a simple power transform gives the heavy head we need.
    u = rng.random()
    rank = int(vocabulary * (u ** exponent))
    return min(rank, vocabulary - 1)


def dblp_like(
    num_papers: int = 600,
    num_authors: int = 400,
    *,
    citations_per_paper: float = 2.0,
    authors_per_paper: float = 2.5,
    keyword_vocabulary: int = 200,
    keywords_per_paper: int = 3,
    num_query_labels: int = 40,
    label_frequency: int = 8,
    seed: int = 0,
) -> Graph:
    """Scaled synthetic DBLP: papers cite papers, authors write papers.

    Node kinds carry a ``kind:paper`` / ``kind:author`` label; paper
    nodes additionally carry Zipf-sampled ``kw:<id>`` keywords and author
    nodes carry their ``author:<id>`` name label — this mirrors how the
    keyword-search application labels a tuple graph.  Edge weights follow
    the BANKS convention ``log2(1 + degree)`` applied after construction
    is too circular, so we use 1.0 for authorship and 2.0 for citations
    (relationship strength: direct authorship is stronger), which keeps
    the optimal trees interpretable in the case studies.
    """
    rng = random.Random(seed)
    graph = Graph()
    papers = [
        graph.add_node(labels=["kind:paper"], name=("paper", i))
        for i in range(num_papers)
    ]
    authors = [
        graph.add_node(
            labels=["kind:author", f"author:{i}"], name=("author", i)
        )
        for i in range(num_authors)
    ]
    for i, paper in enumerate(papers):
        keywords = {
            f"kw:{_zipf_keyword(rng, keyword_vocabulary)}"
            for _ in range(keywords_per_paper)
        }
        graph.add_labels(paper, keywords)
        # Citations: papers cite (mostly earlier) papers — preferential
        # to low ids, giving a DBLP-ish citation skew.
        n_cites = _poisson(rng, citations_per_paper)
        for _ in range(n_cites):
            if i == 0:
                break
            target = papers[_skewed_index(rng, i)]
            if target != paper:
                graph.add_edge(paper, target, 2.0)
        # Authorship.
        n_auth = max(1, _poisson(rng, authors_per_paper))
        for author in rng.sample(authors, min(n_auth, num_authors)):
            graph.add_edge(paper, author, 1.0)
    _connect_components(graph, rng, weight=2.0)
    attach_query_labels(graph, num_query_labels, label_frequency, rng)
    return graph


def imdb_like(
    num_movies: int = 700,
    num_people: int = 500,
    *,
    cast_per_movie: float = 4.0,
    genre_vocabulary: int = 60,
    num_query_labels: int = 40,
    label_frequency: int = 8,
    seed: int = 1,
) -> Graph:
    """Scaled synthetic IMDB: movies linked to actors/directors.

    People are reused across movies with preferential attachment
    (prolific actors appear in many movies) which produces the large
    star patterns that make IMDB the harder dataset in the paper.
    """
    rng = random.Random(seed)
    graph = Graph()
    movies = [
        graph.add_node(
            labels=["kind:movie", f"genre:{_zipf_keyword(rng, genre_vocabulary)}"],
            name=("movie", i),
        )
        for i in range(num_movies)
    ]
    people = [
        graph.add_node(
            labels=["kind:person", f"person:{i}"], name=("person", i)
        )
        for i in range(num_people)
    ]
    # Preferential attachment over people: track a repeated-node urn.
    urn: List[int] = list(people)
    for movie in movies:
        cast_size = max(1, _poisson(rng, cast_per_movie))
        chosen = set()
        for _ in range(cast_size):
            person = urn[rng.randrange(len(urn))]
            if person in chosen:
                continue
            chosen.add(person)
            graph.add_edge(movie, person, 1.0)
            urn.append(person)
    _connect_components(graph, rng, weight=2.0)
    attach_query_labels(graph, num_query_labels, label_frequency, rng)
    return graph


def powerlaw(
    num_nodes: int = 1500,
    *,
    edges_per_node: int = 3,
    num_query_labels: int = 40,
    label_frequency: int = 8,
    weight_range: Sequence[float] = (1.0, 4.0),
    seed: int = 2,
) -> Graph:
    """Preferential-attachment graph (LiveJournal stand-in).

    Barabási–Albert style: each new node connects to ``edges_per_node``
    existing nodes sampled proportionally to degree.  Heavy-tailed
    degrees and a small diameter — the topology on which the paper's
    tour-based bounds shine (Fig 14).
    """
    if num_nodes < edges_per_node + 1:
        raise ValueError("num_nodes must exceed edges_per_node")
    rng = random.Random(seed)
    graph = Graph()
    for i in range(num_nodes):
        graph.add_node(name=("v", i))
    lo, hi = weight_range
    urn: List[int] = []
    # Seed clique over the first m+1 nodes.
    core = edges_per_node + 1
    for u in range(core):
        for v in range(u + 1, core):
            graph.add_edge(u, v, rng.uniform(lo, hi))
            urn.extend((u, v))
    for u in range(core, num_nodes):
        chosen = set()
        while len(chosen) < edges_per_node:
            v = urn[rng.randrange(len(urn))]
            if v != u:
                chosen.add(v)
        for v in chosen:
            graph.add_edge(u, v, rng.uniform(lo, hi))
            urn.extend((u, v))
    attach_query_labels(graph, num_query_labels, label_frequency, rng)
    return graph


def road_grid(
    rows: int = 40,
    cols: int = 40,
    *,
    num_query_labels: int = 40,
    label_frequency: int = 8,
    weight_range: Sequence[float] = (1.0, 3.0),
    diagonal_probability: float = 0.05,
    seed: int = 3,
) -> Graph:
    """Perturbed lattice (RoadUSA stand-in): near-planar, huge diameter.

    Degree ≤ 4 (plus sparse diagonals standing in for highway ramps),
    uniform weights — the topology where one-label and tour-based lower
    bounds nearly coincide, reproducing Fig 15's small PrunedDP++ vs
    PrunedDP+ gap.
    """
    rng = random.Random(seed)
    graph = Graph()
    ids = [[graph.add_node(name=("r", r, c)) for c in range(cols)] for r in range(rows)]
    lo, hi = weight_range
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                graph.add_edge(ids[r][c], ids[r][c + 1], rng.uniform(lo, hi))
            if r + 1 < rows:
                graph.add_edge(ids[r][c], ids[r + 1][c], rng.uniform(lo, hi))
            if (
                r + 1 < rows
                and c + 1 < cols
                and rng.random() < diagonal_probability
            ):
                graph.add_edge(ids[r][c], ids[r + 1][c + 1], rng.uniform(lo, hi) * 1.4)
    attach_query_labels(graph, num_query_labels, label_frequency, rng)
    return graph


def random_graph(
    num_nodes: int,
    num_edges: int,
    *,
    num_query_labels: int = 6,
    label_frequency: int = 3,
    weight_range: Sequence[float] = (1.0, 10.0),
    connected: bool = True,
    seed: int = 0,
) -> Graph:
    """Uniform random graph for tests and fuzzing.

    When ``connected`` is true a random spanning tree is laid down first
    so every query is feasible.
    """
    rng = random.Random(seed)
    graph = Graph()
    for i in range(num_nodes):
        graph.add_node(name=("n", i))
    lo, hi = weight_range
    added = 0
    if connected and num_nodes > 1:
        order = list(range(num_nodes))
        rng.shuffle(order)
        for i in range(1, num_nodes):
            u = order[i]
            v = order[rng.randrange(i)]
            graph.add_edge(u, v, rng.uniform(lo, hi))
            added += 1
    attempts = 0
    max_attempts = 20 * max(num_edges, 1) + 100
    while added < num_edges and attempts < max_attempts:
        attempts += 1
        u = rng.randrange(num_nodes)
        v = rng.randrange(num_nodes)
        if u == v or graph.has_edge(u, v):
            continue
        graph.add_edge(u, v, rng.uniform(lo, hi))
        added += 1
    attach_query_labels(graph, num_query_labels, label_frequency, rng)
    return graph


# ----------------------------------------------------------------------
# Internal helpers
# ----------------------------------------------------------------------
def _poisson(rng: random.Random, lam: float) -> int:
    """Knuth's Poisson sampler (lambda is small everywhere we call it)."""
    threshold = math.exp(-lam)
    k = 0
    p = 1.0
    while True:
        p *= rng.random()
        if p <= threshold:
            return k
        k += 1


def _skewed_index(rng: random.Random, upper: int) -> int:
    """Index in [0, upper) biased toward 0 (older papers get more citations)."""
    return int(upper * rng.random() * rng.random())


def _connect_components(graph: Graph, rng: random.Random, weight: float) -> None:
    """Stitch stray components onto the giant one so queries are feasible."""
    from .components import connected_components

    components = connected_components(graph)
    if len(components) <= 1:
        return
    components.sort(key=len, reverse=True)
    giant = components[0]
    for other in components[1:]:
        u = other[rng.randrange(len(other))]
        v = giant[rng.randrange(len(giant))]
        graph.add_edge(u, v, weight)
