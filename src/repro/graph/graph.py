"""Weighted, node-labelled, undirected graph.

This is the substrate every algorithm in the package runs on.  The
representation is a plain adjacency list over dense integer node ids
(``0..n-1``) because the DP solvers index per-node arrays in their hot
loops; external (application-level) node names are kept in a side table
so keyword-search and team-formation layers can round-trip their domain
objects.

Labels are arbitrary hashable values.  Each label ``p`` implicitly
defines the *group* ``V_p`` — the set of nodes carrying ``p`` — which is
exactly the "group" of the Group Steiner Tree problem.
"""

from __future__ import annotations

from typing import (
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from ..errors import GraphError

__all__ = ["Graph", "Edge"]

Label = Hashable
Edge = Tuple[int, int, float]


class Graph:
    """Undirected weighted graph with labelled nodes.

    Nodes are created with :meth:`add_node` and addressed by the dense
    integer id it returns.  Parallel edges are collapsed to the minimum
    weight; self-loops are rejected (they can never appear in a tree).

    >>> g = Graph()
    >>> a = g.add_node(labels=["db"])
    >>> b = g.add_node(labels=["ml"])
    >>> g.add_edge(a, b, 2.5)
    >>> g.num_nodes, g.num_edges
    (2, 1)
    >>> sorted(g.nodes_with_label("db"))
    [0]
    """

    __slots__ = (
        "_adj",
        "_labels",
        "_groups",
        "_names",
        "_name_to_id",
        "_num_edges",
        "_total_weight",
        "_min_weight",
        "_edge_pos",
        "_snapshot",
    )

    def __init__(self) -> None:
        self._adj: List[List[Tuple[int, float]]] = []
        self._labels: List[FrozenSet[Label]] = []
        self._groups: Dict[Label, List[int]] = {}
        self._names: List[Optional[Hashable]] = []
        self._name_to_id: Dict[Hashable, int] = {}
        # (u, v) -> position of v inside _adj[u], kept for both edge
        # directions.  Positions are stable because edges are never
        # deleted, so duplicate-edge collapse and edge_weight are O(1)
        # instead of an O(deg) adjacency scan.
        self._edge_pos: Dict[Tuple[int, int], int] = {}
        self._num_edges = 0
        self._total_weight = 0.0
        self._min_weight = float("inf")
        # Immutable CSR snapshot (see repro.graph.csr); built by
        # freeze(), dropped by any mutation.
        self._snapshot = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_node(
        self,
        labels: Iterable[Label] = (),
        name: Optional[Hashable] = None,
    ) -> int:
        """Add a node and return its integer id.

        ``labels`` attaches the node to the corresponding groups;
        ``name`` registers an optional external identifier that must be
        unique across the graph.
        """
        node = len(self._adj)
        if name is not None:
            if name in self._name_to_id:
                raise GraphError(f"duplicate node name: {name!r}")
            self._name_to_id[name] = node
        self._snapshot = None
        self._adj.append([])
        label_set = frozenset(labels)
        self._labels.append(label_set)
        self._names.append(name)
        for label in label_set:
            self._groups.setdefault(label, []).append(node)
        return node

    def add_labels(self, node: int, labels: Iterable[Label]) -> None:
        """Attach additional labels to an existing node."""
        self._check_node(node)
        new = frozenset(labels) - self._labels[node]
        if not new:
            return
        self._snapshot = None
        self._labels[node] = self._labels[node] | new
        for label in new:
            self._groups.setdefault(label, []).append(node)

    def add_edge(self, u: int, v: int, weight: float = 1.0) -> None:
        """Add an undirected edge; parallel edges keep the lighter weight.

        Weights must be finite and non-negative.  (The PrunedDP family
        additionally requires strictly positive weights and validates
        that at solve time.)
        """
        self._check_node(u)
        self._check_node(v)
        if u == v:
            raise GraphError(f"self-loop on node {u} is not allowed")
        weight = float(weight)
        if not (weight >= 0.0) or weight == float("inf"):
            raise GraphError(f"edge weight must be finite and >= 0, got {weight!r}")
        pos = self._edge_pos.get((u, v))
        if pos is not None:
            existing = self._adj[u][pos][1]
            if weight < existing:
                self._snapshot = None
                self._replace_edge_weight(u, v, weight)
                self._total_weight += weight - existing
                if weight < self._min_weight:
                    self._min_weight = weight
            return
        self._snapshot = None
        self._edge_pos[(u, v)] = len(self._adj[u])
        self._edge_pos[(v, u)] = len(self._adj[v])
        self._adj[u].append((v, weight))
        self._adj[v].append((u, weight))
        self._num_edges += 1
        self._total_weight += weight
        if weight < self._min_weight:
            self._min_weight = weight

    def _replace_edge_weight(self, u: int, v: int, weight: float) -> None:
        self._adj[u][self._edge_pos[(u, v)]] = (v, weight)
        self._adj[v][self._edge_pos[(v, u)]] = (u, weight)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of nodes (``n`` in the paper)."""
        return len(self._adj)

    @property
    def num_edges(self) -> int:
        """Number of undirected edges (``m`` in the paper)."""
        return self._num_edges

    @property
    def total_weight(self) -> float:
        """Sum of all edge weights."""
        return self._total_weight

    @property
    def min_edge_weight(self) -> float:
        """Smallest edge weight, ``inf`` for an edgeless graph."""
        return self._min_weight

    def nodes(self) -> range:
        """Iterate node ids ``0..n-1``."""
        return range(len(self._adj))

    def neighbors(self, node: int) -> Sequence[Tuple[int, float]]:
        """Return the ``(neighbor, weight)`` adjacency list of ``node``."""
        self._check_node(node)
        return self._adj[node]

    def adjacency(self) -> List[List[Tuple[int, float]]]:
        """Expose the raw adjacency structure (read-only by convention).

        Hot loops (Dijkstra, the DP engines) index this directly instead
        of paying a method call per edge.
        """
        return self._adj

    def degree(self, node: int) -> int:
        """Number of incident edges."""
        self._check_node(node)
        return len(self._adj[node])

    def edges(self) -> Iterator[Edge]:
        """Yield each undirected edge once as ``(u, v, weight)`` with u < v."""
        for u, adj in enumerate(self._adj):
            for v, weight in adj:
                if u < v:
                    yield (u, v, weight)

    def edge_weight(self, u: int, v: int) -> float:
        """Weight of edge ``(u, v)``; raises ``GraphError`` if absent."""
        self._check_node(u)
        self._check_node(v)
        weight = self._edge_weight(u, v)
        if weight is None:
            raise GraphError(f"no edge between {u} and {v}")
        return weight

    def has_edge(self, u: int, v: int) -> bool:
        """Whether an edge between ``u`` and ``v`` exists."""
        self._check_node(u)
        self._check_node(v)
        return self._edge_weight(u, v) is not None

    def _edge_weight(self, u: int, v: int) -> Optional[float]:
        pos = self._edge_pos.get((u, v))
        if pos is None:
            return None
        return self._adj[u][pos][1]

    # ------------------------------------------------------------------
    # Labels and groups
    # ------------------------------------------------------------------
    def labels_of(self, node: int) -> FrozenSet[Label]:
        """The label set ``S_v`` of a node."""
        self._check_node(node)
        return self._labels[node]

    def has_label(self, node: int, label: Label) -> bool:
        """Whether ``node`` carries ``label``."""
        self._check_node(node)
        return label in self._labels[node]

    def nodes_with_label(self, label: Label) -> Sequence[int]:
        """The group ``V_p`` — every node carrying ``label`` (may be empty)."""
        return self._groups.get(label, ())

    def all_labels(self) -> Iterator[Label]:
        """Iterate over every distinct label in the graph."""
        return iter(self._groups)

    @property
    def num_labels(self) -> int:
        """Number of distinct labels."""
        return len(self._groups)

    def label_frequency(self, label: Label) -> int:
        """Size of the group ``V_p`` (the paper's ``kwf`` is the mean of this)."""
        return len(self._groups.get(label, ()))

    # ------------------------------------------------------------------
    # Names
    # ------------------------------------------------------------------
    def name_of(self, node: int) -> Optional[Hashable]:
        """The external name registered for ``node`` (or ``None``)."""
        self._check_node(node)
        return self._names[node]

    def node_by_name(self, name: Hashable) -> int:
        """Resolve an external name back to its node id."""
        try:
            return self._name_to_id[name]
        except KeyError:
            raise GraphError(f"unknown node name: {name!r}") from None

    def has_name(self, name: Hashable) -> bool:
        """Whether a node with the external name exists."""
        return name in self._name_to_id

    # ------------------------------------------------------------------
    # Utilities
    # ------------------------------------------------------------------
    def subgraph(self, nodes: Iterable[int]) -> Tuple["Graph", Dict[int, int]]:
        """Induced subgraph on ``nodes``.

        Returns the new graph and a mapping from old node id to new.
        Labels and names are preserved (names only if unique, which they
        are by construction).
        """
        keep = sorted(set(nodes))
        mapping: Dict[int, int] = {}
        sub = Graph()
        for old in keep:
            self._check_node(old)
            mapping[old] = sub.add_node(labels=self._labels[old], name=self._names[old])
        kept = set(keep)
        for old in keep:
            for neighbor, weight in self._adj[old]:
                if neighbor in kept and old < neighbor:
                    sub.add_edge(mapping[old], mapping[neighbor], weight)
        return sub, mapping

    def copy(self) -> "Graph":
        """Deep-enough copy (labels are immutable frozensets, shared)."""
        clone = Graph()
        clone._adj = [list(adj) for adj in self._adj]
        clone._labels = list(self._labels)
        clone._groups = {label: list(nodes) for label, nodes in self._groups.items()}
        clone._names = list(self._names)
        clone._name_to_id = dict(self._name_to_id)
        clone._edge_pos = dict(self._edge_pos)
        clone._num_edges = self._num_edges
        clone._total_weight = self._total_weight
        clone._min_weight = self._min_weight
        # The clone starts unfrozen: a CSRGraph is bound to one graph's
        # exact structure, and the clone is free to mutate.
        return clone

    # ------------------------------------------------------------------
    # Immutable CSR snapshot
    # ------------------------------------------------------------------
    @classmethod
    def from_csr(cls, csr) -> "Graph":
        """Rebuild a mutable graph from a CSR snapshot, adopting it.

        The inverse of :meth:`freeze`, used by fleet workers that
        receive the graph through shared memory
        (:mod:`repro.graph.shm`) rather than by pickling.  The rebuilt
        graph reproduces the donor's internal state *exactly* —
        adjacency rows in the donor's insertion order and label groups
        in the donor's membership order — and ``csr`` itself is
        installed as the cached snapshot, so ``freeze()`` returns the
        shared (fingerprint-identical) buffers instead of rebuilding:
        checkpoint paths, store lookups, and answers all match the
        owner process bit-for-bit.  External node names are not part of
        a snapshot and come back empty.
        """
        graph = cls()
        n = csr.num_nodes
        label_sets: List[set] = [set() for _ in range(n)]
        graph._groups = {
            label: list(csr.members(label)) for label in csr.all_labels()
        }
        for label, members in graph._groups.items():
            for node in members:
                label_sets[node].add(label)
        graph._adj = [list(csr.adjacency[u]) for u in range(n)]
        graph._labels = [frozenset(s) for s in label_sets]
        graph._names = [None] * n
        total = 0.0
        min_w = float("inf")
        for u, row in enumerate(graph._adj):
            for pos, (v, w) in enumerate(row):
                graph._edge_pos[(u, v)] = pos
                if u < v:
                    total += w
                    if w < min_w:
                        min_w = w
        graph._num_edges = csr.num_edges
        graph._total_weight = total
        graph._min_weight = min_w
        graph._snapshot = csr
        return graph

    def freeze(self):
        """Build (or return the cached) immutable CSR snapshot.

        Returns a :class:`~repro.graph.csr.CSRGraph` over the current
        structure.  The snapshot is cached on the graph and transparently
        picked up by the shortest-path dispatchers and the search
        engine's flat-kernel fast path; any later mutation
        (``add_node`` / ``add_labels`` / ``add_edge`` that changes an
        edge) drops it, so a stale snapshot can never be observed.
        """
        if self._snapshot is None:
            from .csr import CSRGraph

            self._snapshot = CSRGraph.from_graph(self)
        return self._snapshot

    def snapshot(self):
        """The live CSR snapshot, or ``None`` when not frozen (or stale)."""
        return self._snapshot

    def validate(self) -> None:
        """Check internal invariants; raises ``GraphError`` on corruption."""
        edge_count = 0
        for u, adj in enumerate(self._adj):
            seen = set()
            for v, weight in adj:
                if not 0 <= v < len(self._adj):
                    raise GraphError(f"node {u} links to out-of-range node {v}")
                if v == u:
                    raise GraphError(f"self-loop stored on node {u}")
                if v in seen:
                    raise GraphError(f"parallel edge stored between {u} and {v}")
                seen.add(v)
                back = self._edge_weight(v, u)
                if back is None or back != weight:
                    raise GraphError(f"asymmetric edge between {u} and {v}")
                edge_count += 1
        if edge_count != 2 * self._num_edges:
            raise GraphError("edge counter out of sync with adjacency lists")
        if len(self._edge_pos) != 2 * self._num_edges:
            raise GraphError("edge position index out of sync")
        for (u, v), pos in self._edge_pos.items():
            entry = self._adj[u][pos] if pos < len(self._adj[u]) else None
            if entry is None or entry[0] != v:
                raise GraphError(f"edge position index broken for ({u}, {v})")
        for label, group in self._groups.items():
            for node in group:
                if label not in self._labels[node]:
                    raise GraphError(f"group index broken for label {label!r}")

    def _check_node(self, node: int) -> None:
        if not isinstance(node, int) or not 0 <= node < len(self._adj):
            raise GraphError(f"invalid node id: {node!r}")

    def __repr__(self) -> str:
        return (
            f"Graph(n={self.num_nodes}, m={self.num_edges}, "
            f"labels={self.num_labels})"
        )
