"""Addressable binary min-heap with decrease-key.

Every algorithm in this package — Dijkstra, the parameterized DP (DPBF),
Basic, PrunedDP and the A*-search variants — is driven by a priority
queue whose entries must be updatable in place: when a DP state is
reached along a cheaper path its priority must *decrease* without
leaving a stale duplicate behind.  The classic ``heapq`` lazy-deletion
idiom works but inflates the queue (and therefore the memory numbers the
paper reports), so we implement a proper addressable heap.

The heap maps arbitrary hashable *keys* to comparable *priorities*.
``push`` inserts or decreases; ``update`` allows arbitrary re-priority
(sifting in either direction), which PrunedDP++ needs because a state's
stored lower bound can be *raised* by the path-max consistency fix.

Complexities: ``push``/``pop``/``update`` are ``O(log n)``; ``__contains__``
and ``priority_of`` are ``O(1)``.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, Iterator, List, Tuple

__all__ = ["IndexedHeap"]


class IndexedHeap:
    """Binary min-heap over ``(priority, key)`` pairs with O(1) addressing.

    >>> h = IndexedHeap()
    >>> h.push("a", 3.0); h.push("b", 1.0); h.push("a", 2.0)
    >>> h.pop()
    ('b', 1.0)
    >>> h.pop()
    ('a', 2.0)
    >>> len(h)
    0
    """

    __slots__ = ("_entries", "_pos")

    def __init__(self) -> None:
        # Parallel array of (priority, key); _pos maps key -> index.
        self._entries: List[Tuple[Any, Hashable]] = []
        self._pos: Dict[Hashable, int] = {}

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __bool__(self) -> bool:
        return bool(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._pos

    def __iter__(self) -> Iterator[Hashable]:
        """Iterate over keys in *heap order* (not sorted order)."""
        return iter(key for _, key in self._entries)

    def items(self) -> Iterator[Tuple[Hashable, Any]]:
        """Iterate over ``(key, priority)`` pairs in *heap order*.

        Heap order is an implementation detail, but it is a valid
        insertion order: re-``push``-ing the pairs into an empty heap
        reproduces an equivalent queue.  Engine checkpointing relies on
        this to serialize the frontier without destroying it.
        """
        return iter((key, priority) for priority, key in self._entries)

    def priority_of(self, key: Hashable) -> Any:
        """Return the current priority of ``key``.

        Raises ``KeyError`` if the key is not in the heap.
        """
        return self._entries[self._pos[key]][0]

    def peek(self) -> Tuple[Hashable, Any]:
        """Return ``(key, priority)`` of the minimum without removing it."""
        if not self._entries:
            raise IndexError("peek from an empty heap")
        priority, key = self._entries[0]
        return key, priority

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def push(self, key: Hashable, priority: Any) -> bool:
        """Insert ``key`` or decrease its priority.

        Returns ``True`` if the heap changed (new key, or a strictly
        smaller priority for an existing key); a push with a priority
        that is not an improvement is ignored and returns ``False``.
        """
        pos = self._pos.get(key)
        if pos is None:
            self._entries.append((priority, key))
            self._pos[key] = len(self._entries) - 1
            self._sift_up(len(self._entries) - 1)
            return True
        if priority < self._entries[pos][0]:
            self._entries[pos] = (priority, key)
            self._sift_up(pos)
            return True
        return False

    def update(self, key: Hashable, priority: Any) -> None:
        """Set ``key``'s priority unconditionally (raise or lower).

        Inserts the key if absent.  PrunedDP++ uses this to raise a
        queued state's f-value after the consistency path-max.
        """
        pos = self._pos.get(key)
        if pos is None:
            self.push(key, priority)
            return
        old = self._entries[pos][0]
        self._entries[pos] = (priority, key)
        if priority < old:
            self._sift_up(pos)
        elif old < priority:
            self._sift_down(pos)

    def pop(self) -> Tuple[Hashable, Any]:
        """Remove and return the ``(key, priority)`` with minimum priority."""
        if not self._entries:
            raise IndexError("pop from an empty heap")
        priority, key = self._entries[0]
        last = self._entries.pop()
        del self._pos[key]
        if self._entries:
            self._entries[0] = last
            self._pos[last[1]] = 0
            self._sift_down(0)
        return key, priority

    def discard(self, key: Hashable) -> bool:
        """Remove ``key`` if present; return whether it was removed."""
        pos = self._pos.get(key)
        if pos is None:
            return False
        last = self._entries.pop()
        del self._pos[key]
        if pos < len(self._entries):
            self._entries[pos] = last
            self._pos[last[1]] = pos
            # The replacement may need to move either way.
            self._sift_up(pos)
            self._sift_down(self._pos[last[1]])
        return True

    def clear(self) -> None:
        """Remove every entry."""
        self._entries.clear()
        self._pos.clear()

    # ------------------------------------------------------------------
    # Internal sifting
    # ------------------------------------------------------------------
    def _sift_up(self, pos: int) -> None:
        entries = self._entries
        positions = self._pos
        item = entries[pos]
        while pos > 0:
            parent = (pos - 1) >> 1
            parent_item = entries[parent]
            if item[0] < parent_item[0]:
                entries[pos] = parent_item
                positions[parent_item[1]] = pos
                pos = parent
            else:
                break
        entries[pos] = item
        positions[item[1]] = pos

    def _sift_down(self, pos: int) -> None:
        entries = self._entries
        positions = self._pos
        size = len(entries)
        item = entries[pos]
        while True:
            child = 2 * pos + 1
            if child >= size:
                break
            right = child + 1
            if right < size and entries[right][0] < entries[child][0]:
                child = right
            child_item = entries[child]
            if child_item[0] < item[0]:
                entries[pos] = child_item
                positions[child_item[1]] = pos
                pos = child
            else:
                break
        entries[pos] = item
        positions[item[1]] = pos

    # ------------------------------------------------------------------
    # Validation helper (used by tests)
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Assert the heap property and position-map coherence."""
        entries = self._entries
        for i, (priority, key) in enumerate(entries):
            if self._pos[key] != i:
                raise AssertionError(f"position map broken for {key!r}")
            child = 2 * i + 1
            if child < len(entries) and entries[child][0] < priority:
                raise AssertionError(f"heap property broken at index {i}")
            child += 1
            if child < len(entries) and entries[child][0] < priority:
                raise AssertionError(f"heap property broken at index {i}")
        if len(self._pos) != len(entries):
            raise AssertionError("position map size mismatch")
