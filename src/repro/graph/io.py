"""Plain-text graph persistence.

Two tab-separated files describe a graph the way the paper's datasets
are usually distributed:

* ``<stem>.edges``  — one ``u<TAB>v<TAB>weight`` line per edge;
* ``<stem>.labels`` — one ``node<TAB>label1<TAB>label2...`` line per
  labelled node.

Node ids are the dense integers of :class:`~repro.graph.graph.Graph`;
labels are stored verbatim as strings (so non-string labels round-trip
as their ``str()`` form — the benchmark datasets only use strings).
"""

from __future__ import annotations

import os
from typing import Tuple

from ..errors import GraphError
from .graph import Graph

__all__ = ["save_graph", "load_graph"]


def save_graph(graph: Graph, stem: str) -> Tuple[str, str]:
    """Write ``<stem>.edges`` and ``<stem>.labels``; returns both paths."""
    edges_path = stem + ".edges"
    labels_path = stem + ".labels"
    with open(edges_path, "w", encoding="utf-8") as handle:
        handle.write(f"# nodes\t{graph.num_nodes}\n")
        for u, v, weight in graph.edges():
            handle.write(f"{u}\t{v}\t{weight!r}\n")
    with open(labels_path, "w", encoding="utf-8") as handle:
        for node in graph.nodes():
            labels = graph.labels_of(node)
            if labels:
                joined = "\t".join(sorted(str(label) for label in labels))
                handle.write(f"{node}\t{joined}\n")
    return edges_path, labels_path


def load_graph(stem: str) -> Graph:
    """Load a graph previously written by :func:`save_graph`."""
    edges_path = stem + ".edges"
    labels_path = stem + ".labels"
    if not os.path.exists(edges_path):
        raise GraphError(f"missing edge file: {edges_path}")
    graph = Graph()
    declared_nodes = 0
    edges = []
    with open(edges_path, "r", encoding="utf-8") as handle:
        for line_no, line in enumerate(handle, 1):
            line = line.rstrip("\n")
            if not line:
                continue
            if line.startswith("#"):
                parts = line[1:].split("\t")
                if parts and parts[0].strip() == "nodes":
                    declared_nodes = int(parts[1])
                continue
            parts = line.split("\t")
            if len(parts) != 3:
                raise GraphError(f"{edges_path}:{line_no}: malformed edge line")
            u, v, weight = int(parts[0]), int(parts[1]), float(parts[2])
            edges.append((u, v, weight))
    max_node = declared_nodes - 1
    for u, v, _ in edges:
        max_node = max(max_node, u, v)
    for _ in range(max_node + 1):
        graph.add_node()
    for u, v, weight in edges:
        graph.add_edge(u, v, weight)
    if os.path.exists(labels_path):
        with open(labels_path, "r", encoding="utf-8") as handle:
            for line_no, line in enumerate(handle, 1):
                line = line.rstrip("\n")
                if not line or line.startswith("#"):
                    continue
                parts = line.split("\t")
                node = int(parts[0])
                if node > max_node:
                    raise GraphError(
                        f"{labels_path}:{line_no}: label for unknown node {node}"
                    )
                graph.add_labels(node, parts[1:])
    return graph
