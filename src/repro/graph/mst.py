"""Minimum spanning tree over explicit edge sets (Kruskal).

The feasible-tree construction of Algorithms 1/2/4 unions the DP state's
tree with shortest paths to the missing labels and then takes the MST of
the united edge set (``MST(T'(v, X̄) ∪ T(v, X))`` in the paper).  The
input is therefore a small explicit edge list, not the whole graph, so
Kruskal with a union-find is the right tool.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

from .union_find import UnionFind

__all__ = ["kruskal_mst", "minimum_spanning_forest", "is_tree"]

EdgeTuple = Tuple[int, int, float]


def _normalize(edges: Iterable[EdgeTuple]) -> List[EdgeTuple]:
    """Deduplicate undirected edges, keeping the minimum weight per pair."""
    best: Dict[Tuple[int, int], float] = {}
    for u, v, weight in edges:
        if u == v:
            continue
        key = (u, v) if u < v else (v, u)
        old = best.get(key)
        if old is None or weight < old:
            best[key] = weight
    return [(u, v, w) for (u, v), w in best.items()]


def minimum_spanning_forest(edges: Iterable[EdgeTuple]) -> List[EdgeTuple]:
    """Kruskal over an explicit edge list; returns MST edges per component.

    Nodes are whatever endpoints appear in ``edges``.  Duplicate and
    reversed edges are collapsed to their cheapest copy first.
    """
    unique = _normalize(edges)
    unique.sort(key=lambda e: e[2])
    uf = UnionFind()
    tree: List[EdgeTuple] = []
    for u, v, weight in unique:
        if uf.union(u, v):
            tree.append((u, v, weight))
    return tree


def kruskal_mst(edges: Iterable[EdgeTuple]) -> Tuple[List[EdgeTuple], float]:
    """MST edges and total weight of the (assumed connected) edge set.

    The caller is responsible for connectivity; if the input spans more
    than one component the result is the spanning *forest* and its
    weight, which is still what the feasible-solution builder wants when
    it later prunes unreachable branches.
    """
    tree = minimum_spanning_forest(edges)
    return tree, sum(w for _, _, w in tree)


def is_tree(edges: Sequence[EdgeTuple]) -> bool:
    """Whether the edge set forms a single tree (connected, acyclic).

    An empty edge set counts as a (single-node) tree.
    """
    if not edges:
        return True
    uf = UnionFind()
    nodes = set()
    for u, v, _ in edges:
        nodes.add(u)
        nodes.add(v)
        if not uf.union(u, v):
            return False  # cycle
    return len(edges) == len(nodes) - 1
