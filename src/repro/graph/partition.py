"""Graph partitioning (the substrate of BLINKS' bi-level index).

BLINKS partitions the graph into blocks (METIS in the paper) and keeps
block-level summaries that lower-bound keyword distances.  METIS is
unavailable offline; BFS region growing produces connected, bounded
blocks with the property the index needs (any inter-block move pays at
least the cheapest boundary edge), which is all the lower bounds use.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Sequence, Tuple

from .graph import Graph

__all__ = ["Partition", "bfs_partition"]


class Partition:
    """A node → block assignment plus the weighted block-level graph."""

    __slots__ = ("graph", "assignment", "blocks", "block_adjacency")

    def __init__(self, graph: Graph, assignment: List[int]) -> None:
        if len(assignment) != graph.num_nodes:
            raise ValueError("assignment length must equal node count")
        self.graph = graph
        self.assignment = assignment
        count = max(assignment) + 1 if assignment else 0
        self.blocks: List[List[int]] = [[] for _ in range(count)]
        for node, block in enumerate(assignment):
            self.blocks[block].append(node)
        # Block graph: between two adjacent blocks keep the *minimum*
        # crossing-edge weight — an admissible per-hop cost.
        adjacency: List[Dict[int, float]] = [dict() for _ in range(count)]
        for u, v, w in graph.edges():
            bu, bv = assignment[u], assignment[v]
            if bu == bv:
                continue
            old = adjacency[bu].get(bv)
            if old is None or w < old:
                adjacency[bu][bv] = w
                adjacency[bv][bu] = w
        self.block_adjacency = adjacency

    @property
    def num_blocks(self) -> int:
        return len(self.blocks)

    def block_of(self, node: int) -> int:
        return self.assignment[node]

    def portals(self, block: int) -> List[int]:
        """Boundary nodes of a block (incident to a crossing edge)."""
        members = self.blocks[block]
        result = []
        for node in members:
            for neighbor, _ in self.graph.neighbors(node):
                if self.assignment[neighbor] != block:
                    result.append(node)
                    break
        return result

    def block_distances(self, source_blocks: Sequence[int]) -> List[float]:
        """Multi-source Dijkstra over the block graph.

        ``result[b]`` lower-bounds the cost of reaching any node of a
        source block from any node of block ``b`` (every block change
        on a real path costs at least the block-graph edge).
        """
        from heapq import heappop, heappush

        dist = [float("inf")] * self.num_blocks
        heap: List[Tuple[float, int]] = []
        for block in source_blocks:
            if dist[block] > 0.0:
                dist[block] = 0.0
                heappush(heap, (0.0, block))
        while heap:
            d, block = heappop(heap)
            if d > dist[block]:
                continue
            for neighbor, weight in self.block_adjacency[block].items():
                nd = d + weight
                if nd < dist[neighbor]:
                    dist[neighbor] = nd
                    heappush(heap, (nd, neighbor))
        return dist

    def validate(self) -> None:
        """Check structural invariants (tests)."""
        seen = 0
        for block_id, members in enumerate(self.blocks):
            for node in members:
                if self.assignment[node] != block_id:
                    raise AssertionError("assignment/blocks mismatch")
                seen += 1
        if seen != self.graph.num_nodes:
            raise AssertionError("nodes missing from blocks")


def bfs_partition(graph: Graph, block_size: int) -> Partition:
    """Grow connected blocks of at most ``block_size`` nodes by BFS.

    Every node lands in exactly one block; blocks are connected in the
    original graph (when their seed's component is large enough).
    """
    if block_size < 1:
        raise ValueError("block_size must be >= 1")
    n = graph.num_nodes
    assignment = [-1] * n
    adjacency = graph.adjacency()
    next_block = 0
    for start in range(n):
        if assignment[start] != -1:
            continue
        queue = deque([start])
        assignment[start] = next_block
        size = 1
        while queue and size < block_size:
            node = queue.popleft()
            for neighbor, _ in adjacency[node]:
                if assignment[neighbor] == -1:
                    assignment[neighbor] = next_block
                    size += 1
                    queue.append(neighbor)
                    if size >= block_size:
                        break
        next_block += 1
    return Partition(graph, assignment)
