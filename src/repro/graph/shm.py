"""Shared-memory transport for frozen CSR snapshots.

The fleet serving mode (:mod:`repro.service.fleet`) runs N persistent
worker processes against one graph.  Re-pickling (or COW-unsharing)
the graph per worker is exactly the cost the frozen
:class:`~repro.graph.csr.CSRGraph` was built to avoid: its canonical
representation is already three flat ``array`` buffers plus a label
table, so this module maps those bytes into one
:mod:`multiprocessing.shared_memory` segment that every worker attaches
read-only.

* :meth:`CSRGraph.to_shared <repro.graph.csr.CSRGraph.to_shared>` /
  :func:`share_csr` export a snapshot into a named segment and return
  the owner-side :class:`SharedCSR` handle.
* :meth:`CSRGraph.from_shared <repro.graph.csr.CSRGraph.from_shared>` /
  :func:`SharedCSR.attach` attach by name.  The attach is
  **fingerprint-verified**: the stored snapshot fingerprint is
  recomputed over the mapped bytes and label table, so a torn write, a
  recycled segment name, or a hostile neighbour can never smuggle a
  different graph into a worker.  Mismatches raise the same typed
  :class:`~repro.errors.StoreFingerprintError` the store layer uses.
* Lifetime is **refcounted**: the segment header carries an attach
  count and an ``owner-closed`` flag.  :meth:`SharedCSR.close` on the
  owner unlinks immediately when no worker is attached, and otherwise
  defers the unlink to the last detaching worker — so a graceful fleet
  shutdown never yanks the mapping out from under an in-flight
  checkpoint, and the segment still disappears once everyone is done.

Failure modes are typed (:class:`~repro.errors.ShmAttachError` /
:class:`~repro.errors.ShmLayoutError` /
:class:`~repro.errors.StoreFingerprintError`), never a
``BufferError`` or a bare ``FileNotFoundError``: a worker that loses
its segment surfaces a crashed *query*, not a crashed *process*.

Segment layout (little-endian)::

    0   8   magic  b"GSTSHM01"
    8   8   u64    refcount (owner + live attachers; advisory, see below)
    16  8   u64    flags (bit 0: owner closed)
    24  8   u64    metadata length in bytes
    32  ..  utf-8 JSON metadata (sizes, offsets, labels, fingerprint)
    ..  ..  indptr bytes | indices bytes | weights bytes (8-aligned)

The refcount is maintained with plain read-modify-write on the mapped
header.  That is race-free under the fleet's actual contract — the
owner forks every attacher and serializes attach/detach around its own
lifecycle — and merely advisory for out-of-band attachers (a debugging
``repro`` shell attaching a live fleet's graph).
"""

from __future__ import annotations

import hashlib
import json
import secrets
import struct
import threading
from multiprocessing import resource_tracker, shared_memory
from typing import Dict, Hashable, Optional, Tuple

from ..errors import ShmAttachError, ShmLayoutError, StoreFingerprintError

__all__ = ["SharedCSR", "share_csr", "SHM_MAGIC", "SHM_VERSION"]

SHM_MAGIC = b"GSTSHM01"
SHM_VERSION = 1  # encoded in the magic's trailing digits

_HEADER = struct.Struct("<8sQQQ")  # magic, refcount, flags, meta_len
_REFCOUNT_OFFSET = 8
_FLAGS_OFFSET = 16
_FLAG_OWNER_CLOSED = 1
_ALIGN = 8

# Label keys are persisted as (kind, value) pairs so the common
# hashable types round-trip exactly instead of being coerced to str by
# JSON object keys.
_LABEL_KINDS = {"str": str, "int": int, "float": float}


def _align(offset: int) -> int:
    return (offset + _ALIGN - 1) & ~(_ALIGN - 1)


def _encode_label(label: Hashable):
    for kind, typ in _LABEL_KINDS.items():
        if type(label) is typ:
            return [kind, label]
    raise ShmLayoutError(
        f"label {label!r} of type {type(label).__name__} cannot be shared; "
        f"shared snapshots support {sorted(_LABEL_KINDS)} labels"
    )


def _decode_label(pair) -> Hashable:
    try:
        kind, value = pair
        return _LABEL_KINDS[kind](value)
    except (KeyError, TypeError, ValueError):
        raise ShmLayoutError(f"malformed label record {pair!r}") from None


_attach_lock = threading.Lock()


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Map an existing segment WITHOUT resource-tracker registration.

    An *attacher* must never register the name: tracker entries are
    deduplicated daemon-side, so an attacher's registration aliases the
    owner's — unregistering (or the tracker's exit cleanup) would then
    unlink the graph out from under every other process.  Only the
    owner registers, so an owner crash still reclaims the segment and
    a worker crash never destroys it.  Python 3.13 exposes this as
    ``track=False``; older interpreters get the same effect by
    suppressing ``register`` for the duration of the constructor.
    """
    try:
        return shared_memory.SharedMemory(name=name, create=False, track=False)
    except TypeError:  # pragma: no cover - Python < 3.13
        pass
    with _attach_lock:
        original = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            return shared_memory.SharedMemory(name=name, create=False)
        finally:
            resource_tracker.register = original


class SharedCSR:
    """One shared-memory CSR segment: owner- or attacher-side handle.

    Owners come from :func:`share_csr` (or ``csr.to_shared()``);
    attachers from :meth:`attach`.  Both sides call :meth:`close` when
    done; the last handle out (with the owner already closed) unlinks
    the segment.  :meth:`load` materializes the
    :class:`~repro.graph.csr.CSRGraph`, verifying the fingerprint.
    """

    def __init__(
        self,
        shm: shared_memory.SharedMemory,
        meta: dict,
        *,
        owner: bool,
    ) -> None:
        self._shm: Optional[shared_memory.SharedMemory] = shm
        self._meta = meta
        self.owner = owner
        self.name = shm.name
        self.size = shm.buf.nbytes
        self._views = []  # memoryviews exported into a loaded CSRGraph
        self._unlinked = False

    # ------------------------------------------------------------------
    # Creation / attach
    # ------------------------------------------------------------------
    @classmethod
    def create(cls, csr, *, name: Optional[str] = None) -> "SharedCSR":
        """Export ``csr`` into a fresh segment (the owner-side handle)."""
        indptr_bytes = csr.indptr.tobytes()
        indices_bytes = csr.indices.tobytes()
        weights_bytes = csr.weights.tobytes()
        meta = {
            "num_nodes": csr.num_nodes,
            "num_edges": csr.num_edges,
            "fingerprint": csr.fingerprint,
            "labels": [
                _encode_label(label) + [list(csr.members(label))]
                for label in csr.all_labels()
            ],
            "buffers": {},  # name -> [offset, nbytes]
        }
        # Two-pass: offsets depend on the meta length, which depends on
        # the offsets' textual width.  Lay out with placeholder offsets,
        # then re-encode; widths are padded stable by the alignment.
        payloads = (
            ("indptr", indptr_bytes),
            ("indices", indices_bytes),
            ("weights", weights_bytes),
        )
        for attempt in range(3):
            blob = json.dumps(meta, separators=(",", ":")).encode("utf-8")
            offset = _align(_HEADER.size + len(blob))
            buffers: Dict[str, Tuple[int, int]] = {}
            for key, payload in payloads:
                buffers[key] = [offset, len(payload)]
                offset = _align(offset + len(payload))
            if meta["buffers"] == buffers:
                break
            meta["buffers"] = buffers
        total = offset
        if name is None:
            name = f"gst-csr-{secrets.token_hex(6)}"
        shm = shared_memory.SharedMemory(name=name, create=True, size=total)
        buf = shm.buf
        _HEADER.pack_into(buf, 0, SHM_MAGIC, 1, 0, len(blob))
        buf[_HEADER.size:_HEADER.size + len(blob)] = blob
        for key, payload in payloads:
            start = meta["buffers"][key][0]
            buf[start:start + len(payload)] = payload
        return cls(shm, meta, owner=True)

    @classmethod
    def attach(cls, name: str) -> "SharedCSR":
        """Attach an existing segment by name (never the raw OS error)."""
        try:
            shm = _attach_untracked(name)
        except FileNotFoundError:
            raise ShmAttachError(
                f"shared snapshot segment {name!r} does not exist (never "
                "created, or already unlinked by its owner)"
            ) from None
        except OSError as exc:
            raise ShmAttachError(
                f"shared snapshot segment {name!r} cannot be attached: {exc}"
            ) from None
        try:
            meta = cls._read_meta(shm, name)
        except Exception:
            shm.close()
            raise
        handle = cls(shm, meta, owner=False)
        handle._bump_refcount(+1)
        return handle

    @staticmethod
    def _read_meta(shm: shared_memory.SharedMemory, name: str) -> dict:
        buf = shm.buf
        if buf.nbytes < _HEADER.size:
            raise ShmLayoutError(
                f"segment {name!r} is {buf.nbytes} bytes — too small to be "
                "a CSR export"
            )
        magic, _refs, _flags, meta_len = _HEADER.unpack_from(buf, 0)
        if magic != SHM_MAGIC:
            raise ShmLayoutError(
                f"segment {name!r} has magic {magic!r}, expected "
                f"{SHM_MAGIC!r} — not a shared CSR snapshot"
            )
        if _HEADER.size + meta_len > buf.nbytes:
            raise ShmLayoutError(
                f"segment {name!r}: metadata length {meta_len} overruns the "
                f"{buf.nbytes}-byte segment"
            )
        try:
            meta = json.loads(bytes(buf[_HEADER.size:_HEADER.size + meta_len]))
        except ValueError:
            raise ShmLayoutError(
                f"segment {name!r}: metadata is not valid JSON"
            ) from None
        if not isinstance(meta, dict) or "buffers" not in meta:
            raise ShmLayoutError(f"segment {name!r}: malformed metadata")
        for key in ("indptr", "indices", "weights"):
            entry = meta["buffers"].get(key)
            if (
                not isinstance(entry, list)
                or len(entry) != 2
                or entry[0] + entry[1] > buf.nbytes
            ):
                raise ShmLayoutError(
                    f"segment {name!r}: buffer {key!r} lies outside the "
                    "segment"
                )
        return meta

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------
    def load(self, *, expect_fingerprint: Optional[str] = None):
        """Materialize the :class:`~repro.graph.csr.CSRGraph`.

        The flat buffers are **zero-copy** views into the mapped
        segment; the interpreter-shaped tuple mirrors (what the kernels
        iterate) are rebuilt process-locally — one O(n + m) pass per
        attach, amortized over every query the worker will ever serve.

        The snapshot fingerprint is always re-derived from the mapped
        bytes and compared to the stored one (and to
        ``expect_fingerprint`` when given); any mismatch raises
        :class:`~repro.errors.StoreFingerprintError` before a single
        adjacency tuple is built.
        """
        from .csr import MAX_DIAL_WEIGHT, CSRGraph

        self._require_open()
        meta = self._meta
        n = meta["num_nodes"]
        indptr = self._buffer_view("indptr", "q")
        indices = self._buffer_view("indices", "q")
        weights = self._buffer_view("weights", "d")
        if len(indptr) != n + 1:
            raise ShmLayoutError(
                f"segment {self.name!r}: indptr has {len(indptr)} entries "
                f"for {n} nodes"
            )
        label_members = {
            _decode_label(entry[:2]): tuple(entry[2])
            for entry in meta.get("labels", ())
        }
        stored = meta.get("fingerprint")
        digest = hashlib.sha256()
        digest.update(
            f"csr;n={n};m={meta['num_edges']};".encode()
        )
        digest.update(indptr)
        digest.update(indices)
        digest.update(weights)
        for label in sorted(label_members, key=str):
            members = label_members[label]
            digest.update(
                f"l={label!s}:{','.join(map(str, members))};".encode()
            )
        derived = digest.hexdigest()
        if derived != stored:
            raise StoreFingerprintError(
                f"segment {self.name!r}: mapped bytes hash to "
                f"{derived[:12]}… but the segment claims {str(stored)[:12]}… "
                "— torn write or foreign segment; refusing to load"
            )
        if expect_fingerprint is not None and derived != expect_fingerprint:
            raise StoreFingerprintError(
                f"segment {self.name!r} holds snapshot {derived[:12]}…, "
                f"expected {expect_fingerprint[:12]}… — this is a different "
                "graph; refusing to load"
            )

        adjacency = []
        integral = True
        max_w = 0.0
        for u in range(n):
            row = tuple(
                (indices[i], weights[i])
                for i in range(indptr[u], indptr[u + 1])
            )
            adjacency.append(row)
            for _, w in row:
                if integral and not w.is_integer():
                    integral = False
                if w > max_w:
                    max_w = w
        int_adjacency = None
        max_int_weight = 0
        if integral and max_w <= MAX_DIAL_WEIGHT:
            max_int_weight = int(max_w)
            int_adjacency = tuple(
                tuple((v, int(w)) for v, w in row) for row in adjacency
            )
        csr = CSRGraph(
            num_nodes=n,
            num_edges=meta["num_edges"],
            indptr=indptr,
            indices=indices,
            weights=weights,
            adjacency=tuple(adjacency),
            int_adjacency=int_adjacency,
            max_int_weight=max_int_weight,
            label_members=label_members,
            build_seconds=0.0,
        )
        csr._fingerprint = derived
        return csr

    def _buffer_view(self, key: str, typecode: str):
        shm = self._require_open()
        offset, nbytes = self._meta["buffers"][key]
        view = memoryview(shm.buf)[offset:offset + nbytes].cast(typecode)
        self._views.append(view)
        return view

    # ------------------------------------------------------------------
    # Lifetime
    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._shm is None

    def refcount(self) -> int:
        """Live handles on the segment (owner included until closed)."""
        shm = self._require_open()
        return struct.unpack_from("<Q", shm.buf, _REFCOUNT_OFFSET)[0]

    def owner_closed(self) -> bool:
        shm = self._require_open()
        flags = struct.unpack_from("<Q", shm.buf, _FLAGS_OFFSET)[0]
        return bool(flags & _FLAG_OWNER_CLOSED)

    def _bump_refcount(self, delta: int) -> int:
        shm = self._require_open()
        value = struct.unpack_from("<Q", shm.buf, _REFCOUNT_OFFSET)[0]
        value = max(0, value + delta)
        struct.pack_into("<Q", shm.buf, _REFCOUNT_OFFSET, value)
        return value

    def _require_open(self) -> shared_memory.SharedMemory:
        if self._shm is None:
            raise ShmAttachError(
                f"shared snapshot handle {self.name!r} is already closed"
            )
        return self._shm

    def close(self) -> None:
        """Detach; unlink iff this was the last handle out.

        Owner close sets the owner-closed flag first, so the unlink is
        deferred to the last live attacher when workers are still
        mapped — every exported memoryview is released before the
        mapping goes, so this can never raise ``BufferError``.
        Idempotent.
        """
        shm = self._shm
        if shm is None:
            return
        if self.owner:
            flags = struct.unpack_from("<Q", shm.buf, _FLAGS_OFFSET)[0]
            struct.pack_into(
                "<Q", shm.buf, _FLAGS_OFFSET, flags | _FLAG_OWNER_CLOSED
            )
            remaining = self._bump_refcount(-1)
            last_out = remaining == 0
        else:
            remaining = self._bump_refcount(-1)
            last_out = remaining == 0 and self.owner_closed()
        for view in self._views:
            view.release()
        self._views.clear()
        self._shm = None
        if last_out:
            self._unlink(shm)
        try:
            shm.close()
        except BufferError:  # pragma: no cover - views are all released
            pass

    def unlink(self) -> None:
        """Force-remove the segment name now (destructive; owner only).

        Live mappings stay valid on POSIX; *new* attaches fail with
        :class:`~repro.errors.ShmAttachError`.  Used by abandon-ship
        paths (``shutdown(wait=False)``); graceful shutdown goes
        through :meth:`close`.
        """
        shm = self._shm
        if shm is not None:
            self._unlink(shm)

    def _unlink(self, shm: shared_memory.SharedMemory) -> None:
        # Guarded: a second unlink of the same name would make the
        # resource tracker print a KeyError traceback at exit.
        if self._unlinked:
            return
        self._unlinked = True
        try:
            shm.unlink()
        except FileNotFoundError:
            pass

    # ------------------------------------------------------------------
    def info(self) -> dict:
        """JSON-safe summary (surfaced by fleet metrics and tests)."""
        return {
            "name": self.name,
            "size_bytes": self.size,
            "num_nodes": self._meta["num_nodes"],
            "num_edges": self._meta["num_edges"],
            "fingerprint": self._meta["fingerprint"],
            "owner": self.owner,
        }

    def __enter__(self) -> "SharedCSR":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self.closed else ("owner" if self.owner else "attached")
        return f"SharedCSR({self.name!r}, {self.size} bytes, {state})"


def share_csr(csr, *, name: Optional[str] = None) -> SharedCSR:
    """Functional alias for :meth:`SharedCSR.create` (owner side)."""
    return SharedCSR.create(csr, name=name)
