"""Dijkstra shortest paths, including the paper's virtual-node variants.

The paper's preprocessing (Section 3.1) attaches, for each query label
``p``, a virtual node ``ṽ_p`` connected with zero-weight edges to every
node of the group ``V_p``, then runs single-source Dijkstra from ``ṽ_p``.
That is exactly a *multi-source* Dijkstra from ``V_p`` with all source
distances zero, which is what :func:`multi_source_dijkstra` computes —
no materialized virtual node needed.

Section 4.1 additionally needs distances between virtual nodes in the
*label-enhanced graph* where **all** virtual edges are present
simultaneously (so a route may "teleport" for free between two nodes
sharing a label).  :func:`label_enhanced_distances` computes those
pairwise virtual-node distances without materializing the enhanced
graph either: a virtual node ``ṽ_q`` is reached at cost
``min_{u in V_q} dist(u)``, and leaving it re-seeds every node of
``V_q`` at that cost.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .graph import Graph

__all__ = [
    "dijkstra",
    "multi_source_dijkstra",
    "reconstruct_path",
    "path_edges_to_source",
    "label_enhanced_distances",
]

INF = float("inf")


def dijkstra(
    graph: Graph,
    source: int,
    *,
    targets: Optional[Iterable[int]] = None,
) -> Tuple[List[float], List[int]]:
    """Single-source Dijkstra.

    Returns ``(dist, parent)`` where ``parent[v]`` is the predecessor of
    ``v`` on a shortest path from ``source`` (``-1`` for the source and
    unreached nodes).  If ``targets`` is given the search stops early
    once all targets are settled.
    """
    return multi_source_dijkstra(graph, [source], targets=targets)


def multi_source_dijkstra(
    graph: Graph,
    sources: Sequence[int],
    *,
    targets: Optional[Iterable[int]] = None,
) -> Tuple[List[float], List[int]]:
    """Dijkstra from a set of sources, all starting at distance 0.

    This is the paper's virtual-node search: the virtual node ``ṽ_p`` is
    connected to every node of ``V_p`` with weight 0, so
    ``dist(v, ṽ_p) = min_{u in V_p} dist(v, u)``.

    ``parent[v]`` points one hop toward the nearest source; walking
    parents from ``v`` reproduces the shortest path the feasible-tree
    construction unions together.
    """
    n = graph.num_nodes
    dist: List[float] = [INF] * n
    parent: List[int] = [-1] * n
    adjacency = graph.adjacency()

    heap: List[Tuple[float, int]] = []
    for source in sources:
        if not 0 <= source < n:
            raise IndexError(f"source {source} out of range")
        if dist[source] != 0.0:
            dist[source] = 0.0
            heappush(heap, (0.0, source))

    remaining = set(targets) if targets is not None else None
    if remaining is not None:
        remaining = {t for t in remaining if dist[t] != 0.0}

    while heap:
        d, u = heappop(heap)
        if d > dist[u]:
            continue  # stale entry
        if remaining is not None:
            remaining.discard(u)
            if not remaining:
                break
        for v, weight in adjacency[u]:
            nd = d + weight
            if nd < dist[v]:
                dist[v] = nd
                parent[v] = u
                heappush(heap, (nd, v))
    return dist, parent


def reconstruct_path(parent: Sequence[int], node: int) -> List[int]:
    """Walk ``parent`` pointers from ``node`` back to a source.

    Returns the node sequence ``[node, ..., source]``.  The caller must
    ensure ``node`` was reached (``dist[node] < inf``), otherwise the
    result is just ``[node]``.
    """
    path = [node]
    current = node
    seen = {node}
    while parent[current] != -1:
        current = parent[current]
        if current in seen:  # pragma: no cover - corrupted parent array
            raise ValueError("cycle in parent pointers")
        seen.add(current)
        path.append(current)
    return path


def path_edges_to_source(
    parent: Sequence[int], node: int
) -> List[Tuple[int, int]]:
    """Edges (as ``(u, v)`` pairs) along the parent walk from ``node``."""
    edges: List[Tuple[int, int]] = []
    current = node
    while parent[current] != -1:
        nxt = parent[current]
        edges.append((current, nxt))
        current = nxt
    return edges


def label_enhanced_distances(
    graph: Graph,
    groups: Sequence[Sequence[int]],
) -> List[List[float]]:
    """All-pairs distances between virtual label nodes, Section 4.1 style.

    ``groups[i]`` is the node set ``V_{p_i}`` of the i-th query label.
    Returns a ``k × k`` matrix ``D`` with ``D[i][j] = dist(ṽ_i, ṽ_j)`` in
    the *label-enhanced* graph (every virtual node present at once, each
    attached with zero-weight edges).

    Implementation: one Dijkstra per source label over the original
    graph, augmented with "teleport" relaxations — whenever a node of
    group ``q`` is settled at distance ``d``, the virtual node ``ṽ_q``
    is reached at ``d``, and all other members of ``V_q`` are relaxed to
    ``d``.  This matches Dijkstra on the enhanced graph exactly.
    """
    k = len(groups)
    n = graph.num_nodes
    adjacency = graph.adjacency()

    # node -> list of group indexes it belongs to
    membership: List[List[int]] = [[] for _ in range(n)]
    for gi, members in enumerate(groups):
        for node in members:
            membership[node].append(gi)

    result: List[List[float]] = []
    for src in range(k):
        dist: List[float] = [INF] * n
        group_dist: List[float] = [INF] * k
        group_expanded = [False] * k
        group_dist[src] = 0.0

        heap: List[Tuple[float, int]] = []
        for node in groups[src]:
            if dist[node] > 0.0:
                dist[node] = 0.0
                heappush(heap, (0.0, node))

        while heap:
            d, u = heappop(heap)
            if d > dist[u]:
                continue
            # Settle u: record/relax every virtual node u belongs to.
            for gi in membership[u]:
                if d < group_dist[gi]:
                    group_dist[gi] = d
                if not group_expanded[gi]:
                    group_expanded[gi] = True
                    # Teleport: every member of group gi is reachable at d.
                    for other in groups[gi]:
                        if d < dist[other]:
                            dist[other] = d
                            heappush(heap, (d, other))
            for v, weight in adjacency[u]:
                nd = d + weight
                if nd < dist[v]:
                    dist[v] = nd
                    heappush(heap, (nd, v))

        # A group may be unreachable (disconnected graph): keep inf.
        result.append(group_dist)
    # Symmetrize against floating noise (the metric is symmetric).
    for i in range(k):
        for j in range(i + 1, k):
            best = min(result[i][j], result[j][i])
            result[i][j] = best
            result[j][i] = best
    return result
