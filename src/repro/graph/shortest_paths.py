"""Dijkstra shortest paths, including the paper's virtual-node variants.

The paper's preprocessing (Section 3.1) attaches, for each query label
``p``, a virtual node ``ṽ_p`` connected with zero-weight edges to every
node of the group ``V_p``, then runs single-source Dijkstra from ``ṽ_p``.
That is exactly a *multi-source* Dijkstra from ``V_p`` with all source
distances zero, which is what :func:`multi_source_dijkstra` computes —
no materialized virtual node needed.

Section 4.1 additionally needs distances between virtual nodes in the
*label-enhanced graph* where **all** virtual edges are present
simultaneously (so a route may "teleport" for free between two nodes
sharing a label).  :func:`label_enhanced_distances` computes those
pairwise virtual-node distances without materializing the enhanced
graph either: a virtual node ``ṽ_q`` is reached at cost
``min_{u in V_q} dist(u)``, and leaving it re-seeds every node of
``V_q`` at that cost.

Kernel dispatch
---------------
Each public function is a thin dispatcher: when the graph carries a
frozen :class:`~repro.graph.csr.CSRGraph` snapshot (``Graph.freeze()``)
the ``*_csr`` kernel runs against the snapshot's immutable views —
using Dial's bucket queue instead of a binary heap when the snapshot
proved every weight a small integer — and otherwise the original
adjacency-list implementation (kept verbatim as
``multi_source_dijkstra_legacy``) runs.  Both kernels return identical
``(dist, parent)`` tables; ``tests/properties`` pins the agreement on
random graphs and ``benchmarks/test_csr_kernels.py`` pins the speedup.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Iterable, List, Optional, Sequence, Tuple

from ..errors import NodeRangeError
from .csr import CSRGraph
from .graph import Graph

__all__ = [
    "dijkstra",
    "dijkstra_csr",
    "multi_source_dijkstra",
    "multi_source_dijkstra_csr",
    "multi_source_dijkstra_legacy",
    "reconstruct_path",
    "path_edges_to_source",
    "label_enhanced_distances",
    "label_enhanced_distances_csr",
    "label_enhanced_distances_legacy",
]

INF = float("inf")


def _check_sources(sources: Sequence[int], n: int) -> None:
    for source in sources:
        if not 0 <= source < n:
            raise NodeRangeError(f"source {source} out of range")


def dijkstra(
    graph: Graph,
    source: int,
    *,
    targets: Optional[Iterable[int]] = None,
) -> Tuple[List[float], List[int]]:
    """Single-source Dijkstra.

    Returns ``(dist, parent)`` where ``parent[v]`` is the predecessor of
    ``v`` on a shortest path from ``source`` (``-1`` for the source and
    unreached nodes).  If ``targets`` is given the search stops early
    once all targets are settled.
    """
    return multi_source_dijkstra(graph, [source], targets=targets)


def dijkstra_csr(
    csr: CSRGraph,
    source: int,
    *,
    targets: Optional[Iterable[int]] = None,
) -> Tuple[List[float], List[int]]:
    """Single-source Dijkstra over a frozen CSR snapshot."""
    return multi_source_dijkstra_csr(csr, [source], targets=targets)


def multi_source_dijkstra(
    graph: Graph,
    sources: Sequence[int],
    *,
    targets: Optional[Iterable[int]] = None,
) -> Tuple[List[float], List[int]]:
    """Dijkstra from a set of sources, all starting at distance 0.

    This is the paper's virtual-node search: the virtual node ``ṽ_p`` is
    connected to every node of ``V_p`` with weight 0, so
    ``dist(v, ṽ_p) = min_{u in V_p} dist(v, u)``.

    ``parent[v]`` points one hop toward the nearest source; walking
    parents from ``v`` reproduces the shortest path the feasible-tree
    construction unions together.

    Dispatches to :func:`multi_source_dijkstra_csr` when the graph is
    frozen (``graph.freeze()``); out-of-range sources raise
    :class:`~repro.errors.NodeRangeError` (a :class:`GraphError` that
    still subclasses ``IndexError`` for backwards compatibility).
    """
    snapshot = graph.snapshot()
    if snapshot is not None:
        return multi_source_dijkstra_csr(snapshot, sources, targets=targets)
    return multi_source_dijkstra_legacy(graph, sources, targets=targets)


def multi_source_dijkstra_legacy(
    graph: Graph,
    sources: Sequence[int],
    *,
    targets: Optional[Iterable[int]] = None,
) -> Tuple[List[float], List[int]]:
    """The adjacency-list reference kernel (binary heap, lazy deletion)."""
    n = graph.num_nodes
    _check_sources(sources, n)
    dist: List[float] = [INF] * n
    parent: List[int] = [-1] * n
    adjacency = graph.adjacency()

    heap: List[Tuple[float, int]] = []
    for source in sources:
        if dist[source] != 0.0:
            dist[source] = 0.0
            heappush(heap, (0.0, source))

    remaining = set(targets) if targets is not None else None
    if remaining is not None:
        remaining = {t for t in remaining if dist[t] != 0.0}

    while heap:
        d, u = heappop(heap)
        if d > dist[u]:
            continue  # stale entry
        if remaining is not None:
            remaining.discard(u)
            if not remaining:
                break
        for v, weight in adjacency[u]:
            nd = d + weight
            if nd < dist[v]:
                dist[v] = nd
                parent[v] = u
                heappush(heap, (nd, v))
    return dist, parent


def multi_source_dijkstra_csr(
    csr: CSRGraph,
    sources: Sequence[int],
    *,
    targets: Optional[Iterable[int]] = None,
) -> Tuple[List[float], List[int]]:
    """Multi-source Dijkstra over the frozen snapshot.

    Uses Dial's bucket queue when the snapshot's weights are small
    integers (exact integer arithmetic, no per-push tuple allocation),
    and the binary-heap kernel over the snapshot's immutable adjacency
    views otherwise.  Output is identical to the legacy kernel.
    """
    n = csr.num_nodes
    _check_sources(sources, n)
    if csr.int_adjacency is not None:
        return _msd_dial(csr, sources, targets)
    return _msd_heap(csr, sources, targets)


def _msd_heap(
    csr: CSRGraph,
    sources: Sequence[int],
    targets: Optional[Iterable[int]],
) -> Tuple[List[float], List[int]]:
    n = csr.num_nodes
    dist: List[float] = [INF] * n
    parent: List[int] = [-1] * n
    adjacency = csr.adjacency
    push = heappush
    pop = heappop

    heap: List[Tuple[float, int]] = []
    for source in sources:
        if dist[source] != 0.0:
            dist[source] = 0.0
            push(heap, (0.0, source))

    remaining = set(targets) if targets is not None else None
    if remaining is not None:
        remaining = {t for t in remaining if dist[t] != 0.0}

    while heap:
        d, u = pop(heap)
        if d > dist[u]:
            continue
        if remaining is not None:
            remaining.discard(u)
            if not remaining:
                break
        for v, weight in adjacency[u]:
            nd = d + weight
            if nd < dist[v]:
                dist[v] = nd
                parent[v] = u
                push(heap, (nd, v))
    return dist, parent


def _msd_dial(
    csr: CSRGraph,
    sources: Sequence[int],
    targets: Optional[Iterable[int]],
) -> Tuple[List[float], List[int]]:
    """Dial's algorithm: bucket per integer distance, lazy stale check.

    Distances are exact ints while the search runs and are converted to
    the float table the rest of the package expects on the way out
    (every produced value is integral, so the conversion is lossless).
    """
    n = csr.num_nodes
    dist: List[float] = [INF] * n  # holds ints while searching
    parent: List[int] = [-1] * n
    adjacency = csr.int_adjacency

    seeds: List[int] = []
    for source in sources:
        if dist[source] != 0:
            dist[source] = 0
            seeds.append(source)

    remaining = set(targets) if targets is not None else None
    if remaining is not None:
        remaining = {t for t in remaining if dist[t] != 0}

    buckets: List[List[int]] = [seeds]
    num_buckets = 1
    d = 0
    while d < num_buckets:
        # A zero-weight relaxation appends to the bucket currently being
        # iterated; Python's list iterator picks the new entries up, so
        # same-distance cascades settle within this round.
        for u in buckets[d]:
            if dist[u] != d:
                continue  # stale entry
            if remaining is not None:
                remaining.discard(u)
                if not remaining:
                    return _dial_finish(dist, parent)
            for v, w in adjacency[u]:
                nd = d + w
                if nd < dist[v]:
                    dist[v] = nd
                    parent[v] = u
                    while nd >= num_buckets:
                        buckets.append([])
                        num_buckets += 1
                    buckets[nd].append(v)
        buckets[d] = ()  # release settled bucket memory early
        d += 1
    return _dial_finish(dist, parent)


def _dial_finish(
    dist: List[float], parent: List[int]
) -> Tuple[List[float], List[int]]:
    inf = INF
    return [x if x is inf else float(x) for x in dist], parent


def reconstruct_path(parent: Sequence[int], node: int) -> List[int]:
    """Walk ``parent`` pointers from ``node`` back to a source.

    Returns the node sequence ``[node, ..., source]``.  The caller must
    ensure ``node`` was reached (``dist[node] < inf``), otherwise the
    result is just ``[node]``.
    """
    path = [node]
    current = node
    seen = {node}
    while parent[current] != -1:
        current = parent[current]
        if current in seen:  # pragma: no cover - corrupted parent array
            raise ValueError("cycle in parent pointers")
        seen.add(current)
        path.append(current)
    return path


def path_edges_to_source(
    parent: Sequence[int], node: int
) -> List[Tuple[int, int]]:
    """Edges (as ``(u, v)`` pairs) along the parent walk from ``node``."""
    edges: List[Tuple[int, int]] = []
    current = node
    while parent[current] != -1:
        nxt = parent[current]
        edges.append((current, nxt))
        current = nxt
    return edges


def label_enhanced_distances(
    graph: Graph,
    groups: Sequence[Sequence[int]],
) -> List[List[float]]:
    """All-pairs distances between virtual label nodes, Section 4.1 style.

    ``groups[i]`` is the node set ``V_{p_i}`` of the i-th query label.
    Returns a ``k × k`` matrix ``D`` with ``D[i][j] = dist(ṽ_i, ṽ_j)`` in
    the *label-enhanced* graph (every virtual node present at once, each
    attached with zero-weight edges).

    Implementation: one Dijkstra per source label over the original
    graph, augmented with "teleport" relaxations — whenever a node of
    group ``q`` is settled at distance ``d``, the virtual node ``ṽ_q``
    is reached at ``d``, and all other members of ``V_q`` are relaxed to
    ``d``.  This matches Dijkstra on the enhanced graph exactly.

    Dispatches to :func:`label_enhanced_distances_csr` when the graph
    carries a frozen snapshot.
    """
    snapshot = graph.snapshot()
    if snapshot is not None:
        return label_enhanced_distances_csr(snapshot, groups)
    return label_enhanced_distances_legacy(graph, groups)


def label_enhanced_distances_legacy(
    graph: Graph,
    groups: Sequence[Sequence[int]],
) -> List[List[float]]:
    """The adjacency-list reference implementation (binary heap)."""
    k = len(groups)
    n = graph.num_nodes
    adjacency = graph.adjacency()

    # node -> list of group indexes it belongs to
    membership: List[List[int]] = [[] for _ in range(n)]
    for gi, members in enumerate(groups):
        for node in members:
            membership[node].append(gi)

    result: List[List[float]] = []
    for src in range(k):
        dist: List[float] = [INF] * n
        group_dist: List[float] = [INF] * k
        group_expanded = [False] * k
        group_dist[src] = 0.0

        heap: List[Tuple[float, int]] = []
        for node in groups[src]:
            if dist[node] > 0.0:
                dist[node] = 0.0
                heappush(heap, (0.0, node))

        while heap:
            d, u = heappop(heap)
            if d > dist[u]:
                continue
            # Settle u: record/relax every virtual node u belongs to.
            for gi in membership[u]:
                if d < group_dist[gi]:
                    group_dist[gi] = d
                if not group_expanded[gi]:
                    group_expanded[gi] = True
                    # Teleport: every member of group gi is reachable at d.
                    for other in groups[gi]:
                        if d < dist[other]:
                            dist[other] = d
                            heappush(heap, (d, other))
            for v, weight in adjacency[u]:
                nd = d + weight
                if nd < dist[v]:
                    dist[v] = nd
                    heappush(heap, (nd, v))

        # A group may be unreachable (disconnected graph): keep inf.
        result.append(group_dist)
    # Symmetrize against floating noise (the metric is symmetric).
    for i in range(k):
        for j in range(i + 1, k):
            best = min(result[i][j], result[j][i])
            result[i][j] = best
            result[j][i] = best
    return result


def label_enhanced_distances_csr(
    csr: CSRGraph,
    groups: Sequence[Sequence[int]],
) -> List[List[float]]:
    """Label-enhanced virtual-node distances over the frozen snapshot.

    Same teleport-augmented Dijkstra as the legacy kernel; on integer
    snapshots the bucket queue replaces the heap (teleports are
    zero-weight relaxations, i.e. same-bucket appends that the running
    bucket scan picks up).
    """
    k = len(groups)
    n = csr.num_nodes
    for members in groups:
        _check_sources(members, n)

    membership: List[Sequence[int]] = [()] * n
    for gi, members in enumerate(groups):
        for node in members:
            current = membership[node]
            membership[node] = (*current, gi) if current else (gi,)

    int_adjacency = csr.int_adjacency
    result: List[List[float]] = []
    for src in range(k):
        if int_adjacency is not None:
            group_dist = _led_dial(csr, groups, membership, src)
        else:
            group_dist = _led_heap(csr, groups, membership, src)
        result.append(group_dist)
    for i in range(k):
        for j in range(i + 1, k):
            best = min(result[i][j], result[j][i])
            result[i][j] = best
            result[j][i] = best
    return result


def _led_heap(
    csr: CSRGraph,
    groups: Sequence[Sequence[int]],
    membership: Sequence[Sequence[int]],
    src: int,
) -> List[float]:
    n = csr.num_nodes
    k = len(groups)
    adjacency = csr.adjacency
    dist: List[float] = [INF] * n
    group_dist: List[float] = [INF] * k
    group_expanded = [False] * k
    group_dist[src] = 0.0

    heap: List[Tuple[float, int]] = []
    for node in groups[src]:
        if dist[node] > 0.0:
            dist[node] = 0.0
            heappush(heap, (0.0, node))

    while heap:
        d, u = heappop(heap)
        if d > dist[u]:
            continue
        for gi in membership[u]:
            if d < group_dist[gi]:
                group_dist[gi] = d
            if not group_expanded[gi]:
                group_expanded[gi] = True
                for other in groups[gi]:
                    if d < dist[other]:
                        dist[other] = d
                        heappush(heap, (d, other))
        for v, weight in adjacency[u]:
            nd = d + weight
            if nd < dist[v]:
                dist[v] = nd
                heappush(heap, (nd, v))
    return group_dist


def _led_dial(
    csr: CSRGraph,
    groups: Sequence[Sequence[int]],
    membership: Sequence[Sequence[int]],
    src: int,
) -> List[float]:
    n = csr.num_nodes
    k = len(groups)
    adjacency = csr.int_adjacency
    dist: List[float] = [INF] * n  # ints while searching
    group_dist: List[float] = [INF] * k
    group_expanded = [False] * k
    group_dist[src] = 0

    seeds: List[int] = []
    for node in groups[src]:
        if dist[node] != 0:
            dist[node] = 0
            seeds.append(node)

    buckets: List[List[int]] = [seeds]
    num_buckets = 1
    d = 0
    while d < num_buckets:
        bucket = buckets[d]
        for u in bucket:
            if dist[u] != d:
                continue
            for gi in membership[u]:
                if d < group_dist[gi]:
                    group_dist[gi] = d
                if not group_expanded[gi]:
                    group_expanded[gi] = True
                    # Teleport = zero-weight relaxation: append to the
                    # bucket being scanned; the iterator sees it.
                    for other in groups[gi]:
                        if d < dist[other]:
                            dist[other] = d
                            bucket.append(other)
            for v, w in adjacency[u]:
                nd = d + w
                if nd < dist[v]:
                    dist[v] = nd
                    while nd >= num_buckets:
                        buckets.append([])
                        num_buckets += 1
                    buckets[nd].append(v)
        buckets[d] = ()
        d += 1
    inf = INF
    return [x if x is inf else float(x) for x in group_dist]
