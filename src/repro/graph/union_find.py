"""Disjoint-set (union-find) structure with path compression + union by rank.

Used by Kruskal's MST (feasible-tree construction runs one MST per popped
DP state, so this is on a warm path) and by the connectivity validator.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable

__all__ = ["UnionFind"]


class UnionFind:
    """Disjoint sets over arbitrary hashable items (auto-created on use).

    >>> uf = UnionFind()
    >>> uf.union(1, 2)
    True
    >>> uf.union(2, 1)
    False
    >>> uf.connected(1, 2)
    True
    """

    __slots__ = ("_parent", "_rank", "_components")

    def __init__(self, items: Iterable[Hashable] = ()) -> None:
        self._parent: Dict[Hashable, Hashable] = {}
        self._rank: Dict[Hashable, int] = {}
        self._components = 0
        for item in items:
            self.add(item)

    def add(self, item: Hashable) -> None:
        """Register ``item`` as its own singleton set (no-op if present)."""
        if item not in self._parent:
            self._parent[item] = item
            self._rank[item] = 0
            self._components += 1

    def find(self, item: Hashable) -> Hashable:
        """Return the canonical representative of ``item``'s set."""
        self.add(item)
        parent = self._parent
        root = item
        while parent[root] != root:
            root = parent[root]
        # Path compression.
        while parent[item] != root:
            parent[item], item = root, parent[item]
        return root

    def union(self, a: Hashable, b: Hashable) -> bool:
        """Merge the sets of ``a`` and ``b``; return True if they were separate."""
        root_a = self.find(a)
        root_b = self.find(b)
        if root_a == root_b:
            return False
        rank = self._rank
        if rank[root_a] < rank[root_b]:
            root_a, root_b = root_b, root_a
        self._parent[root_b] = root_a
        if rank[root_a] == rank[root_b]:
            rank[root_a] += 1
        self._components -= 1
        return True

    def connected(self, a: Hashable, b: Hashable) -> bool:
        """Whether ``a`` and ``b`` are in the same set."""
        return self.find(a) == self.find(b)

    @property
    def num_components(self) -> int:
        """Number of disjoint sets among registered items."""
        return self._components

    def __len__(self) -> int:
        return len(self._parent)

    def __contains__(self, item: Hashable) -> bool:
        return item in self._parent
