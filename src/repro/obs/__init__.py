"""repro.obs — process-wide metrics and observability.

The registry (:mod:`repro.obs.registry`) holds labeled
Counter/Gauge/Histogram families behind per-metric locks and renders
the Prometheus text exposition format.  The inventory of every metric
the serving stack emits lives in :mod:`repro.obs.instruments`, and
:mod:`repro.obs.http` serves the exposition over a minimal HTTP
responder on the server's event loop (``repro serve --metrics-port``).

Quick look at what the process has done so far::

    from repro.obs import get_registry
    print(get_registry().render_exposition())
"""

from .registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    parse_exposition,
    DEFAULT_LATENCY_BUCKETS,
    EPSILON_BUCKETS,
)
from . import instruments
from .instruments import inventory, record_query_trace, register_all
from .http import start_metrics_server

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "parse_exposition",
    "instruments",
    "inventory",
    "record_query_trace",
    "register_all",
    "start_metrics_server",
    "DEFAULT_LATENCY_BUCKETS",
    "EPSILON_BUCKETS",
]
