"""A minimal asyncio HTTP responder for the metrics exposition.

``repro serve --metrics-port N`` mounts this next to the query server
on the same event loop: GET ``/metrics`` (or ``/``) returns the
registry's Prometheus text exposition.  It speaks just enough
HTTP/1.0 for ``curl`` and a Prometheus scraper — read the request
head, answer, close — which keeps the dependency surface at zero.
"""

from __future__ import annotations

import asyncio
from typing import Optional

from .registry import MetricsRegistry, get_registry

__all__ = ["start_metrics_server", "CONTENT_TYPE"]

#: The Prometheus text exposition content type.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_MAX_HEAD_LINES = 100
_READ_TIMEOUT = 5.0


def _response(status: str, content_type: str, body: bytes) -> bytes:
    head = (
        f"HTTP/1.0 {status}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        "Connection: close\r\n"
        "\r\n"
    )
    return head.encode("ascii") + body


async def _handle(
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
    registry: MetricsRegistry,
) -> None:
    try:
        request_line = await asyncio.wait_for(
            reader.readline(), timeout=_READ_TIMEOUT
        )
        parts = request_line.decode("latin-1", "replace").split()
        # Drain the header block so well-behaved clients see a clean close.
        for _ in range(_MAX_HEAD_LINES):
            line = await asyncio.wait_for(reader.readline(), timeout=_READ_TIMEOUT)
            if not line or line in (b"\r\n", b"\n"):
                break
        if len(parts) < 2 or parts[0] not in ("GET", "HEAD"):
            writer.write(
                _response("405 Method Not Allowed", "text/plain", b"GET only\n")
            )
        elif parts[1].split("?", 1)[0] not in ("/", "/metrics"):
            writer.write(
                _response("404 Not Found", "text/plain", b"try /metrics\n")
            )
        else:
            body = registry.render_exposition().encode("utf-8")
            if parts[0] == "HEAD":
                body = b""
            writer.write(_response("200 OK", CONTENT_TYPE, body))
        await writer.drain()
    except (asyncio.TimeoutError, ConnectionError, OSError):
        pass
    finally:
        try:
            writer.close()
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


async def start_metrics_server(
    host: str,
    port: int,
    registry: Optional[MetricsRegistry] = None,
) -> asyncio.AbstractServer:
    """Bind the exposition endpoint; ``port=0`` picks a free port.

    Returns the ``asyncio.AbstractServer``; the bound port is
    ``server.sockets[0].getsockname()[1]``.  Close it with
    ``server.close(); await server.wait_closed()``.
    """
    reg = registry if registry is not None else get_registry()

    async def handler(reader, writer):
        await _handle(reader, writer, reg)

    return await asyncio.start_server(handler, host, port)
