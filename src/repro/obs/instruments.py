"""The canonical metric inventory and its recording helpers.

Every metric family the serving stack emits is declared here, in one
place, through a tiny accessor function per family.  Layers never
invent names inline: the executor, index, store, resilience, and
server modules all call these helpers, so the exposition, the STATS
frame, and the docs table can never drift apart.

The no-drift guarantee for query counters comes from a single
recording point: :func:`record_query_trace` folds one finished
``QueryTrace`` into the registry after the executor resolves an
outcome.  Because the trace is the same object the legacy accounting
reports, registry totals are sums over traces *by construction* —
there is no second code path that could disagree.  (Direct
``GraphIndex.execute`` calls outside an executor are intentionally
not counted: these are serving-stack metrics.)
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Tuple

from .registry import (
    DEFAULT_LATENCY_BUCKETS,
    EPSILON_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
)

__all__ = [
    "record_query_trace",
    "record_trace_dropped",
    "record_snapshot_build",
    "record_warm_loads",
    "record_result_cache_event",
    "set_breaker_state",
    "register_all",
    "inventory",
    "BREAKER_STATE_VALUES",
]

#: Numeric encoding of circuit-breaker states for the gauge.
BREAKER_STATE_VALUES: Dict[str, int] = {"closed": 0, "half_open": 1, "open": 2}


def _reg(registry: Optional[MetricsRegistry]) -> MetricsRegistry:
    return registry if registry is not None else get_registry()


# --------------------------------------------------------------------------
# Family accessors.  One function per family; each is get-or-create so
# hot paths may call them freely (a dict lookup under the registry lock).

def queries_total(registry: Optional[MetricsRegistry] = None) -> Counter:
    return _reg(registry).counter(
        "gst_queries_total",
        "Queries resolved by the executor, by outcome status and algorithm.",
        ("status", "algorithm"),
    )


def query_seconds(registry: Optional[MetricsRegistry] = None) -> Histogram:
    return _reg(registry).histogram(
        "gst_query_seconds",
        "End-to-end wall seconds per executor query.",
        buckets=DEFAULT_LATENCY_BUCKETS,
    )


def stage_seconds(registry: Optional[MetricsRegistry] = None) -> Histogram:
    return _reg(registry).histogram(
        "gst_query_stage_seconds",
        "Per-stage wall seconds (context_build/bounds_build/search/feasible).",
        ("stage",),
        buckets=DEFAULT_LATENCY_BUCKETS,
    )


def epsilon_at_exit(registry: Optional[MetricsRegistry] = None) -> Histogram:
    return _reg(registry).histogram(
        "gst_epsilon_at_exit",
        "Proven (ratio - 1) optimality gap when a query returned ok.",
        buckets=EPSILON_BUCKETS,
    )


def engine_events(registry: Optional[MetricsRegistry] = None) -> Counter:
    return _reg(registry).counter(
        "gst_engine_events_total",
        "Engine search-loop events summed over finished queries "
        "(popped/pushed/expanded/pruned/incumbent_improved).",
        ("event",),
    )


def label_cache_events(registry: Optional[MetricsRegistry] = None) -> Counter:
    return _reg(registry).counter(
        "gst_label_cache_events_total",
        "Label-Dijkstra cache lookups during query execution.",
        ("event",),
    )


def result_cache_served(registry: Optional[MetricsRegistry] = None) -> Counter:
    return _reg(registry).counter(
        "gst_result_cache_served_total",
        "Executor queries answered from / missed by the result cache.",
        ("result",),
    )


def result_cache_events(registry: Optional[MetricsRegistry] = None) -> Counter:
    return _reg(registry).counter(
        "gst_result_cache_events_total",
        "ResultCache internal events (hit/miss/expired/eviction/insertion).",
        ("event",),
    )


def store_warm_loads(registry: Optional[MetricsRegistry] = None) -> Counter:
    return _reg(registry).counter(
        "gst_store_warm_loads_total",
        "Label distance maps loaded warm from an attached precompute store.",
    )


def snapshot_builds(registry: Optional[MetricsRegistry] = None) -> Counter:
    return _reg(registry).counter(
        "gst_snapshot_builds_total",
        "CSR snapshot builds performed by GraphIndex construction.",
    )


def snapshot_build_seconds(
    registry: Optional[MetricsRegistry] = None,
) -> Histogram:
    return _reg(registry).histogram(
        "gst_snapshot_build_seconds",
        "Wall seconds spent freezing a graph into its CSR snapshot.",
        buckets=DEFAULT_LATENCY_BUCKETS,
    )


def executor_queue_depth(registry: Optional[MetricsRegistry] = None) -> Gauge:
    return _reg(registry).gauge(
        "gst_executor_queue_depth",
        "Queries submitted to the executor and not yet resolved.",
    )


def executor_retries(registry: Optional[MetricsRegistry] = None) -> Counter:
    return _reg(registry).counter(
        "gst_executor_retries_total",
        "Retry attempts beyond the first, summed over finished queries.",
    )


def executor_degraded(registry: Optional[MetricsRegistry] = None) -> Counter:
    return _reg(registry).counter(
        "gst_executor_degraded_total",
        "Queries answered by a weaker algorithm than requested.",
    )


def admission_rejects(registry: Optional[MetricsRegistry] = None) -> Counter:
    return _reg(registry).counter(
        "gst_admission_rejects_total",
        "Queries refused by the admission controller.",
    )


def breaker_sheds(registry: Optional[MetricsRegistry] = None) -> Counter:
    return _reg(registry).counter(
        "gst_breaker_sheds_total",
        "Attempts skipped because a circuit breaker was open.",
    )


def breaker_state(registry: Optional[MetricsRegistry] = None) -> Gauge:
    return _reg(registry).gauge(
        "gst_breaker_state",
        "Circuit breaker state per algorithm (0=closed 1=half_open 2=open).",
        ("algorithm",),
    )


def traces_dropped(registry: Optional[MetricsRegistry] = None) -> Counter:
    return _reg(registry).counter(
        "gst_traces_dropped_total",
        "Trace lines dropped because the sink was already closed (drain "
        "stragglers).",
    )


def checkpoints_written(registry: Optional[MetricsRegistry] = None) -> Counter:
    return _reg(registry).counter(
        "gst_checkpoints_written_total",
        "Engine checkpoints persisted, summed over finished queries.",
    )


def queries_resumed(registry: Optional[MetricsRegistry] = None) -> Counter:
    return _reg(registry).counter(
        "gst_queries_resumed_total",
        "Queries that resumed from a persisted checkpoint.",
    )


def worker_restarts(registry: Optional[MetricsRegistry] = None) -> Counter:
    return _reg(registry).counter(
        "gst_worker_restarts_total",
        "Process-pool worker respawns, summed over finished queries.",
    )


def watchdog_kills(registry: Optional[MetricsRegistry] = None) -> Counter:
    return _reg(registry).counter(
        "gst_watchdog_kills_total",
        "Workers killed by the RSS memory watchdog, summed over queries.",
    )


def server_events(registry: Optional[MetricsRegistry] = None) -> Counter:
    return _reg(registry).counter(
        "gst_server_events_total",
        "Server lifecycle events (connections, queries, errors) by type.",
        ("event",),
    )


def server_frames(registry: Optional[MetricsRegistry] = None) -> Counter:
    return _reg(registry).counter(
        "gst_server_frames_total",
        "Wire frames by direction and frame type.",
        ("direction", "type"),
    )


def server_inflight(registry: Optional[MetricsRegistry] = None) -> Gauge:
    return _reg(registry).gauge(
        "gst_server_inflight",
        "Queries currently being served (all connections).",
    )


def server_drain_seconds(registry: Optional[MetricsRegistry] = None) -> Gauge:
    return _reg(registry).gauge(
        "gst_server_drain_seconds",
        "Wall seconds the most recent server drain took.",
    )


def fleet_workers(registry: Optional[MetricsRegistry] = None) -> Gauge:
    return _reg(registry).gauge(
        "gst_fleet_workers",
        "Persistent fleet worker processes currently provisioned.",
    )


def fleet_shm_bytes(registry: Optional[MetricsRegistry] = None) -> Gauge:
    return _reg(registry).gauge(
        "gst_fleet_shm_bytes",
        "Bytes of the shared-memory CSR segment exported to the fleet.",
    )


def fleet_attach_seconds(
    registry: Optional[MetricsRegistry] = None,
) -> Histogram:
    return _reg(registry).histogram(
        "gst_fleet_attach_seconds",
        "Wall seconds a fleet worker spent attaching and materializing "
        "the shared snapshot.",
        buckets=DEFAULT_LATENCY_BUCKETS,
    )


def fleet_queries_total(registry: Optional[MetricsRegistry] = None) -> Counter:
    return _reg(registry).counter(
        "gst_fleet_queries_total",
        "Queries delivered by fleet workers, by worker slot.",
        ("worker",),
    )


def fleet_respawns_total(
    registry: Optional[MetricsRegistry] = None,
) -> Counter:
    return _reg(registry).counter(
        "gst_fleet_respawns_total",
        "Fleet workers respawned after crashes, watchdog kills, or "
        "hard-deadline kills.",
    )


_ACCESSORS = (
    queries_total,
    query_seconds,
    stage_seconds,
    epsilon_at_exit,
    engine_events,
    label_cache_events,
    result_cache_served,
    result_cache_events,
    store_warm_loads,
    snapshot_builds,
    snapshot_build_seconds,
    executor_queue_depth,
    executor_retries,
    executor_degraded,
    admission_rejects,
    breaker_sheds,
    breaker_state,
    traces_dropped,
    checkpoints_written,
    queries_resumed,
    worker_restarts,
    watchdog_kills,
    server_events,
    server_frames,
    server_inflight,
    server_drain_seconds,
    fleet_workers,
    fleet_shm_bytes,
    fleet_attach_seconds,
    fleet_queries_total,
    fleet_respawns_total,
)


def register_all(registry: Optional[MetricsRegistry] = None) -> MetricsRegistry:
    """Materialize the full inventory (zero-valued families included).

    ``python -m repro metrics`` calls this so an idle process still
    dumps every family name with its HELP/TYPE metadata.
    """
    registry = _reg(registry)
    for accessor in _ACCESSORS:
        accessor(registry)
    return registry


def inventory(
    registry: Optional[MetricsRegistry] = None,
) -> List[Tuple[str, str, Tuple[str, ...], str]]:
    """``(name, type, labelnames, help)`` rows — the docs table source."""
    registry = register_all(registry if registry is not None else MetricsRegistry())
    rows = []
    for name in registry.names():
        metric = registry.get(name)
        rows.append((name, metric.kind, metric.labelnames, metric.help))
    return rows


# --------------------------------------------------------------------------
# Recording helpers (the instrumentation call sites)

def record_query_trace(
    trace: Any, registry: Optional[MetricsRegistry] = None
) -> None:
    """Fold one finished ``QueryTrace`` into the registry.

    Called exactly once per executor query (thread or process
    isolation), after the outcome is resolved — the single point that
    keeps registry totals equal to sums over traces.
    """
    registry = _reg(registry)
    status = trace.status or "unknown"
    algorithm = trace.algorithm or trace.requested_algorithm or "unknown"
    queries_total(registry).labels(status=status, algorithm=algorithm).inc()
    if trace.wall_seconds is not None:
        query_seconds(registry).observe(trace.wall_seconds)
    stage_hist = stage_seconds(registry)
    for stage, seconds in (trace.stages or {}).items():
        stage_hist.labels(stage=stage).observe(seconds)

    engine = engine_events(registry)
    stats = trace.stats or {}
    for event, key in (
        ("popped", "states_popped"),
        ("pushed", "states_pushed"),
        ("expanded", "states_expanded"),
        ("pruned", "states_pruned"),
        ("incumbent_improved", "incumbent_improvements"),
    ):
        count = stats.get(key, 0)
        if count:
            engine.labels(event=event).inc(count)

    caches = label_cache_events(registry)
    if trace.cache_hits:
        caches.labels(event="hit").inc(trace.cache_hits)
    if trace.cache_misses:
        caches.labels(event="miss").inc(trace.cache_misses)
    if trace.result_cache in ("hit", "miss"):
        result_cache_served(registry).labels(result=trace.result_cache).inc()

    if status == "ok":
        ratio = trace.ratio
        if ratio is not None and math.isfinite(ratio):
            epsilon_at_exit(registry).observe(max(0.0, ratio - 1.0))

    if trace.attempts and trace.attempts > 1:
        executor_retries(registry).inc(trace.attempts - 1)
    if trace.degraded:
        executor_degraded(registry).inc()
    if status == "rejected":
        admission_rejects(registry).inc()
    if trace.breaker_skips:
        breaker_sheds(registry).inc(len(trace.breaker_skips))

    if trace.checkpoints:
        checkpoints_written(registry).inc(trace.checkpoints)
    if trace.resumed_from:
        queries_resumed(registry).inc()
    if trace.worker_restarts:
        worker_restarts(registry).inc(trace.worker_restarts)
    if trace.watchdog_kills:
        watchdog_kills(registry).inc(trace.watchdog_kills)


def record_trace_dropped(registry: Optional[MetricsRegistry] = None) -> None:
    traces_dropped(registry).inc()


def record_snapshot_build(
    seconds: float, registry: Optional[MetricsRegistry] = None
) -> None:
    snapshot_builds(registry).inc()
    snapshot_build_seconds(registry).observe(seconds)


def record_warm_loads(
    count: int, registry: Optional[MetricsRegistry] = None
) -> None:
    if count:
        store_warm_loads(registry).inc(count)


def record_result_cache_event(
    event: str, amount: int = 1, registry: Optional[MetricsRegistry] = None
) -> None:
    if amount:
        result_cache_events(registry).labels(event=event).inc(amount)


def set_breaker_state(
    algorithm: str, state: str, registry: Optional[MetricsRegistry] = None
) -> None:
    breaker_state(registry).labels(algorithm=algorithm).set(
        BREAKER_STATE_VALUES.get(state, -1)
    )
