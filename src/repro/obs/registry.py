"""Process-wide metrics registry with Prometheus-text exposition.

Three primitive families — :class:`Counter`, :class:`Gauge`,
:class:`Histogram` — live in a :class:`MetricsRegistry`.  Every family
is get-or-create by name (idempotent, so call sites never coordinate),
carries its own lock (increments never contend across metrics), and
supports labels: ``counter.labels(status="ok").inc()`` resolves a
per-label-values child cached on first use.

The registry renders the standard Prometheus text exposition format
(version 0.0.4): ``# HELP`` / ``# TYPE`` comment lines followed by
sample lines, histograms as cumulative ``_bucket{le="..."}`` series
plus ``_sum`` and ``_count``.  :func:`parse_exposition` is a strict
parser for that grammar used by the tests and the CI smoke job.

A single module-level default registry (:func:`get_registry`) is the
process-wide sink every instrumented layer writes to; tests that need
isolation either construct a private ``MetricsRegistry`` or assert on
before/after deltas of the default one.
"""

from __future__ import annotations

import math
import re
import threading
from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "parse_exposition",
    "DEFAULT_LATENCY_BUCKETS",
    "EPSILON_BUCKETS",
]

_METRIC_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Fixed latency bucket boundaries (seconds).  Query solves on the
#: bundled benchmark graphs land between ~1 ms and a few seconds, so
#: the ladder is dense in that range and sparse above.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)

#: Fixed buckets for the epsilon-at-exit histogram, i.e. the proven
#: ``ratio - 1`` gap when a query returns.  0 means proven optimal.
EPSILON_BUCKETS: Tuple[float, ...] = (
    0.0, 0.001, 0.005, 0.01, 0.05, 0.1, 0.25, 0.5, 1.0, 2.0,
)


def _check_name(name: str) -> str:
    if not _METRIC_NAME_RE.match(name or ""):
        raise ValueError(f"invalid metric name: {name!r}")
    return name


def _check_labelnames(labelnames: Sequence[str]) -> Tuple[str, ...]:
    names = tuple(labelnames)
    for label in names:
        if not _LABEL_NAME_RE.match(label or ""):
            raise ValueError(f"invalid label name: {label!r}")
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate label names: {names!r}")
    return names


def _escape_label_value(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace("\n", "\\n").replace('"', '\\"')
    )


def _format_number(value: float) -> str:
    """Render a sample value the way Prometheus expects."""
    if value != value:  # NaN
        return "NaN"
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _format_le(bound: float) -> str:
    """Canonical ``le`` label value for a bucket boundary."""
    if bound == math.inf:
        return "+Inf"
    return _format_number(bound)


class _Metric:
    """Base class: a named family of labeled children behind one lock."""

    kind = "untyped"

    def __init__(self, name: str, help: str, labelnames: Sequence[str]):
        self.name = _check_name(name)
        self.help = str(help)
        self.labelnames = _check_labelnames(labelnames)
        self._lock = threading.Lock()
        self._children: Dict[Tuple[str, ...], Any] = {}

    def _make_child(self) -> Any:
        raise NotImplementedError

    def labels(self, *values: str, **kwargs: str):
        """Resolve (creating on first use) the child for a label set.

        Accepts positional values in ``labelnames`` order or keyword
        form; mixing the two is rejected.
        """
        if values and kwargs:
            raise ValueError("pass label values positionally or by name, not both")
        if kwargs:
            if set(kwargs) != set(self.labelnames):
                raise ValueError(
                    f"{self.name} expects labels {self.labelnames}, got {tuple(sorted(kwargs))}"
                )
            values = tuple(kwargs[label] for label in self.labelnames)
        if len(values) != len(self.labelnames):
            raise ValueError(
                f"{self.name} expects {len(self.labelnames)} label values, got {len(values)}"
            )
        key = tuple(str(v) for v in values)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._children[key] = self._make_child()
            return child

    def _default_child(self):
        """The unlabeled child (only valid when labelnames is empty)."""
        if self.labelnames:
            raise ValueError(f"{self.name} is labeled; call .labels(...) first")
        return self.labels()

    def _sample_items(self) -> List[Tuple[Tuple[str, ...], Any]]:
        with self._lock:
            return sorted(self._children.items())

    def samples(self) -> List[Dict[str, Any]]:
        out = []
        for key, child in self._sample_items():
            entry = child.sample()
            entry["labels"] = dict(zip(self.labelnames, key))
            out.append(entry)
        return out


class _CounterChild:
    __slots__ = ("_lock", "_value")

    def __init__(self, lock: threading.Lock):
        self._lock = lock
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters can only increase")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def sample(self) -> Dict[str, Any]:
        return {"value": self.value}


class Counter(_Metric):
    """Monotonically increasing count (rendered with a ``_total`` name)."""

    kind = "counter"

    def _make_child(self) -> _CounterChild:
        return _CounterChild(self._lock)

    def inc(self, amount: float = 1.0) -> None:
        self._default_child().inc(amount)

    def value(self, **labels: str) -> float:
        return self.labels(**labels).value


class _GaugeChild:
    __slots__ = ("_lock", "_value")

    def __init__(self, lock: threading.Lock):
        self._lock = lock
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def sample(self) -> Dict[str, Any]:
        return {"value": self.value}


class Gauge(_Metric):
    """A value that can go up and down (queue depth, breaker state)."""

    kind = "gauge"

    def _make_child(self) -> _GaugeChild:
        return _GaugeChild(self._lock)

    def set(self, value: float) -> None:
        self._default_child().set(value)

    def inc(self, amount: float = 1.0) -> None:
        self._default_child().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._default_child().dec(amount)

    def value(self, **labels: str) -> float:
        return self.labels(**labels).value


class _HistogramChild:
    __slots__ = ("_lock", "_buckets", "_counts", "_sum", "_count")

    def __init__(self, lock: threading.Lock, buckets: Tuple[float, ...]):
        self._lock = lock
        self._buckets = buckets
        self._counts = [0] * len(buckets)
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self._sum += value
            self._count += 1
            # Counts are stored per-bucket; sample() renders them as the
            # cumulative series the exposition format requires.
            for i, bound in enumerate(self._buckets):
                if value <= bound:
                    self._counts[i] += 1
                    break

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def sample(self) -> Dict[str, Any]:
        with self._lock:
            cumulative: Dict[str, float] = {}
            running = 0
            for bound, bucket_count in zip(self._buckets, self._counts):
                running += bucket_count
                cumulative[_format_le(bound)] = running
            cumulative["+Inf"] = self._count
            return {
                "count": self._count,
                "sum": self._sum,
                "buckets": cumulative,
            }


class Histogram(_Metric):
    """Fixed-bucket distribution (latencies, epsilon gaps)."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ):
        super().__init__(name, help, labelnames)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket boundary")
        if len(set(bounds)) != len(bounds):
            raise ValueError(f"duplicate bucket boundaries: {bounds!r}")
        # The implicit +Inf bucket is always appended at render time.
        self.buckets = tuple(b for b in bounds if b != math.inf)

    def _make_child(self) -> _HistogramChild:
        return _HistogramChild(self._lock, self.buckets)

    def observe(self, value: float) -> None:
        self._default_child().observe(value)


class MetricsRegistry:
    """A named collection of metrics with atomic get-or-create."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[str, _Metric] = {}

    def _get_or_create(self, cls, name: str, help: str, labelnames, **kwargs):
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if type(existing) is not cls:
                    raise ValueError(
                        f"metric {name!r} already registered as {existing.kind}"
                    )
                if existing.labelnames != tuple(labelnames):
                    raise ValueError(
                        f"metric {name!r} already registered with labels "
                        f"{existing.labelnames}, not {tuple(labelnames)}"
                    )
                return existing
            metric = cls(name, help, labelnames, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Counter:
        return self._get_or_create(Counter, name, help, labelnames)

    def gauge(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Gauge:
        return self._get_or_create(Gauge, name, help, labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(
            Histogram, name, help, labelnames, buckets=buckets
        )

    def get(self, name: str) -> Optional[_Metric]:
        with self._lock:
            return self._metrics.get(name)

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._metrics)

    def reset(self) -> None:
        """Drop every metric (tests only — live handles go stale)."""
        with self._lock:
            self._metrics.clear()

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """A cheap, JSON-safe copy of every family's current samples."""
        with self._lock:
            metrics = sorted(self._metrics.items())
        return {
            name: {
                "type": metric.kind,
                "help": metric.help,
                "labelnames": list(metric.labelnames),
                "samples": metric.samples(),
            }
            for name, metric in metrics
        }

    def render_exposition(self) -> str:
        """Prometheus text exposition format, version 0.0.4."""
        with self._lock:
            metrics = sorted(self._metrics.items())
        lines: List[str] = []
        for name, metric in metrics:
            lines.append(f"# HELP {name} {_escape_help(metric.help)}")
            lines.append(f"# TYPE {name} {metric.kind}")
            for entry in metric.samples():
                labels = entry["labels"]
                if metric.kind == "histogram":
                    for le, count in entry["buckets"].items():
                        bucket_labels = dict(labels)
                        bucket_labels["le"] = le
                        lines.append(
                            f"{name}_bucket{_render_labels(bucket_labels)} "
                            f"{_format_number(count)}"
                        )
                    lines.append(
                        f"{name}_sum{_render_labels(labels)} "
                        f"{_format_number(entry['sum'])}"
                    )
                    lines.append(
                        f"{name}_count{_render_labels(labels)} "
                        f"{_format_number(entry['count'])}"
                    )
                else:
                    lines.append(
                        f"{name}{_render_labels(labels)} "
                        f"{_format_number(entry['value'])}"
                    )
        return "\n".join(lines) + ("\n" if lines else "")


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _render_labels(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{key}="{_escape_label_value(str(value))}"'
        for key, value in labels.items()
    )
    return "{" + inner + "}"


# --------------------------------------------------------------------------
# Exposition parsing (strict; used by tests and the CI smoke job)

_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>\S+)"
    r"(?:\s+(?P<timestamp>-?\d+))?$"
)
_LABEL_PAIR_RE = re.compile(
    r'\s*(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"\s*(?:,|$)'
)
_TYPES = frozenset({"counter", "gauge", "histogram", "summary", "untyped"})


def _unescape_label_value(raw: str) -> str:
    return raw.replace("\\n", "\n").replace('\\"', '"').replace("\\\\", "\\")


def _parse_value(raw: str) -> float:
    if raw == "+Inf":
        return math.inf
    if raw == "-Inf":
        return -math.inf
    if raw == "NaN":
        return math.nan
    try:
        return float(raw)
    except ValueError:
        raise ValueError(f"invalid sample value: {raw!r}")


def parse_exposition(text: str) -> Dict[str, Dict[str, Any]]:
    """Strictly parse Prometheus text exposition format.

    Returns ``{family_name: {"type": ..., "help": ..., "samples":
    [(name, labels_dict, value), ...]}}``, raising :class:`ValueError`
    on any line that is not valid exposition syntax (the CI smoke job
    uses this as the "parses as Prometheus text" gate).
    """
    families: Dict[str, Dict[str, Any]] = {}

    def family(name: str) -> Dict[str, Any]:
        base = name
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix):
                candidate = name[: -len(suffix)]
                if candidate in families and families[candidate]["type"] == "histogram":
                    base = candidate
                    break
        return families.setdefault(
            base, {"type": "untyped", "help": "", "samples": []}
        )

    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 3 and parts[1] == "HELP":
                _check_name(parts[2])
                entry = families.setdefault(
                    parts[2], {"type": "untyped", "help": "", "samples": []}
                )
                entry["help"] = parts[3] if len(parts) > 3 else ""
            elif len(parts) >= 4 and parts[1] == "TYPE":
                _check_name(parts[2])
                if parts[3] not in _TYPES:
                    raise ValueError(
                        f"line {lineno}: unknown metric type {parts[3]!r}"
                    )
                entry = families.setdefault(
                    parts[2], {"type": "untyped", "help": "", "samples": []}
                )
                entry["type"] = parts[3]
            # Other comment lines are legal and ignored.
            continue
        match = _SAMPLE_RE.match(line)
        if not match:
            raise ValueError(f"line {lineno}: not a valid sample line: {line!r}")
        labels: Dict[str, str] = {}
        raw_labels = match.group("labels")
        if raw_labels:
            pos = 0
            while pos < len(raw_labels):
                pair = _LABEL_PAIR_RE.match(raw_labels, pos)
                if not pair:
                    raise ValueError(
                        f"line {lineno}: malformed labels: {raw_labels!r}"
                    )
                labels[pair.group("name")] = _unescape_label_value(
                    pair.group("value")
                )
                pos = pair.end()
        value = _parse_value(match.group("value"))
        family(match.group("name"))["samples"].append(
            (match.group("name"), labels, value)
        )
    return families


# --------------------------------------------------------------------------
# The process-wide default registry

_DEFAULT_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide registry every instrumented layer writes to."""
    return _DEFAULT_REGISTRY
