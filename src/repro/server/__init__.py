"""``repro.server`` — progressive GST answers over the wire.

The paper's anytime UB/LB incumbent stream, served over TCP: a
:class:`GSTServer` owns one graph index plus a query executor and
pushes a ``PROGRESS`` frame to the client for every improved incumbent
the engine reports, followed by a terminal ``RESULT``.  See
:mod:`repro.server.protocol` for the wire format, :mod:`repro.server.client`
for the blocking and asyncio client libraries, and
``python -m repro serve --help`` for the CLI entry point.
"""

from .client import AsyncGSTClient, GSTClient, StreamUpdate
from .protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    FrameDecoder,
    encode_frame,
)
from .server import DEFAULT_MAX_INFLIGHT, GSTServer, ServerStats

__all__ = [
    "GSTServer",
    "ServerStats",
    "GSTClient",
    "AsyncGSTClient",
    "StreamUpdate",
    "FrameDecoder",
    "encode_frame",
    "PROTOCOL_VERSION",
    "MAX_FRAME_BYTES",
    "DEFAULT_MAX_INFLIGHT",
]
