"""Client libraries for :mod:`repro.server`.

Two clients over the same wire protocol:

* :class:`GSTClient` — blocking sockets, no event loop required.  The
  natural fit for scripts, notebooks, and tests:

  .. code-block:: python

      with GSTClient("127.0.0.1", 7464) as client:
          for update in client.solve_stream(["a", "b", "c"]):
              print(update.ratio)          # anytime UB/LB curve
              if update.ratio <= 1.05:
                  client.cancel(update.query_id)   # good enough

* :class:`AsyncGSTClient` — asyncio streams, for embedding in an
  already-async application (``async for update in ...``).

Both yield :class:`StreamUpdate` objects — one per ``PROGRESS`` frame,
then exactly one terminal update (``update.final`` is true) carrying
the decoded ``RESULT`` payload.  Server-side failures raise
:class:`~repro.errors.RemoteQueryError` with the server's stable error
code; wire violations raise :class:`~repro.errors.ProtocolError`.
"""

from __future__ import annotations

import asyncio
import itertools
import socket
from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, Iterable, Iterator, Optional

from ..errors import ProtocolError, RemoteQueryError
from . import protocol
from .protocol import (
    MAX_FRAME_BYTES,
    FrameDecoder,
    cancel_frame,
    encode_frame,
    load_number,
    query_frame,
    stats_frame,
)

__all__ = ["GSTClient", "AsyncGSTClient", "StreamUpdate"]

_RECV_CHUNK = 1 << 16


@dataclass(frozen=True)
class StreamUpdate:
    """One event in a query's progressive answer stream.

    Every ``PROGRESS`` frame becomes a non-final update; the ``RESULT``
    frame becomes the single final one (``final=True``, ``result`` set
    to the decoded frame).  ``best_weight``/``lower_bound``/``ratio``
    are populated on both, so a consumer can treat the stream uniformly
    as the paper's anytime UB/LB curve.
    """

    query_id: Any
    elapsed: float
    best_weight: float
    lower_bound: float
    ratio: float
    final: bool = False
    status: Optional[str] = None
    result: Optional[Dict[str, Any]] = field(default=None, repr=False)


def _update_from_progress(frame: Dict[str, Any]) -> StreamUpdate:
    return StreamUpdate(
        query_id=frame.get("id"),
        elapsed=float(frame.get("elapsed", 0.0)),
        best_weight=load_number(frame.get("best_weight")),
        lower_bound=load_number(frame.get("lower_bound")) or 0.0,
        ratio=load_number(frame.get("ratio")),
    )


def _update_from_result(frame: Dict[str, Any]) -> StreamUpdate:
    stats = frame.get("stats") or {}
    return StreamUpdate(
        query_id=frame.get("id"),
        elapsed=float(stats.get("total_seconds", 0.0)),
        best_weight=load_number(frame.get("weight")),
        lower_bound=load_number(frame.get("lower_bound")) or 0.0,
        ratio=load_number(frame.get("ratio")),
        final=True,
        status=frame.get("status"),
        result=frame,
    )


def _raise_remote(frame: Dict[str, Any]) -> None:
    raise RemoteQueryError(
        frame.get("message", "server reported an error"),
        code=frame.get("code", "internal"),
        details=frame.get("details") or {},
    )


class GSTClient:
    """Blocking client for a :class:`~repro.server.GSTServer`.

    One client is one TCP connection; use it from one thread at a time
    (the protocol would interleave two concurrent streams' frames, and
    this client makes no attempt to demultiplex them).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 7464,
        *,
        timeout: Optional[float] = None,
        max_frame_bytes: int = MAX_FRAME_BYTES,
    ) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._decoder = FrameDecoder(max_frame_bytes)
        self._max_frame_bytes = max_frame_bytes
        self._frames: list = []
        self._ids = itertools.count(1)
        self._closed = False
        self.hello = self._next_frame()
        if self.hello.get("type") != protocol.HELLO:
            raise ProtocolError(
                f"expected HELLO, got {self.hello.get('type')!r}"
            )
        if self.hello.get("version") != protocol.PROTOCOL_VERSION:
            raise ProtocolError(
                f"server speaks protocol {self.hello.get('version')}, "
                f"client speaks {protocol.PROTOCOL_VERSION}"
            )

    # ------------------------------------------------------------------
    def _next_frame(self) -> Dict[str, Any]:
        while not self._frames:
            data = self._sock.recv(_RECV_CHUNK)
            if not data:
                raise ProtocolError("server closed the connection")
            self._frames.extend(self._decoder.feed(data))
        return self._frames.pop(0)

    def _send(self, frame: Dict[str, Any]) -> None:
        if self._closed:
            raise ProtocolError("client is closed")
        self._sock.sendall(
            encode_frame(frame, max_frame_bytes=self._max_frame_bytes)
        )

    # ------------------------------------------------------------------
    def solve_stream(
        self,
        labels: Iterable[Hashable],
        *,
        algorithm: Optional[str] = None,
        epsilon: Optional[float] = None,
        time_limit: Optional[float] = None,
        max_states: Optional[int] = None,
        query_id=None,
    ) -> Iterator[StreamUpdate]:
        """Stream a query's anytime answer: PROGRESS updates, then RESULT.

        Yields a :class:`StreamUpdate` per improved incumbent and one
        final update for the ``RESULT`` frame.  Breaking out of the loop
        early does *not* cancel the server-side search — call
        :meth:`cancel` (or close the client) for that.
        """
        if query_id is None:
            query_id = next(self._ids)
        self._send(
            query_frame(
                query_id,
                labels,
                algorithm=algorithm,
                epsilon=epsilon,
                time_limit=time_limit,
                max_states=max_states,
            )
        )
        while True:
            frame = self._next_frame()
            if frame.get("id") != query_id:
                continue  # stale frame from an abandoned earlier stream
            frame_type = frame.get("type")
            if frame_type == protocol.PROGRESS:
                yield _update_from_progress(frame)
            elif frame_type == protocol.RESULT:
                yield _update_from_result(frame)
                return
            elif frame_type == protocol.ERROR:
                _raise_remote(frame)
            else:
                raise ProtocolError(
                    f"unexpected frame type {frame_type!r} mid-stream"
                )

    def solve(self, labels: Iterable[Hashable], **kwargs) -> StreamUpdate:
        """Block until the final answer (drains the progress stream)."""
        update = None
        for update in self.solve_stream(labels, **kwargs):
            pass
        assert update is not None and update.final
        return update

    def cancel(self, query_id) -> None:
        """Fire the server-side cancellation token of ``query_id``.

        The engine stops within its bounded pop interval and the stream
        still terminates with a ``RESULT`` (status ``"cancelled"``,
        carrying the best incumbent) or an ``ERROR code="cancelled"``
        if no feasible answer existed yet.
        """
        self._send(cancel_frame(query_id))

    def stats(self) -> Dict[str, Any]:
        """Fetch the server's STATS frame: counters + registry snapshot.

        Returns the raw frame dict — ``frame["server"]`` is the
        per-server counter dict, ``frame["metrics"]`` the process-wide
        :mod:`repro.obs` registry snapshot, ``frame["inflight"]`` the
        number of queries currently executing.  Call it between
        queries: frames belonging to abandoned earlier streams are
        skipped while waiting for the STATS response.
        """
        request_id = next(self._ids)
        self._send(stats_frame(request_id))
        while True:
            frame = self._next_frame()
            if frame.get("type") == protocol.STATS:
                return frame

    def close(self) -> None:
        """Close the connection; the server cancels anything in flight."""
        if not self._closed:
            self._closed = True
            try:
                self._sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            self._sock.close()

    def __enter__(self) -> "GSTClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class AsyncGSTClient:
    """Asyncio client for a :class:`~repro.server.GSTServer`.

    .. code-block:: python

        client = await AsyncGSTClient.connect("127.0.0.1", 7464)
        async for update in client.solve_stream(["a", "b"]):
            ...
        await client.close()
    """

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        *,
        max_frame_bytes: int = MAX_FRAME_BYTES,
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._decoder = FrameDecoder(max_frame_bytes)
        self._max_frame_bytes = max_frame_bytes
        self._frames: list = []
        self._ids = itertools.count(1)
        self.hello: Optional[Dict[str, Any]] = None

    @classmethod
    async def connect(
        cls,
        host: str = "127.0.0.1",
        port: int = 7464,
        *,
        max_frame_bytes: int = MAX_FRAME_BYTES,
    ) -> "AsyncGSTClient":
        reader, writer = await asyncio.open_connection(host, port)
        client = cls(reader, writer, max_frame_bytes=max_frame_bytes)
        client.hello = await client._next_frame()
        if client.hello.get("type") != protocol.HELLO:
            raise ProtocolError(
                f"expected HELLO, got {client.hello.get('type')!r}"
            )
        return client

    async def _next_frame(self) -> Dict[str, Any]:
        while not self._frames:
            data = await self._reader.read(_RECV_CHUNK)
            if not data:
                raise ProtocolError("server closed the connection")
            self._frames.extend(self._decoder.feed(data))
        return self._frames.pop(0)

    async def _send(self, frame: Dict[str, Any]) -> None:
        self._writer.write(
            encode_frame(frame, max_frame_bytes=self._max_frame_bytes)
        )
        await self._writer.drain()

    async def solve_stream(
        self,
        labels: Iterable[Hashable],
        *,
        algorithm: Optional[str] = None,
        epsilon: Optional[float] = None,
        time_limit: Optional[float] = None,
        max_states: Optional[int] = None,
        query_id=None,
    ):
        """Async-iterate a query's PROGRESS updates, then its RESULT."""
        if query_id is None:
            query_id = next(self._ids)
        await self._send(
            query_frame(
                query_id,
                labels,
                algorithm=algorithm,
                epsilon=epsilon,
                time_limit=time_limit,
                max_states=max_states,
            )
        )
        while True:
            frame = await self._next_frame()
            if frame.get("id") != query_id:
                continue
            frame_type = frame.get("type")
            if frame_type == protocol.PROGRESS:
                yield _update_from_progress(frame)
            elif frame_type == protocol.RESULT:
                yield _update_from_result(frame)
                return
            elif frame_type == protocol.ERROR:
                _raise_remote(frame)
            else:
                raise ProtocolError(
                    f"unexpected frame type {frame_type!r} mid-stream"
                )

    async def solve(self, labels: Iterable[Hashable], **kwargs) -> StreamUpdate:
        update = None
        async for update in self.solve_stream(labels, **kwargs):
            pass
        assert update is not None and update.final
        return update

    async def cancel(self, query_id) -> None:
        await self._send(cancel_frame(query_id))

    async def stats(self) -> Dict[str, Any]:
        """Async twin of :meth:`GSTClient.stats`."""
        request_id = next(self._ids)
        await self._send(stats_frame(request_id))
        while True:
            frame = await self._next_frame()
            if frame.get("type") == protocol.STATS:
                return frame

    async def close(self) -> None:
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass
