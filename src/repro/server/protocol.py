"""The wire protocol of :mod:`repro.server`: length-prefixed NDJSON.

Every frame on the wire is

``[4-byte big-endian payload length][payload]``

where the payload is one UTF-8 JSON object terminated by ``\\n`` — so a
capture is simultaneously machine-parseable (by length) and
human-greppable (by line).  Each object carries a mandatory ``type``
field; everything else is frame-specific.

Frame types
-----------
``HELLO``     server → client, once per connection: protocol version,
              graph statistics, the default algorithm, and the
              per-connection concurrency limit.
``QUERY``     client → server: ``id``, ``labels``, and optional
              ``algorithm`` / ``epsilon`` / ``time_limit`` /
              ``max_states`` budget overrides.
``PROGRESS``  server → client, streamed: one frame per improved
              incumbent — ``(elapsed, best_weight, lower_bound,
              ratio)``, the paper's UB/LB curve over TCP.
``RESULT``    server → client, terminal per query: final weight,
              bounds, the answer tree, and engine counters.  ``status``
              is ``"ok"`` or ``"cancelled"`` (a cancelled query still
              carries its best incumbent — the progressive contract).
``ERROR``     server → client, terminal per query (or, with
              ``id=None``, fatal for the connection): a stable ``code``
              plus a human-readable ``message``.
``CANCEL``    client → server: fire the server-side
              :class:`~repro.core.budget.CancellationToken` of query
              ``id``; the engine stops within its bounded pop interval.
``STATS``     client → server: ask for the server's counters; the
              server answers with a STATS frame echoing the request
              ``id`` and carrying ``server`` (the per-server
              ``ServerStats`` dict), ``inflight``, and ``metrics``
              (the process-wide registry snapshot — see
              :mod:`repro.obs`).

Safety: frames larger than ``max_frame_bytes`` are rejected *from the
length prefix alone* — the codec never buffers an attacker-controlled
amount of memory — and any non-JSON payload or missing ``type`` raises
a typed :class:`~repro.errors.ProtocolError`.

:class:`FrameDecoder` is incremental: ``feed()`` it whatever chunk the
transport produced (one byte or one megabyte) and it returns every
complete frame, keeping partial bytes buffered for the next call.
"""

from __future__ import annotations

import json
import struct
from typing import Any, Dict, Iterable, List, Optional

from ..errors import ProtocolError

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_FRAME_BYTES",
    "HELLO",
    "QUERY",
    "PROGRESS",
    "RESULT",
    "ERROR",
    "CANCEL",
    "STATS",
    "FRAME_TYPES",
    "encode_frame",
    "FrameDecoder",
    "hello_frame",
    "query_frame",
    "progress_frame",
    "result_frame",
    "error_frame",
    "cancel_frame",
    "stats_frame",
    "dump_number",
    "load_number",
]

PROTOCOL_VERSION = 1

# Hard ceiling on one frame's payload.  Large enough for any realistic
# answer tree (a 1 MiB JSON tree is ~20k edges), small enough that a
# hostile length prefix cannot make the decoder reserve real memory.
MAX_FRAME_BYTES = 1 << 20

_HEADER = struct.Struct(">I")
HEADER_BYTES = _HEADER.size

HELLO = "hello"
QUERY = "query"
PROGRESS = "progress"
RESULT = "result"
ERROR = "error"
CANCEL = "cancel"
STATS = "stats"
FRAME_TYPES = frozenset({HELLO, QUERY, PROGRESS, RESULT, ERROR, CANCEL, STATS})

_INF = float("inf")


def dump_number(value: Optional[float]):
    """JSON-safe float: ``inf`` crosses the wire as the string ``"inf"``."""
    if isinstance(value, float) and value == _INF:
        return "inf"
    return value


def load_number(value) -> Optional[float]:
    """Inverse of :func:`dump_number` (``None`` stays ``None``)."""
    if value is None:
        return None
    if value == "inf":
        return _INF
    return float(value)


# ----------------------------------------------------------------------
# Encoding
# ----------------------------------------------------------------------
def encode_frame(frame: Dict[str, Any], *, max_frame_bytes: int = MAX_FRAME_BYTES) -> bytes:
    """Serialize one frame dict to its length-prefixed wire form."""
    frame_type = frame.get("type")
    if frame_type not in FRAME_TYPES:
        raise ProtocolError(f"cannot encode frame with type {frame_type!r}")
    try:
        payload = json.dumps(frame, sort_keys=True).encode("utf-8") + b"\n"
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"frame is not JSON-serializable: {exc}") from None
    if len(payload) > max_frame_bytes:
        raise ProtocolError(
            f"frame of {len(payload)} bytes exceeds the "
            f"{max_frame_bytes}-byte limit"
        )
    return _HEADER.pack(len(payload)) + payload


# ----------------------------------------------------------------------
# Incremental decoding
# ----------------------------------------------------------------------
class FrameDecoder:
    """Incremental length-prefixed NDJSON decoder.

    Feed it transport chunks of any size; it yields every complete
    frame and keeps the remainder buffered.  All violations raise
    :class:`~repro.errors.ProtocolError` — after which the decoder is
    poisoned and must be discarded (the connection is dead anyway).
    """

    def __init__(self, max_frame_bytes: int = MAX_FRAME_BYTES) -> None:
        if max_frame_bytes <= 0:
            raise ValueError("max_frame_bytes must be positive")
        self.max_frame_bytes = max_frame_bytes
        self._buffer = bytearray()

    def __len__(self) -> int:
        """Bytes currently buffered (partial frame awaiting more data)."""
        return len(self._buffer)

    def feed(self, data: bytes) -> List[Dict[str, Any]]:
        """Consume a chunk; return every frame it completed (maybe none)."""
        self._buffer.extend(data)
        frames: List[Dict[str, Any]] = []
        while True:
            if len(self._buffer) < HEADER_BYTES:
                return frames
            (length,) = _HEADER.unpack_from(self._buffer)
            # The guard fires on the prefix alone: garbage bytes decode
            # to some huge length and are rejected before any buffering.
            if length == 0 or length > self.max_frame_bytes:
                raise ProtocolError(
                    f"frame length {length} outside (0, "
                    f"{self.max_frame_bytes}]"
                )
            if len(self._buffer) < HEADER_BYTES + length:
                return frames
            payload = bytes(self._buffer[HEADER_BYTES:HEADER_BYTES + length])
            del self._buffer[:HEADER_BYTES + length]
            frames.append(self._parse(payload))

    def _parse(self, payload: bytes) -> Dict[str, Any]:
        try:
            frame = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ProtocolError(f"malformed frame payload: {exc}") from None
        if not isinstance(frame, dict):
            raise ProtocolError(
                f"frame payload must be a JSON object, got "
                f"{type(frame).__name__}"
            )
        frame_type = frame.get("type")
        if frame_type not in FRAME_TYPES:
            raise ProtocolError(f"unknown frame type {frame_type!r}")
        return frame


# ----------------------------------------------------------------------
# Frame constructors — the one place field names are spelled out.
# ----------------------------------------------------------------------
def hello_frame(
    *,
    graph: Dict[str, Any],
    algorithm: str,
    max_inflight: int,
    max_frame_bytes: int = MAX_FRAME_BYTES,
) -> Dict[str, Any]:
    return {
        "type": HELLO,
        "version": PROTOCOL_VERSION,
        "server": "repro.server",
        "graph": graph,
        "algorithm": algorithm,
        "max_inflight": max_inflight,
        "max_frame_bytes": max_frame_bytes,
    }


def query_frame(
    query_id,
    labels: Iterable,
    *,
    algorithm: Optional[str] = None,
    epsilon: Optional[float] = None,
    time_limit: Optional[float] = None,
    max_states: Optional[int] = None,
) -> Dict[str, Any]:
    frame: Dict[str, Any] = {
        "type": QUERY,
        "id": query_id,
        "labels": [str(label) for label in labels],
    }
    if algorithm is not None:
        frame["algorithm"] = algorithm
    if epsilon is not None:
        frame["epsilon"] = epsilon
    if time_limit is not None:
        frame["time_limit"] = time_limit
    if max_states is not None:
        frame["max_states"] = max_states
    return frame


def progress_frame(query_id, point) -> Dict[str, Any]:
    """One UB/LB event (a :class:`~repro.core.result.ProgressPoint`)."""
    return {
        "type": PROGRESS,
        "id": query_id,
        "elapsed": point.elapsed,
        "best_weight": dump_number(point.best_weight),
        "lower_bound": point.lower_bound,
        "ratio": dump_number(point.ratio),
    }


def result_frame(query_id, result, *, status: str = "ok") -> Dict[str, Any]:
    """Terminal answer built from a :class:`~repro.core.result.GSTResult`."""
    tree = None
    if result.tree is not None:
        tree = {
            "nodes": sorted(result.tree.nodes),
            "edges": [[u, v, w] for u, v, w in result.tree.edges],
        }
    return {
        "type": RESULT,
        "id": query_id,
        "status": status,
        "algorithm": result.algorithm,
        "weight": dump_number(result.weight),
        "lower_bound": result.lower_bound,
        "ratio": dump_number(result.ratio),
        "optimal": result.optimal,
        "tree": tree,
        "stats": {
            "states_popped": result.stats.states_popped,
            "total_seconds": result.stats.total_seconds,
            "cancelled": result.stats.cancelled,
        },
    }


def error_frame(query_id, code: str, message: str, **details) -> Dict[str, Any]:
    frame: Dict[str, Any] = {
        "type": ERROR,
        "id": query_id,
        "code": code,
        "message": message,
    }
    if details:
        frame["details"] = {k: dump_number(v) for k, v in details.items()}
    return frame


def cancel_frame(query_id) -> Dict[str, Any]:
    return {"type": CANCEL, "id": query_id}


def stats_frame(
    query_id=None,
    *,
    server: Optional[Dict[str, Any]] = None,
    metrics: Optional[Dict[str, Any]] = None,
    inflight: Optional[int] = None,
) -> Dict[str, Any]:
    """A STATS request (no payload kwargs) or response (with them)."""
    frame: Dict[str, Any] = {"type": STATS, "id": query_id}
    if server is not None:
        frame["server"] = server
    if metrics is not None:
        frame["metrics"] = metrics
    if inflight is not None:
        frame["inflight"] = inflight
    return frame
