"""The asyncio streaming query server: :class:`GSTServer`.

The paper's headline property is *progressiveness* — every solver
maintains a monotone stream of ``(elapsed, UB, LB)`` incumbents.  This
module puts that stream on the wire: a :class:`GSTServer` owns one
:class:`~repro.service.GraphIndex` plus a
:class:`~repro.service.QueryExecutor`, speaks the length-prefixed
NDJSON protocol of :mod:`repro.server.protocol` over TCP, and forwards
every improved incumbent to the client as a ``PROGRESS`` frame the
moment the engine reports it — so a remote caller gets an anytime
answer with a sound approximation guarantee at every instant, exactly
like an in-process embedder.

Threading model
---------------
Solves run on the executor's worker threads; the network runs on one
asyncio event loop.  The engine's ``on_progress`` callback fires on a
worker thread and is bridged into the loop with
``loop.call_soon_threadsafe`` — the only thread-crossing point.
``call_soon_threadsafe`` is FIFO, and the future's completion callback
is scheduled *after* the engine's final progress report, so a query's
``PROGRESS`` frames always precede its ``RESULT`` on the wire.

Resilience wiring
-----------------
The executor's whole pipeline applies unchanged: admission rejections
come back as ``ERROR code="rejected"`` (with the cost estimate), open
circuit breakers as ``code="circuit_open"``, infeasible queries as
``code="infeasible"``.  A client disconnect fires the per-query
:class:`~repro.core.budget.CancellationToken` of everything it had in
flight, so the engine stops within its bounded pop interval instead of
burning a worker for an audience that left.  Per-connection concurrency
is capped at ``max_inflight`` (``ERROR code="overloaded"`` beyond it).

Shutdown is a graceful *drain*: stop accepting connections, refuse new
``QUERY`` frames (``code="draining"``), let in-flight queries finish —
or, past ``drain_grace`` seconds, cancel them so they return (and,
when a ``checkpoint_dir`` is configured, checkpoint) their best anytime
answers — then shut the executor down, which flushes and closes the
attached :class:`~repro.service.TraceSink`.
"""

from __future__ import annotations

import asyncio
import time
from typing import Any, Dict, Optional, Set, Union

from ..core.budget import Budget, CancellationToken
from ..errors import (
    CircuitOpenError,
    InfeasibleQueryError,
    LimitExceededError,
    ProtocolError,
    QueryCancelledError,
    QueryError,
    QueryRejectedError,
)
from ..graph.graph import Graph
from ..obs import get_registry, instruments
from ..obs.http import start_metrics_server
from ..service.executor import QueryExecutor
from ..service.index import GraphIndex, QueryOutcome
from . import protocol
from .protocol import (
    MAX_FRAME_BYTES,
    FrameDecoder,
    encode_frame,
    error_frame,
    hello_frame,
    progress_frame,
    result_frame,
    stats_frame,
)

__all__ = ["GSTServer", "ServerStats", "DEFAULT_MAX_INFLIGHT"]

# Per-connection cap on concurrently running queries.  One TCP client
# is one tenant; the executor's worker pool is the shared resource this
# cap protects.
DEFAULT_MAX_INFLIGHT = 4

_READ_CHUNK = 1 << 16


class ServerStats:
    """Monotone counters the tests and the CLI status line read.

    A thin *view* over the process-wide metrics registry: every
    increment goes straight into ``gst_server_events_total{event=...}``
    and attribute reads come back as deltas against the registry
    values captured at construction.  There is exactly one underlying
    count, so this object and the exposition can never disagree — the
    tentpole's no-drift rule applied to the server's own counters.
    """

    FIELDS = (
        "connections_accepted",
        "connections_closed",
        "queries_received",
        "progress_frames_sent",
        "results_sent",
        "errors_sent",
        "queries_cancelled",
        "protocol_errors",
        "stats_frames_sent",
    )

    def __init__(self, registry=None) -> None:
        counter = instruments.server_events(registry)
        self._children = {
            field: counter.labels(event=field) for field in self.FIELDS
        }
        self._base = {
            field: child.value for field, child in self._children.items()
        }

    def inc(self, event: str, amount: int = 1) -> None:
        self._children[event].inc(amount)

    def __getattr__(self, name: str) -> int:
        # Only called when normal lookup misses: the counter fields.
        children = self.__dict__.get("_children")
        if children is not None and name in children:
            return int(children[name].value - self.__dict__["_base"][name])
        raise AttributeError(name)

    def to_dict(self) -> Dict[str, int]:
        return {field: getattr(self, field) for field in self.FIELDS}


class _Connection:
    """Per-connection state: writer, live tokens, and spawned tasks."""

    def __init__(self, writer: asyncio.StreamWriter) -> None:
        self.writer = writer
        self.inflight: Dict[Any, CancellationToken] = {}
        self.tasks: Set[asyncio.Task] = set()
        self.closing = False

    def send(self, frame_bytes: bytes) -> None:
        """Queue one whole frame (event-loop thread only)."""
        if self.closing or self.writer.is_closing():
            return
        self.writer.write(frame_bytes)


class GSTServer:
    """Serve progressive GST answers over TCP.

    Parameters
    ----------
    index:
        A :class:`~repro.service.GraphIndex` (or raw graph; an index is
        built).  Attach a store to the index *before* starting the
        server to serve warm.
    host, port:
        Bind address.  ``port=0`` picks a free port; read it back from
        :attr:`port` after :meth:`start`.
    algorithm, budget:
        Defaults applied to queries that do not override them.
    max_inflight:
        Per-connection cap on concurrently running queries.
    max_frame_bytes:
        Protocol frame-size guard (both directions).
    drain_grace:
        Seconds :meth:`drain` waits for in-flight queries before
        cancelling them (``None`` waits forever).
    metrics_port:
        When set, :meth:`start` also binds a minimal HTTP responder on
        ``(host, metrics_port)`` serving the process-wide Prometheus
        text exposition at ``/metrics`` (``0`` picks a free port; read
        it back from :attr:`metrics_port`).  Closed again by
        :meth:`drain`.
    executor:
        Bring your own configured :class:`~repro.service.QueryExecutor`
        using thread or fleet isolation.  Thread isolation streams
        PROGRESS frames (in-process callbacks); fleet isolation
        (``isolation="fleet", workers=N``) trades mid-search progress
        streaming for true multi-core throughput — a progress callback
        cannot cross a process boundary, so fleet-served queries emit
        only their final RESULT frame.  The server shuts down only
        executors it created itself.
    executor_kwargs:
        Forwarded to the internally-built executor (``max_workers``,
        ``trace_sink``, ``admission``, ``retry_policy``,
        ``breaker_policy``, ``checkpoint_dir``, ...).
    """

    def __init__(
        self,
        index: Union[Graph, GraphIndex],
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        algorithm: str = "pruneddp++",
        budget: Optional[Budget] = None,
        max_inflight: int = DEFAULT_MAX_INFLIGHT,
        max_frame_bytes: int = MAX_FRAME_BYTES,
        drain_grace: Optional[float] = None,
        metrics_port: Optional[int] = None,
        executor: Optional[QueryExecutor] = None,
        **executor_kwargs,
    ) -> None:
        if max_inflight <= 0:
            raise ValueError("max_inflight must be positive")
        self.index = GraphIndex.ensure(index)
        self.host = host
        self._requested_port = port
        self.algorithm = algorithm
        self.budget = budget
        self.max_inflight = max_inflight
        self.max_frame_bytes = max_frame_bytes
        self.drain_grace = drain_grace
        if executor is not None:
            if executor_kwargs:
                raise ValueError(
                    "pass executor kwargs or a pre-built executor, not both"
                )
            self.executor = executor
            self._owns_executor = False
        else:
            self.executor = QueryExecutor(
                self.index,
                algorithm=algorithm,
                budget=budget,
                **executor_kwargs,
            )
            self._owns_executor = True
        if self.executor.isolation not in ("thread", "fleet"):
            raise ValueError(
                "GSTServer requires isolation='thread' (in-process, with "
                "PROGRESS streaming) or isolation='fleet' (multi-core "
                "shared-memory workers, final answers only); one-shot "
                "process isolation is too expensive per connection"
            )
        self.stats = ServerStats()
        self._frames = instruments.server_frames()
        self._inflight_gauge = instruments.server_inflight()
        self._server: Optional[asyncio.base_events.Server] = None
        self._requested_metrics_port = metrics_port
        self._metrics_server: Optional[asyncio.AbstractServer] = None
        self._connections: Set[_Connection] = set()
        self._draining = False
        self._loop: Optional[asyncio.AbstractEventLoop] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def port(self) -> int:
        """The actually-bound port (resolves ``port=0``)."""
        if self._server is None:
            return self._requested_port
        return self._server.sockets[0].getsockname()[1]

    @property
    def metrics_port(self) -> Optional[int]:
        """The bound exposition port (``None`` when metrics are off)."""
        if self._metrics_server is None:
            return self._requested_metrics_port
        return self._metrics_server.sockets[0].getsockname()[1]

    @property
    def draining(self) -> bool:
        return self._draining

    @property
    def inflight_queries(self) -> int:
        """Queries currently running across all connections (gauge)."""
        return sum(len(conn.inflight) for conn in self._connections)

    async def start(self) -> None:
        """Bind and start accepting connections (returns immediately)."""
        if self._server is not None:
            raise RuntimeError("server already started")
        self._loop = asyncio.get_running_loop()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self._requested_port
        )
        if self._requested_metrics_port is not None:
            self._metrics_server = await start_metrics_server(
                self.host, self._requested_metrics_port
            )

    async def serve_forever(self) -> None:
        """Block until the server is closed (e.g. by :meth:`drain`)."""
        if self._server is None:
            await self.start()
        try:
            await self._server.serve_forever()
        except asyncio.CancelledError:
            pass

    async def drain(self, grace: Optional[float] = None) -> None:
        """Graceful shutdown: stop accepting, finish in-flight, flush.

        1. Stop accepting new connections and refuse new ``QUERY``
           frames on existing ones (``ERROR code="draining"``).
        2. Wait for in-flight queries to finish.  Past ``grace``
           seconds (default :attr:`drain_grace`) every remaining query's
           token is cancelled — engines return (and checkpoint, when
           configured) their best anytime answers, which are still
           delivered as ``RESULT status="cancelled"`` frames.
        3. Shut the executor down (``wait=True``), which flushes and
           closes its attached trace sink, then close the connections.

        Idempotent; safe to call while queries are mid-flight.
        """
        drain_started = time.perf_counter()
        self._draining = True
        grace = self.drain_grace if grace is None else grace
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        pending = {
            task for conn in self._connections for task in conn.tasks
        }
        if pending:
            done, still_running = await asyncio.wait(pending, timeout=grace)
            if still_running:
                for conn in self._connections:
                    for token in conn.inflight.values():
                        token.cancel("server draining")
                await asyncio.wait(still_running)
        if self._owns_executor:
            # shutdown(wait=True) joins worker threads and flushes/
            # closes the trace sink; run it off-loop so a slow flush
            # cannot stall frame delivery on other (already-quiesced)
            # connections.
            await asyncio.get_running_loop().run_in_executor(
                None, self.executor.shutdown
            )
        for conn in list(self._connections):
            conn.closing = True
            conn.writer.close()
        if self._metrics_server is not None:
            # The exposition dies last so a scraper can watch the drain
            # itself; it goes down with the connections.
            self._metrics_server.close()
            await self._metrics_server.wait_closed()
            self._metrics_server = None
        instruments.server_drain_seconds().set(
            time.perf_counter() - drain_started
        )

    async def __aenter__(self) -> "GSTServer":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.drain()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.stats.inc("connections_accepted")
        conn = _Connection(writer)
        self._connections.add(conn)
        try:
            self._send_frame(
                conn,
                hello_frame(
                    graph={
                        "nodes": self.index.num_nodes,
                        "edges": self.index.num_edges,
                        "labels": self.index.num_labels,
                    },
                    algorithm=self.algorithm,
                    max_inflight=self.max_inflight,
                    max_frame_bytes=self.max_frame_bytes,
                ),
            )
            await writer.drain()
            decoder = FrameDecoder(self.max_frame_bytes)
            while True:
                data = await reader.read(_READ_CHUNK)
                if not data:
                    break  # client closed its end
                try:
                    frames = decoder.feed(data)
                except ProtocolError as exc:
                    # One typed ERROR frame, then hang up: a client
                    # whose framing is broken cannot be reasoned with.
                    self.stats.inc("protocol_errors")
                    self._send_error(conn, None, "protocol", str(exc))
                    break
                for frame in frames:
                    self._frames.labels(
                        direction="received", type=frame["type"]
                    ).inc()
                    self._dispatch(conn, frame)
        except (ConnectionResetError, BrokenPipeError):
            pass  # disconnect mid-read; the finally block cleans up
        finally:
            # Client gone (or being hung up on): whatever it still had
            # in flight is searching for an audience that left.  Cancel
            # cooperatively; the engine stops within its pop bound.
            for token in conn.inflight.values():
                self.stats.inc("queries_cancelled")
                token.cancel("client disconnected")
            conn.closing = True
            if conn.tasks:
                await asyncio.gather(*conn.tasks, return_exceptions=True)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
            self._connections.discard(conn)
            self._update_inflight()
            self.stats.inc("connections_closed")

    def _update_inflight(self) -> None:
        self._inflight_gauge.set(self.inflight_queries)

    def _dispatch(self, conn: _Connection, frame: Dict[str, Any]) -> None:
        frame_type = frame["type"]
        if frame_type == protocol.QUERY:
            self.stats.inc("queries_received")
            query_id = frame.get("id")
            if self._draining:
                self._send_error(
                    conn, query_id, "draining",
                    "server is draining; no new queries accepted",
                )
                return
            if len(conn.inflight) >= self.max_inflight:
                self._send_error(
                    conn, query_id, "overloaded",
                    f"connection already has {len(conn.inflight)} queries "
                    f"in flight (max_inflight={self.max_inflight})",
                )
                return
            if query_id is None or query_id in conn.inflight:
                self._send_error(
                    conn, query_id, "bad_request",
                    "QUERY needs a fresh non-null id",
                )
                return
            labels = frame.get("labels")
            if (
                not isinstance(labels, list)
                or not labels
                or not all(isinstance(label, str) for label in labels)
            ):
                self._send_error(
                    conn, query_id, "bad_request",
                    "QUERY.labels must be a non-empty list of strings",
                )
                return
            token = CancellationToken()
            conn.inflight[query_id] = token
            self._update_inflight()
            task = asyncio.ensure_future(
                self._run_query(conn, query_id, frame, token)
            )
            conn.tasks.add(task)
            task.add_done_callback(conn.tasks.discard)
        elif frame_type == protocol.CANCEL:
            token = conn.inflight.get(frame.get("id"))
            if token is not None:
                self.stats.inc("queries_cancelled")
                token.cancel("client cancel")
            # Cancelling an unknown/finished id is a no-op, not an
            # error: the RESULT may simply have crossed the CANCEL.
        elif frame_type == protocol.STATS:
            # Answered inline on the loop: the per-server counters plus
            # a snapshot of the process-wide registry, echoing the id.
            self.stats.inc("stats_frames_sent")
            self._send_frame(
                conn,
                stats_frame(
                    frame.get("id"),
                    server=self.stats.to_dict(),
                    metrics=get_registry().snapshot(),
                    inflight=self.inflight_queries,
                ),
            )
        else:
            # HELLO/PROGRESS/RESULT/ERROR are server-to-client only.
            self._send_error(
                conn, frame.get("id"), "protocol",
                f"unexpected client frame type {frame_type!r}",
            )

    # ------------------------------------------------------------------
    # Query execution
    # ------------------------------------------------------------------
    def _query_budget(self, frame: Dict[str, Any]) -> Optional[Budget]:
        """The request's budget overrides merged over the server default."""
        epsilon = frame.get("epsilon")
        time_limit = frame.get("time_limit")
        max_states = frame.get("max_states")
        if epsilon is None and time_limit is None and max_states is None:
            return self.budget
        return Budget.coalesce(
            self.budget,
            epsilon=float(epsilon) if epsilon is not None else None,
            time_limit=float(time_limit) if time_limit is not None else None,
            max_states=int(max_states) if max_states is not None else None,
        )

    async def _run_query(
        self,
        conn: _Connection,
        query_id,
        frame: Dict[str, Any],
        token: CancellationToken,
    ) -> None:
        loop = asyncio.get_running_loop()

        on_progress = None
        if self.executor.isolation == "thread":
            # Worker thread → event loop.  FIFO scheduling keeps every
            # PROGRESS ahead of the RESULT (whose completion wakeup is
            # scheduled after the engine's last report).  Fleet workers
            # run in other processes, so fleet-served queries skip
            # PROGRESS frames and answer with their final RESULT only.
            def on_progress(point) -> None:
                loop.call_soon_threadsafe(
                    self._send_progress, conn, query_id, point
                )

        algorithm = frame.get("algorithm") or self.algorithm
        try:
            budget = self._query_budget(frame)
            future = self.executor.submit(
                frame["labels"],
                algorithm=algorithm,
                budget=budget,
                query_id=query_id,
                cancel_token=token,
                on_progress=on_progress,
            )
            outcome: QueryOutcome = await asyncio.wrap_future(future)
        except Exception as exc:  # bad budget values, shutdown races, ...
            conn.inflight.pop(query_id, None)
            self._update_inflight()
            self._send_error(conn, query_id, "bad_request", str(exc))
            return
        conn.inflight.pop(query_id, None)
        self._update_inflight()
        if outcome.ok:
            status = "cancelled" if outcome.trace.cancelled else "ok"
            self.stats.inc("results_sent")
            self._send_frame(
                conn, result_frame(query_id, outcome.result, status=status)
            )
        else:
            self._send_error(
                conn, query_id, *self._classify_error(outcome.error)
            )
        try:
            await conn.writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass

    @staticmethod
    def _classify_error(error: BaseException):
        """Map a captured exception to (code, message[, details])."""
        message = str(error)
        if isinstance(error, InfeasibleQueryError):
            return "infeasible", message
        if isinstance(error, QueryRejectedError):
            return (
                "rejected",
                message,
                {
                    "estimated_states": error.estimated_states,
                    "estimated_seconds": error.estimated_seconds,
                },
            )
        if isinstance(error, CircuitOpenError):
            return "circuit_open", message
        if isinstance(error, QueryCancelledError):
            return "cancelled", message
        if isinstance(error, LimitExceededError):
            return "limit", message
        if isinstance(error, QueryError):
            return "bad_request", message
        return "internal", f"{type(error).__name__}: {message}"

    # ------------------------------------------------------------------
    # Frame senders (event-loop thread only)
    # ------------------------------------------------------------------
    def _send_frame(self, conn: _Connection, frame: Dict[str, Any]) -> None:
        """Encode, count by type, and queue one outbound frame."""
        self._frames.labels(direction="sent", type=frame["type"]).inc()
        conn.send(encode_frame(frame, max_frame_bytes=self.max_frame_bytes))

    def _send_progress(self, conn: _Connection, query_id, point) -> None:
        if conn.closing:
            return
        self.stats.inc("progress_frames_sent")
        self._send_frame(conn, progress_frame(query_id, point))

    def _send_error(self, conn, query_id, code, message, details=None) -> None:
        self.stats.inc("errors_sent")
        details = {
            k: v for k, v in (details or {}).items() if v is not None
        }
        self._send_frame(conn, error_frame(query_id, code, message, **details))
