"""The query service: shared index, batch execution, telemetry.

This package is the production-serving layer over the paper's solvers:

* :class:`GraphIndex` — one immutable graph plus everything worth
  amortizing across queries (LRU-bounded per-label Dijkstra cache,
  label statistics, component decomposition);
* :class:`QueryExecutor` — a thread-pool batch executor over a shared
  index, with per-query error isolation, deterministic result
  ordering, and batch deadlines;
* :class:`~repro.core.budget.Budget` — the single resource-limit
  object (``time_limit`` / ``epsilon`` / ``max_states`` / ``on_limit``
  / deadline) every entry point now shares;
* :class:`QueryTrace` / :class:`TraceSink` — structured per-stage
  telemetry and its JSONL sink;
* the resilience layer (:mod:`repro.service.resilience`) —
  :class:`~repro.core.budget.CancellationToken` cooperative
  cancellation, :class:`AdmissionController` pre-flight cost gating,
  :class:`RetryPolicy` retry-with-degradation down the
  ``pruneddp++ → pruneddp → basic`` ladder, and per-algorithm
  :class:`CircuitBreaker` load shedding;
* the durability layer (:mod:`repro.service.durability`) — engine
  :class:`Checkpointer` (crash-safe checkpoint/resume of a progressive
  search's full frontier), :class:`ProcessWorkerPool` process-isolated
  execution with a memory watchdog and crash containment
  (``QueryExecutor(..., isolation="process", checkpoint_dir=...)``),
  and :func:`resume_query` to push an interrupted query to optimality;
* the fleet layer (:mod:`repro.service.fleet`) — :class:`FleetPool`
  persistent pre-forked workers attached to one shared-memory CSR
  snapshot (``QueryExecutor(..., isolation="fleet", workers=N)``):
  process isolation with true multi-core throughput, the graph mapped
  once instead of unpickled per spawn.

Typical use::

    from repro.service import GraphIndex, QueryExecutor, Budget

    index = GraphIndex(graph)
    with QueryExecutor(index, max_workers=4) as executor:
        outcomes = executor.run_batch(queries, budget=Budget(time_limit=1.0))
    for outcome in outcomes:
        if outcome.ok:
            print(outcome.result.weight, outcome.trace.stages)
"""

from ..core.budget import Budget, CancellationToken
from .durability import (
    Checkpointer,
    ProcessWorkerPool,
    WorkerPolicy,
    checkpointed_execute,
    read_checkpoint,
    resume_query,
    write_checkpoint,
)
from .fleet import FleetPool, FleetWorker
from .index import DEFAULT_MAX_CACHED_LABELS, GraphIndex, QueryOutcome
from .executor import QueryExecutor
from .resilience import (
    DEGRADATION_LADDER,
    AdmissionController,
    AdmissionDecision,
    AdmissionPolicy,
    BreakerBoard,
    BreakerPolicy,
    CircuitBreaker,
    ResiliencePipeline,
    RetryPolicy,
)
from .telemetry import STAGES, QueryTrace, TraceSink

__all__ = [
    "Budget",
    "CancellationToken",
    "GraphIndex",
    "QueryOutcome",
    "QueryExecutor",
    "QueryTrace",
    "TraceSink",
    "STAGES",
    "DEFAULT_MAX_CACHED_LABELS",
    "DEGRADATION_LADDER",
    "AdmissionController",
    "AdmissionDecision",
    "AdmissionPolicy",
    "BreakerBoard",
    "BreakerPolicy",
    "CircuitBreaker",
    "ResiliencePipeline",
    "RetryPolicy",
    "Checkpointer",
    "FleetPool",
    "FleetWorker",
    "ProcessWorkerPool",
    "WorkerPolicy",
    "checkpointed_execute",
    "read_checkpoint",
    "resume_query",
    "write_checkpoint",
]
