"""Crash-safe progressive search: checkpoints, process workers, watchdog.

The paper's progressive framework keeps a feasible incumbent and a
sound lower bound live at every moment of a search.  This module makes
that anytime state *durable* and the workers holding it *killable*:

* **Engine checkpoints** — :class:`Checkpointer` drives
  :meth:`SearchEngine.checkpoint <repro.core.engine.SearchEngine.checkpoint>`
  on a pop-count/wall-clock cadence (and on cancellation), writing the
  frontier atomically (tmp + rename) in the CRC32-framed record format
  of :mod:`repro.store.format`.  A checkpoint is bound to the CSR
  snapshot fingerprint, so it can never resume against a different
  graph; corruption, version skew, and fingerprint mismatches raise the
  typed :class:`~repro.errors.StoreError` subclasses and resume paths
  fall back to a cold solve.
* **Process-isolated execution** — :class:`ProcessWorkerPool` runs each
  solve in a forked subprocess with a supervisor loop in the parent:
  a hard kill deadline contains hangs, worker death surfaces as typed
  :class:`~repro.errors.WorkerCrashedError` instead of wedging the
  service, and crashed workers are respawned and resume their query
  from its latest checkpoint.
* **Memory watchdog** — the supervisor samples worker RSS from
  ``/proc``; a worker over budget is sent SIGTERM (its engine
  checkpoints on the resulting cooperative cancellation), then killed.
  The crash is surfaced retryable, so the executor's
  :class:`~repro.service.resilience.RetryPolicy` ladder resumes the
  query at a degraded rung instead of re-OOMing the same configuration.

Everything here is dependency-free (``/proc`` + ``multiprocessing``)
and composes with the existing service stack: the executor injects
:func:`checkpointed_execute` / :meth:`ProcessWorkerPool.execute` as the
``execute`` callable of its :class:`~repro.service.resilience.ResiliencePipeline`.
"""

from __future__ import annotations

import hashlib
import os
import signal
import threading
import time
from dataclasses import dataclass
from typing import Callable, Hashable, Iterable, Optional, Tuple, Union

from ..core.budget import Budget, CancellationToken
from ..errors import (
    ReproError,
    StoreCorruptError,
    StoreError,
    StoreFingerprintError,
    StoreVersionError,
    WorkerCrashedError,
)
from ..store.format import (
    iter_records,
    pack_json,
    read_header,
    unpack_json,
    write_header,
    write_record,
)
from .index import GraphIndex, QueryOutcome
from .telemetry import QueryTrace

__all__ = [
    "CHECKPOINT_VERSION",
    "Checkpointer",
    "ProcessWorkerPool",
    "WorkerPolicy",
    "checkpoint_path",
    "checkpointed_execute",
    "read_checkpoint",
    "resume_query",
    "write_checkpoint",
]

CHECKPOINT_VERSION = 1
CHECKPOINT_KIND = "engine-checkpoint"
CHECKPOINT_SUFFIX = ".ckpt"

# Default checkpoint cadence: whichever of the two triggers first.
DEFAULT_EVERY_POPS = 2000
DEFAULT_EVERY_SECONDS = 2.0

try:
    _PAGE_SIZE = os.sysconf("SC_PAGE_SIZE")
except (AttributeError, ValueError, OSError):  # pragma: no cover
    _PAGE_SIZE = 4096


# ----------------------------------------------------------------------
# Checkpoint files
# ----------------------------------------------------------------------
def checkpoint_path(
    directory: str, fingerprint: str, labels: Iterable[Hashable]
) -> str:
    """Deterministic checkpoint filename for one (graph, query) pair.

    One file per query identity: a crashed worker, its respawn, and a
    later ``repro resume`` all find the same path.  The digest covers
    the snapshot fingerprint and the ordered label list.
    """
    digest = hashlib.sha256()
    digest.update(fingerprint.encode("utf-8"))
    for label in labels:
        digest.update(b"\x00")
        digest.update(str(label).encode("utf-8"))
    return os.path.join(
        directory, f"query-{digest.hexdigest()[:16]}{CHECKPOINT_SUFFIX}"
    )


def checkpoint_meta(
    fingerprint: str,
    labels: Iterable[Hashable],
    algorithm: str,
    *,
    epsilon: float = 0.0,
    query_id=None,
) -> dict:
    """The meta record framed ahead of the engine state.

    ``labels`` must be JSON-serializable (strings/ints — which is what
    every loader in :mod:`repro.graph.io` produces); ``algorithm`` is
    the resolved solver key the checkpoint must be resumed under (the
    stored f-values embed that algorithm's lower bounds, so resuming
    under another rung would be unsound).
    """
    return {
        "kind": CHECKPOINT_KIND,
        "checkpoint_version": CHECKPOINT_VERSION,
        "fingerprint": fingerprint,
        "labels": list(labels),
        "algorithm": algorithm,
        "epsilon": epsilon,
        "query_id": query_id,
    }


def write_checkpoint(path: str, meta: dict, state: dict) -> str:
    """Atomically persist one engine checkpoint (tmp + rename + fsync).

    Readers either see the previous complete checkpoint or the new one,
    never a torn write — which is the whole point of checkpointing
    under crash conditions.
    """
    tmp = path + ".tmp"
    with open(tmp, "wb") as fh:
        write_header(fh)
        write_record(fh, pack_json(meta))
        write_record(fh, pack_json(state))
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    return path


def read_checkpoint(
    path: str, *, expect_fingerprint: Optional[str] = None
) -> Tuple[dict, dict]:
    """Load and validate a checkpoint file, fail-closed.

    Returns ``(meta, state)``.  Truncation and CRC mismatches raise
    :class:`~repro.errors.StoreCorruptError`, version skew raises
    :class:`~repro.errors.StoreVersionError`, and — when
    ``expect_fingerprint`` is given — a checkpoint taken against a
    different graph raises :class:`~repro.errors.StoreFingerprintError`.
    Callers catch :class:`~repro.errors.StoreError` and fall back to a
    cold solve.
    """
    what = f"checkpoint {path!r}"
    try:
        fh = open(path, "rb")
    except OSError as exc:
        raise StoreCorruptError(f"{what}: cannot open: {exc}") from None
    with fh:
        read_header(fh, what=what)
        records = iter_records(fh, what=what)
        try:
            meta = unpack_json(next(records), what=what)
        except StopIteration:
            raise StoreCorruptError(f"{what}: missing meta record") from None
        if not isinstance(meta, dict) or meta.get("kind") != CHECKPOINT_KIND:
            raise StoreCorruptError(f"{what}: not an engine checkpoint")
        version = meta.get("checkpoint_version")
        if version != CHECKPOINT_VERSION:
            raise StoreVersionError(
                f"{what}: checkpoint version {version} is not supported "
                f"(this build reads version {CHECKPOINT_VERSION})"
            )
        if (
            expect_fingerprint is not None
            and meta.get("fingerprint") != expect_fingerprint
        ):
            stored = str(meta.get("fingerprint"))[:12]
            raise StoreFingerprintError(
                f"{what}: checkpoint was taken against a different graph "
                f"(stored snapshot fingerprint {stored}…, live "
                f"{expect_fingerprint[:12]}…); it cannot be resumed here"
            )
        try:
            state = unpack_json(next(records), what=what)
        except StopIteration:
            raise StoreCorruptError(f"{what}: missing state record") from None
        if not isinstance(state, dict):
            raise StoreCorruptError(f"{what}: malformed state record")
    return meta, state


class Checkpointer:
    """Cadence-driven checkpoint writer the engine calls per iteration.

    The engine invokes :meth:`maybe_checkpoint` at the top of every pop
    loop iteration (its consistent point) and :meth:`checkpoint` when a
    cooperative cancellation fires; a write happens when either
    ``every_pops`` state pops or ``every_seconds`` wall-clock seconds
    elapsed since the last one.  ``on_write`` is an observation hook
    (tests and the chaos harness use it); ``written`` counts writes and
    lands in :attr:`QueryTrace.checkpoints
    <repro.service.telemetry.QueryTrace.checkpoints>`.
    """

    def __init__(
        self,
        path: str,
        meta: dict,
        *,
        every_pops: Optional[int] = DEFAULT_EVERY_POPS,
        every_seconds: Optional[float] = DEFAULT_EVERY_SECONDS,
        on_write: Optional[Callable[["Checkpointer"], None]] = None,
    ) -> None:
        if every_pops is not None and every_pops <= 0:
            raise ValueError("every_pops must be positive")
        if every_seconds is not None and every_seconds <= 0:
            raise ValueError("every_seconds must be positive")
        self.path = path
        self.meta = meta
        self.every_pops = every_pops
        self.every_seconds = every_seconds
        self.on_write = on_write
        self.written = 0
        self._last_pops = 0
        self._last_time = time.monotonic()

    def maybe_checkpoint(self, engine) -> bool:
        """Write a checkpoint if the cadence says one is due."""
        due = (
            self.every_pops is not None
            and engine.stats.states_popped - self._last_pops >= self.every_pops
        ) or (
            self.every_seconds is not None
            and time.monotonic() - self._last_time >= self.every_seconds
        )
        if not due:
            return False
        self.checkpoint(engine)
        return True

    def checkpoint(self, engine) -> str:
        """Write a checkpoint now, regardless of cadence."""
        write_checkpoint(self.path, self.meta, engine.checkpoint())
        self.written += 1
        self._last_pops = engine.stats.states_popped
        self._last_time = time.monotonic()
        if self.on_write is not None:
            self.on_write(self)
        return self.path

    def discard(self) -> None:
        """Remove the checkpoint file (after a proven-optimal finish)."""
        try:
            os.remove(self.path)
        except OSError:
            pass


# ----------------------------------------------------------------------
# Checkpoint-aware execution (shared by the thread backend, the process
# worker entry, and the CLI resume path)
# ----------------------------------------------------------------------
def _progressive_key(index: GraphIndex, algorithm: str, labels) -> Optional[str]:
    """Resolved solver key if it supports checkpointing, else ``None``.

    Only the shared-engine progressive solvers can checkpoint; DPBF
    (and any future off-family baseline) runs without durability rather
    than failing on an unknown keyword argument.
    """
    from ..core.algorithms import _ProgressiveSolverBase
    from ..core.solver import ALGORITHMS

    try:
        key = index.resolve_algorithm(algorithm, labels)
    except ValueError:
        return None
    return key if issubclass(ALGORITHMS[key], _ProgressiveSolverBase) else None


def checkpointed_execute(
    index: GraphIndex,
    labels: Iterable[Hashable],
    *,
    algorithm: str = "pruneddp++",
    budget: Optional[Budget] = None,
    query_id=None,
    checkpoint_dir: str,
    policy: Optional["WorkerPolicy"] = None,
    on_write: Optional[Callable[[Checkpointer], None]] = None,
    use_result_cache: bool = True,
    **solver_kwargs,
) -> QueryOutcome:
    """``index.execute`` with durability: resume, checkpoint, clean up.

    Same signature and never-raises contract as
    :meth:`GraphIndex.execute <repro.service.index.GraphIndex.execute>`.
    If ``checkpoint_dir`` holds a valid checkpoint for this (graph,
    labels) pair the search resumes from it — under the *checkpoint's*
    algorithm, whose bounds the stored f-values embed — and the trace
    records ``resumed_from``.  An unreadable checkpoint (truncated,
    CRC-flipped, version-skewed, or fingerprint-mismatched) is removed
    and the query falls back to a cold solve.  Checkpoints are written
    on the policy's cadence and on cancellation; a run that finishes
    with *proven optimality* discards its checkpoint (anytime exits
    keep it, so the query can later be resumed to optimality).
    """
    labels = tuple(labels)
    policy = policy or WorkerPolicy()
    os.makedirs(checkpoint_dir, exist_ok=True)
    fingerprint = index.snapshot.fingerprint
    path = checkpoint_path(checkpoint_dir, fingerprint, labels)
    restore_state: Optional[dict] = None
    resumed_from: Optional[str] = None
    if os.path.exists(path):
        try:
            meta, restore_state = read_checkpoint(
                path, expect_fingerprint=fingerprint
            )
            algorithm = meta["algorithm"]
            resumed_from = path
        except StoreError:
            # Fail closed, solve cold: the broken file is removed so the
            # next checkpoint write starts from a clean slate.
            restore_state = None
            try:
                os.remove(path)
            except OSError:
                pass

    key = _progressive_key(index, algorithm, labels)
    kwargs = dict(solver_kwargs)
    checkpointer: Optional[Checkpointer] = None
    if key is not None:
        epsilon = budget.epsilon if budget is not None else float(
            kwargs.get("epsilon") or 0.0
        )
        checkpointer = Checkpointer(
            path,
            checkpoint_meta(
                fingerprint,
                labels,
                key,
                epsilon=epsilon,
                query_id=query_id,
            ),
            every_pops=policy.checkpoint_every_pops,
            every_seconds=policy.checkpoint_every_seconds,
            on_write=on_write,
        )
        kwargs["checkpointer"] = checkpointer
        if restore_state is not None:
            kwargs["restore_state"] = restore_state

    outcome = index.execute(
        labels,
        algorithm=algorithm,
        budget=budget,
        query_id=query_id,
        # A resumed query is being pushed past a previous anytime exit;
        # a cached (possibly looser) answer must not shadow that.
        use_result_cache=use_result_cache and restore_state is None,
        **kwargs,
    )
    outcome.trace.resumed_from = resumed_from
    if checkpointer is not None:
        outcome.trace.checkpoints = checkpointer.written
        if outcome.ok and outcome.result is not None and outcome.result.optimal:
            checkpointer.discard()
    return outcome


def resume_query(
    index: Union[GraphIndex, "object"],
    path: str,
    *,
    budget: Optional[Budget] = None,
    query_id=None,
    policy: Optional["WorkerPolicy"] = None,
    **solver_kwargs,
) -> QueryOutcome:
    """Resume one checkpointed query to completion (the CLI's ``resume``).

    Reads the checkpoint (raising the typed
    :class:`~repro.errors.StoreError` subclasses on corruption, version
    skew, or a graph mismatch — resuming against the wrong graph is the
    one failure this layer must never paper over), then continues the
    search under the checkpoint's own algorithm and label set.  The
    default budget is unlimited: the point of resuming is to push an
    interrupted anytime answer to proven optimality.  The checkpoint is
    discarded on a proven-optimal finish and refreshed otherwise.
    """
    index = GraphIndex.ensure(index)
    policy = policy or WorkerPolicy()
    fingerprint = index.snapshot.fingerprint
    meta, state = read_checkpoint(path, expect_fingerprint=fingerprint)
    labels = tuple(meta["labels"])
    algorithm = str(meta["algorithm"])
    checkpointer = Checkpointer(
        path,
        meta,
        every_pops=policy.checkpoint_every_pops,
        every_seconds=policy.checkpoint_every_seconds,
    )
    outcome = index.execute(
        labels,
        algorithm=algorithm,
        budget=budget,
        query_id=query_id if query_id is not None else meta.get("query_id"),
        use_result_cache=False,
        checkpointer=checkpointer,
        restore_state=state,
        **solver_kwargs,
    )
    outcome.trace.resumed_from = path
    outcome.trace.checkpoints = checkpointer.written
    if outcome.ok and outcome.result is not None and outcome.result.optimal:
        checkpointer.discard()
    return outcome


# ----------------------------------------------------------------------
# Process isolation
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class WorkerPolicy:
    """Supervision knobs for :class:`ProcessWorkerPool`.

    ``max_rss_mb``
        Memory watchdog threshold: a worker whose resident set exceeds
        it is checkpoint-then-killed (``None`` disables the watchdog).
    ``poll_interval``
        Seconds between supervisor samples (pipe, liveness, RSS).
    ``kill_grace_seconds``
        How long a SIGTERM'd worker gets to checkpoint and deliver its
        anytime answer before SIGKILL.
    ``hard_timeout_seconds``
        Absolute wall-clock kill deadline per worker — the containment
        for hangs the cooperative time limit cannot reach (``None``
        disables it).
    ``max_restarts``
        How many times the pool respawns a *crashed* worker for the
        same query (resuming from its latest checkpoint) before
        surfacing :class:`~repro.errors.WorkerCrashedError` to the
        retry ladder.  Watchdog and timeout kills are never internally
        respawned — rerunning the same configuration would just die the
        same way; the ladder retries them degraded.
    ``checkpoint_every_pops`` / ``checkpoint_every_seconds``
        The engine checkpoint cadence (either trigger; ``None``
        disables that trigger).
    ``chaos_kill_after_checkpoints``
        Test/chaos hook: the first worker to write this many
        checkpoints SIGKILLs itself (exactly once per checkpoint
        directory, via an atomic marker file).  ``None`` in production.
    """

    max_rss_mb: Optional[float] = None
    poll_interval: float = 0.05
    kill_grace_seconds: float = 5.0
    hard_timeout_seconds: Optional[float] = None
    max_restarts: int = 2
    checkpoint_every_pops: Optional[int] = DEFAULT_EVERY_POPS
    checkpoint_every_seconds: Optional[float] = DEFAULT_EVERY_SECONDS
    chaos_kill_after_checkpoints: Optional[int] = None

    def __post_init__(self) -> None:
        if self.poll_interval <= 0:
            raise ValueError("poll_interval must be positive")
        if self.kill_grace_seconds < 0:
            raise ValueError("kill_grace_seconds must be >= 0")
        if self.max_restarts < 0:
            raise ValueError("max_restarts must be >= 0")


def _rss_mb(pid: int) -> Optional[float]:
    """Resident set size of ``pid`` in MiB via ``/proc`` (None if gone)."""
    try:
        with open(f"/proc/{pid}/statm", "r") as fh:
            fields = fh.read().split()
        return int(fields[1]) * _PAGE_SIZE / (1024.0 * 1024.0)
    except (OSError, ValueError, IndexError):
        return None


_CHAOS_MARKER = "chaos-killed.marker"


def _install_chaos_hook(checkpoint_dir: str, after: int):
    """One-shot self-SIGKILL after ``after`` checkpoint writes.

    The marker file is claimed with ``O_EXCL`` so exactly one worker
    per checkpoint directory dies, and its respawn (which finds the
    marker) resumes unharmed — giving tests and the CI chaos job a
    deterministic mid-search ``kill -9``.
    """
    marker = os.path.join(checkpoint_dir, _CHAOS_MARKER)

    def on_write(checkpointer: Checkpointer) -> None:
        if checkpointer.written < after:
            return
        try:
            fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            os.close(fd)
        except FileExistsError:
            return
        os.kill(os.getpid(), signal.SIGKILL)

    return on_write


def _worker_entry(
    conn,
    index: GraphIndex,
    labels,
    algorithm: str,
    budget: Optional[Budget],
    query_id,
    use_result_cache: bool,
    solver_kwargs: dict,
    checkpoint_dir: Optional[str],
    policy: WorkerPolicy,
) -> None:
    """Subprocess body: solve one query, send the outcome up the pipe.

    SIGTERM from the supervisor becomes a cooperative cancellation —
    the engine checkpoints and returns its anytime answer within a
    bounded number of pops — so both graceful shutdown and the memory
    watchdog's checkpoint-then-kill ride the existing token machinery.
    """
    token = CancellationToken()
    signal.signal(
        signal.SIGTERM,
        lambda signum, frame: token.cancel("terminated by supervisor"),
    )
    # The parent's SIGINT handling owns batch interruption; workers
    # must not die mid-write from a forwarded Ctrl-C.
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    budget = (budget or Budget()).with_cancellation(token)
    on_write = None
    if (
        policy.chaos_kill_after_checkpoints is not None
        and checkpoint_dir is not None
    ):
        on_write = _install_chaos_hook(
            checkpoint_dir, policy.chaos_kill_after_checkpoints
        )
    try:
        if checkpoint_dir is not None:
            outcome = checkpointed_execute(
                index,
                labels,
                algorithm=algorithm,
                budget=budget,
                query_id=query_id,
                checkpoint_dir=checkpoint_dir,
                policy=policy,
                on_write=on_write,
                use_result_cache=use_result_cache,
                **solver_kwargs,
            )
        else:
            outcome = index.execute(
                labels,
                algorithm=algorithm,
                budget=budget,
                query_id=query_id,
                use_result_cache=use_result_cache,
                **solver_kwargs,
            )
    except BaseException as exc:  # pragma: no cover - belt and braces
        outcome = _error_outcome(
            labels, algorithm, query_id, ReproError(f"worker failed: {exc}")
        )
    try:
        conn.send(outcome)
    except Exception as exc:
        # An unpicklable payload must not look like a crash: ship a
        # reduced outcome carrying the serialization failure instead.
        try:
            conn.send(
                _error_outcome(
                    labels,
                    algorithm,
                    query_id,
                    ReproError(f"worker could not serialize outcome: {exc}"),
                )
            )
        except Exception:
            pass
    finally:
        conn.close()


def _error_outcome(labels, algorithm, query_id, error) -> QueryOutcome:
    trace = QueryTrace(
        query_id=query_id,
        labels=tuple(labels),
        algorithm=algorithm,
        status="error",
        error=str(error),
    )
    return QueryOutcome(
        query_id=query_id,
        labels=tuple(labels),
        algorithm=algorithm,
        result=None,
        error=error,
        trace=trace,
    )


class _Attempt:
    """What one supervised subprocess run produced."""

    __slots__ = ("kind", "outcome", "exitcode")

    def __init__(self, kind: str, outcome=None, exitcode=None) -> None:
        self.kind = kind  # "delivered" | "crashed" | "watchdog" | "timeout"
        self.outcome = outcome
        self.exitcode = exitcode


class ProcessWorkerPool:
    """Process-isolated query execution with supervision and resume.

    One pool per executor; each :meth:`execute` call forks a fresh
    worker (fork start method — the index is inherited, not pickled)
    and supervises it: outcomes come back over a pipe, RSS is sampled
    against :attr:`WorkerPolicy.max_rss_mb`, a hard timeout contains
    hangs, and a worker that dies without delivering is respawned up to
    ``max_restarts`` times, resuming from its latest checkpoint.  All
    terminal containment surfaces as a failed
    :class:`~repro.service.index.QueryOutcome` carrying a typed
    :class:`~repro.errors.WorkerCrashedError` — retryable, so the
    executor's ladder can degrade-and-resume.
    """

    def __init__(
        self,
        index: GraphIndex,
        *,
        checkpoint_dir: Optional[str] = None,
        policy: Optional[WorkerPolicy] = None,
    ) -> None:
        import multiprocessing

        self.index = GraphIndex.ensure(index)
        self.checkpoint_dir = checkpoint_dir
        if checkpoint_dir is not None:
            os.makedirs(checkpoint_dir, exist_ok=True)
        self.policy = policy or WorkerPolicy()
        if "fork" not in multiprocessing.get_all_start_methods():
            raise RuntimeError(
                "process isolation requires the fork start method "
                "(POSIX); use isolation='thread' on this platform"
            )
        self._ctx = multiprocessing.get_context("fork")
        # Pre-compute everything a child might lazily derive under a
        # lock: forking a multithreaded parent copies held locks, and a
        # child deadlocking on one would burn its whole kill deadline.
        self.index.snapshot.fingerprint
        self._lock = threading.Lock()
        self._live: set = set()
        self._closed = False

    # ------------------------------------------------------------------
    def execute(
        self,
        labels: Iterable[Hashable],
        *,
        algorithm: str = "pruneddp++",
        budget: Optional[Budget] = None,
        query_id=None,
        use_result_cache: bool = True,
        **solver_kwargs,
    ) -> QueryOutcome:
        """Run one query in a supervised subprocess (never raises).

        Same contract as :meth:`GraphIndex.execute
        <repro.service.index.GraphIndex.execute>`; the executor injects
        this as the pipeline's ``execute`` callable.
        """
        labels = tuple(labels)
        restarts = 0
        watchdog_kills = 0
        while True:
            attempt = self._run_attempt(
                labels, algorithm, budget, query_id, use_result_cache,
                solver_kwargs,
            )
            if attempt.kind == "delivered":
                outcome = attempt.outcome
                outcome.trace.worker_restarts += restarts
                outcome.trace.watchdog_kills += watchdog_kills
                return outcome
            if attempt.kind == "watchdog":
                # Checkpoint-then-kill already happened (SIGTERM made
                # the engine checkpoint); do NOT respawn the same
                # configuration — it would exceed the budget again.
                # Surfacing retryable lets the ladder resume degraded.
                watchdog_kills += 1
                return self._crashed_outcome(
                    labels,
                    algorithm,
                    query_id,
                    restarts,
                    watchdog_kills,
                    reason="memory watchdog",
                    exitcode=attempt.exitcode,
                )
            if attempt.kind == "timeout":
                return self._crashed_outcome(
                    labels,
                    algorithm,
                    query_id,
                    restarts,
                    watchdog_kills,
                    reason="hard kill deadline",
                    exitcode=attempt.exitcode,
                )
            # Plain crash (kill -9, segfault, OOM-killer): respawn and
            # resume from the latest checkpoint.
            restarts += 1
            if self._closed or restarts > self.policy.max_restarts:
                return self._crashed_outcome(
                    labels,
                    algorithm,
                    query_id,
                    restarts,
                    watchdog_kills,
                    reason="crashed",
                    exitcode=attempt.exitcode,
                )

    # ------------------------------------------------------------------
    def _run_attempt(
        self, labels, algorithm, budget, query_id, use_result_cache,
        solver_kwargs,
    ) -> _Attempt:
        policy = self.policy
        recv, send = self._ctx.Pipe(duplex=False)
        # The parent's cancellation token cannot cross the fork (it is a
        # threading.Event); the child builds its own, wired to SIGTERM,
        # and the supervisor translates token → SIGTERM below.
        child_budget = budget
        if budget is not None and budget.cancel_token is not None:
            child_budget = budget.replace(cancel_token=None)
        proc = self._ctx.Process(
            target=_worker_entry,
            args=(
                send,
                self.index,
                labels,
                algorithm,
                child_budget,
                query_id,
                use_result_cache,
                solver_kwargs,
                self.checkpoint_dir,
                policy,
            ),
            daemon=True,
        )
        proc.start()
        send.close()
        with self._lock:
            self._live.add(proc)
        hard_deadline = (
            time.monotonic() + policy.hard_timeout_seconds
            if policy.hard_timeout_seconds is not None
            else None
        )
        term_deadline: Optional[float] = None
        watchdog = False
        cancelled = False
        try:
            while True:
                try:
                    has_data = recv.poll(policy.poll_interval)
                except (OSError, EOFError):  # pragma: no cover - defensive
                    has_data = False
                if has_data:
                    outcome = self._receive(recv)
                    self._reap(proc)
                    if watchdog:
                        # The checkpoint-on-cancel answer is recorded on
                        # disk; the delivery itself is superseded by the
                        # watchdog verdict.
                        return _Attempt("watchdog", exitcode=proc.exitcode)
                    if outcome is None:
                        return _Attempt("crashed", exitcode=proc.exitcode)
                    return _Attempt("delivered", outcome=outcome)
                if not proc.is_alive():
                    # Dead without a poll hit: drain any final message
                    # that raced the exit, then classify.
                    outcome = None
                    try:
                        if recv.poll(0):
                            outcome = self._receive(recv)
                    except (OSError, EOFError):
                        outcome = None
                    proc.join()
                    if watchdog:
                        return _Attempt("watchdog", exitcode=proc.exitcode)
                    if outcome is not None:
                        return _Attempt("delivered", outcome=outcome)
                    return _Attempt("crashed", exitcode=proc.exitcode)
                now = time.monotonic()
                if not cancelled and (
                    self._closed
                    or (budget is not None and budget.cancelled())
                ):
                    # Translate the parent-side token (or shutdown) into
                    # SIGTERM: the child checkpoints and returns its
                    # anytime answer within the grace window.
                    cancelled = True
                    self._terminate(proc)
                    term_deadline = now + policy.kill_grace_seconds
                if not watchdog and policy.max_rss_mb is not None:
                    rss = _rss_mb(proc.pid)
                    if rss is not None and rss > policy.max_rss_mb:
                        # Checkpoint-then-kill: SIGTERM cancels the
                        # child's token, the engine writes a final
                        # checkpoint, then the grace deadline reaps it.
                        watchdog = True
                        self._terminate(proc)
                        term_deadline = now + policy.kill_grace_seconds
                if term_deadline is not None and now >= term_deadline:
                    self._kill(proc)
                    proc.join(1.0)
                    if watchdog:
                        return _Attempt("watchdog", exitcode=proc.exitcode)
                    return _Attempt("crashed", exitcode=proc.exitcode)
                if hard_deadline is not None and now >= hard_deadline:
                    self._kill(proc)
                    proc.join(1.0)
                    return _Attempt("timeout", exitcode=proc.exitcode)
        finally:
            with self._lock:
                self._live.discard(proc)
            try:
                recv.close()
            except OSError:  # pragma: no cover - defensive
                pass
            if proc.is_alive():
                self._kill(proc)
                proc.join(1.0)

    @staticmethod
    def _receive(conn):
        try:
            return conn.recv()
        except (EOFError, OSError):
            return None
        except Exception:  # unpickling failure: treat as undelivered
            return None

    def _reap(self, proc) -> None:
        proc.join(self.policy.kill_grace_seconds)
        if proc.is_alive():  # pragma: no cover - defensive
            self._kill(proc)
            proc.join(1.0)

    @staticmethod
    def _terminate(proc) -> None:
        try:
            proc.terminate()
        except (OSError, ValueError):  # pragma: no cover - defensive
            pass

    @staticmethod
    def _kill(proc) -> None:
        try:
            proc.kill()
        except (OSError, ValueError, AttributeError):  # pragma: no cover
            pass

    # ------------------------------------------------------------------
    def _crashed_outcome(
        self,
        labels,
        algorithm,
        query_id,
        restarts,
        watchdog_kills,
        *,
        reason: str,
        exitcode,
    ) -> QueryOutcome:
        error = WorkerCrashedError(
            f"worker solving query {query_id!r} died ({reason}, "
            f"exitcode={exitcode}) after {restarts} restart(s)",
            exitcode=exitcode,
            reason=reason,
        )
        outcome = _error_outcome(labels, algorithm, query_id, error)
        outcome.trace.worker_restarts = restarts
        outcome.trace.watchdog_kills = watchdog_kills
        return outcome

    # ------------------------------------------------------------------
    def shutdown(self, wait: bool = True) -> None:
        """Stop respawning and terminate any live workers.

        Live workers get SIGTERM (checkpoint + anytime answer); with
        ``wait=False`` they are killed outright.
        """
        self._closed = True
        with self._lock:
            live = list(self._live)
        for proc in live:
            if wait:
                self._terminate(proc)
            else:
                self._kill(proc)
