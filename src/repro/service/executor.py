"""Concurrent batch execution over one shared :class:`GraphIndex`.

The workload GST keyword search was built for is many small queries
against one immutable graph.  :class:`QueryExecutor` is that serving
layer: a thread pool (``max_workers``) draining queries against a
shared index, with

* **per-query error isolation** — an infeasible or crashing query
  yields a failed :class:`~repro.service.index.QueryOutcome`, never an
  exception out of the batch;
* **deterministic ordering** — ``run_batch`` returns outcomes in
  submission order regardless of completion order;
* **deadlines** — a batch-wide wall-clock allowance threaded through
  the shared :class:`~repro.core.budget.Budget`: queries started near
  the deadline get a clamped time limit, queries after it are skipped;
* **cancellation** — pass a
  :class:`~repro.core.budget.CancellationToken` to ``run_batch`` /
  ``submit`` (or attach one to the budget) and every in-flight query
  stops within a bounded number of state pops;
* **resilience** — optional admission control, a retry/degradation
  ladder, and per-algorithm circuit breakers
  (see :mod:`repro.service.resilience`), composed into one pipeline
  every query runs through;
* **cache-hit certification** — with ``certify_cache_hits=True`` every
  answer served from the persistent result cache is re-validated
  against the live graph by :mod:`repro.verify`; a failing entry is
  evicted and the query runs for real;
* **telemetry** — every outcome carries a
  :class:`~repro.service.telemetry.QueryTrace`; give the executor a
  :class:`~repro.service.telemetry.TraceSink` to stream them as JSONL.

Workers are threads by default: per-label Dijkstras and DP searches
release no GIL, so the win is cache amortization and overlap of
waiting, not CPU parallelism.  With ``isolation="process"`` each solve
instead runs in a supervised subprocess
(:class:`~repro.service.durability.ProcessWorkerPool`): hangs, OOM
kills, and hard crashes are contained to one query, and — when a
``checkpoint_dir`` is set — the query resumes from its latest engine
checkpoint instead of restarting cold.  ``isolation="fleet"``
(``workers=N``) swaps the per-query fork for a persistent pre-forked
:class:`~repro.service.fleet.FleetPool` attached zero-copy to one
shared-memory CSR snapshot — true multi-core throughput at steady
state, with the same respawn-and-resume guarantees per worker.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from typing import (
    Callable,
    Dict,
    Hashable,
    Iterable,
    List,
    Optional,
    Sequence,
    Union,
)

from ..core.budget import Budget, CancellationToken
from ..graph.graph import Graph
from ..obs import instruments
from .index import GraphIndex, QueryOutcome
from .resilience import (
    AdmissionController,
    AdmissionPolicy,
    BreakerBoard,
    BreakerPolicy,
    ResiliencePipeline,
    RetryPolicy,
)
from .telemetry import TraceSink

__all__ = ["QueryExecutor"]


def _default_workers() -> int:
    return min(8, os.cpu_count() or 1)


class QueryExecutor:
    """A worker pool answering GST queries over one shared index."""

    def __init__(
        self,
        index: Union[Graph, GraphIndex],
        *,
        max_workers: Optional[int] = None,
        algorithm: str = "pruneddp++",
        budget: Optional[Budget] = None,
        trace_sink: Optional[Union[TraceSink, str]] = None,
        admission: Optional[Union[AdmissionController, AdmissionPolicy]] = None,
        retry_policy: Optional[RetryPolicy] = None,
        breaker_policy: Optional[BreakerPolicy] = None,
        certify_cache_hits: bool = False,
        isolation: str = "thread",
        checkpoint_dir: Optional[str] = None,
        worker_policy=None,
        workers: Optional[int] = None,
    ) -> None:
        if max_workers is not None and max_workers <= 0:
            raise ValueError("max_workers must be positive")
        if isolation not in ("thread", "process", "fleet"):
            raise ValueError(
                "isolation must be 'thread', 'process', or 'fleet', "
                f"got {isolation!r}"
            )
        if workers is not None and isolation != "fleet":
            raise ValueError("workers= only applies to isolation='fleet'")
        self.index = GraphIndex.ensure(index)
        # A fleet of N processes needs at least N submitting threads in
        # front of it, or the warm workers can never all be busy.
        self.max_workers = max_workers or max(_default_workers(), workers or 0)
        self.algorithm = algorithm
        self.budget = budget
        # A sink given as a path is opened here and is therefore ours to
        # close on shutdown; a pre-built TraceSink is borrowed — the
        # caller may keep writing through it after we are gone, so
        # shutdown only flushes it.
        self._owns_trace_sink = isinstance(trace_sink, str)
        self.trace_sink = (
            TraceSink(trace_sink) if isinstance(trace_sink, str) else trace_sink
        )
        # Re-validate answers served from the persistent result cache
        # against the *live* graph (repro.verify).  A store built from a
        # different-but-fingerprint-colliding graph, or a corrupted
        # record, is evicted and the query falls through to a real solve.
        self.certify_cache_hits = certify_cache_hits
        if isinstance(admission, AdmissionPolicy):
            admission = AdmissionController(self.index, admission)
        self.breakers: Optional[BreakerBoard] = (
            BreakerBoard(breaker_policy) if breaker_policy is not None else None
        )
        self._pipeline = ResiliencePipeline(
            admission=admission,
            retry_policy=retry_policy,
            breakers=self.breakers,
        )
        self._pool = ThreadPoolExecutor(
            max_workers=self.max_workers, thread_name_prefix="gst-query"
        )
        # Durability backends (repro.service.durability).  The worker
        # pool forks lazily-warmed state, so it is built eagerly here —
        # before any query thread could be holding an index lock.
        self.isolation = isolation
        self.checkpoint_dir = checkpoint_dir
        self.worker_pool = None
        if isolation == "process":
            from .durability import ProcessWorkerPool

            self.worker_pool = ProcessWorkerPool(
                self.index,
                checkpoint_dir=checkpoint_dir,
                policy=worker_policy,
            )
        elif isolation == "fleet":
            from .fleet import FleetPool

            self.worker_pool = FleetPool(
                self.index,
                workers=workers,
                checkpoint_dir=checkpoint_dir,
                policy=worker_policy,
            )
        self._worker_policy = worker_policy
        self._closed = False

    # ------------------------------------------------------------------
    def submit(
        self,
        labels: Iterable[Hashable],
        *,
        algorithm: Optional[str] = None,
        budget: Optional[Budget] = None,
        query_id=None,
        cancel_token: Optional[CancellationToken] = None,
        on_progress: Optional[Callable] = None,
        **solver_kwargs,
    ) -> "Future[QueryOutcome]":
        """Enqueue one query; the future resolves to a QueryOutcome.

        The future itself never carries an exception from the solve —
        errors are captured inside the outcome (isolation contract).
        ``cancel_token`` (or one already on the budget) cancels the
        query cooperatively: the engine stops within a bounded number
        of state pops and the outcome records ``status="cancelled"``.
        ``on_progress`` receives every improved incumbent as a
        :class:`~repro.core.result.ProgressPoint` *on the worker
        thread* — it must be cheap and thread-safe.  Progress streaming
        requires thread isolation (a callback cannot cross a process
        boundary); served-from-cache answers emit no progress.
        """
        if self._closed:
            raise RuntimeError("executor is shut down")
        if on_progress is not None and self.isolation != "thread":
            raise ValueError(
                "on_progress requires isolation='thread'; a progress "
                "callback cannot cross a process boundary"
            )
        effective = budget if budget is not None else self.budget
        if cancel_token is not None:
            effective = (effective or Budget()).with_cancellation(cancel_token)
        if on_progress is not None:
            solver_kwargs = dict(solver_kwargs, on_progress=on_progress)
        future = self._pool.submit(
            self._run_one,
            tuple(labels),
            algorithm or self.algorithm,
            effective,
            query_id,
            solver_kwargs,
        )
        # Queue-depth gauge: up on submit, down when the future settles
        # (including cancellation by shutdown(wait=False), which is why
        # the decrement rides the done-callback, not _run_one).
        depth = instruments.executor_queue_depth()
        depth.inc()
        future.add_done_callback(lambda _f: depth.dec())
        return future

    def run_batch(
        self,
        queries: Sequence[Iterable[Hashable]],
        *,
        algorithm: Optional[str] = None,
        budget: Optional[Budget] = None,
        deadline: Optional[float] = None,
        cancel_token: Optional[CancellationToken] = None,
        on_progress: Optional[Callable] = None,
        **solver_kwargs,
    ) -> List[QueryOutcome]:
        """Run a batch concurrently; outcomes come back in input order.

        ``deadline`` (seconds) bounds the *whole batch*: every query
        shares one budget whose absolute deadline starts now.  Queries
        reaching the front after it passes are skipped (their outcome
        says so); queries started close to it run with what remains.
        ``cancel_token`` is shared by every query in the batch: cancel
        it and running queries return their best-so-far answers while
        queued ones come back ``cancelled`` without starting.
        ``on_progress(query_id, point)`` receives every improved
        incumbent of every query, interleaved, on worker threads —
        the ``query_id`` (the query's batch position) disambiguates.
        """
        batch_budget = budget if budget is not None else self.budget
        if deadline is not None:
            batch_budget = (batch_budget or Budget()).with_deadline(deadline)
        if cancel_token is not None:
            batch_budget = (batch_budget or Budget()).with_cancellation(
                cancel_token
            )
        futures: List["Future[QueryOutcome]"] = []
        try:
            for i, labels in enumerate(queries):
                query_progress = None
                if on_progress is not None:
                    query_progress = (
                        lambda point, _i=i: on_progress(_i, point)
                    )
                futures.append(
                    self.submit(
                        labels,
                        algorithm=algorithm,
                        budget=batch_budget,
                        query_id=i,
                        on_progress=query_progress,
                        **solver_kwargs,
                    )
                )
        except Exception as exc:
            # A mid-loop submit failure (e.g. a concurrent shutdown) must
            # not abandon already-enqueued work: cancel whatever has not
            # started and surface one clean error for the whole batch.
            for future in futures:
                future.cancel()
            raise RuntimeError(
                f"run_batch aborted after enqueueing {len(futures)} of "
                f"{len(queries)} queries: {exc}"
            ) from exc
        return [future.result() for future in futures]

    def map(
        self,
        queries: Sequence[Iterable[Hashable]],
        **kwargs,
    ) -> List[Optional[float]]:
        """Convenience: best weight per query (``None`` for failures)."""
        return [
            outcome.result.weight if outcome.ok and outcome.result else None
            for outcome in self.run_batch(queries, **kwargs)
        ]

    # ------------------------------------------------------------------
    def breaker_snapshot(self) -> Dict[str, dict]:
        """Per-algorithm circuit-breaker states (empty without breakers)."""
        return self.breakers.snapshot() if self.breakers is not None else {}

    # ------------------------------------------------------------------
    def _run_one(
        self,
        labels,
        algorithm: str,
        budget: Optional[Budget],
        query_id,
        solver_kwargs: dict,
    ) -> QueryOutcome:
        # Result cache first, *before* admission control: a stored
        # answer whose proven epsilon satisfies this request costs
        # nothing to serve, so it must not be rejected, retried, or
        # counted against any breaker.  execute() is told to skip its
        # own lookup (the miss was already counted here); it still
        # writes successful outcomes back.
        outcome: Optional[QueryOutcome] = None
        if self.index.result_cache is not None:
            outcome = self.index.cached_outcome(
                labels,
                algorithm=algorithm,
                budget=budget,
                epsilon=solver_kwargs.get("epsilon"),
                query_id=query_id,
            )
            if (
                outcome is not None
                and self.certify_cache_hits
                and not self._certified_hit(outcome)
            ):
                outcome = None
        if outcome is None:
            execute = self._execute_callable()
            if self._pipeline.is_noop:
                outcome = execute(
                    labels,
                    algorithm=algorithm,
                    budget=budget,
                    query_id=query_id,
                    use_result_cache=False,
                    **solver_kwargs,
                )
            else:
                outcome = self._pipeline.run(
                    self.index,
                    labels,
                    algorithm=algorithm,
                    budget=budget,
                    query_id=query_id,
                    use_result_cache=False,
                    execute=execute,
                    **solver_kwargs,
                )
        if self.trace_sink is not None:
            # A drain (or shutdown(wait=False)) may close the sink while
            # a straggler query is still finishing; the late line is
            # dropped and counted, never raised out of the worker.
            self.trace_sink.write_or_drop(outcome.trace)
        # The single registry recording point: every executor query —
        # thread or process isolation, cache hit or real solve — folds
        # its trace in here, so registry totals equal sums over traces.
        instruments.record_query_trace(outcome.trace)
        return outcome

    def _execute_callable(self):
        """The solver dispatch every attempt runs through.

        Process isolation routes attempts into the supervised worker
        pool; a thread-backed executor with a ``checkpoint_dir`` wraps
        the index in :func:`~repro.service.durability.checkpointed_execute`
        (same durability guarantees, in-process); otherwise this is the
        plain ``index.execute``.  Either way the resilience pipeline's
        admission/retry/breaker machinery composes on top unchanged.
        """
        if self.worker_pool is not None:
            return self.worker_pool.execute
        if self.checkpoint_dir is not None:
            from .durability import checkpointed_execute

            def execute(labels, **kwargs):
                return checkpointed_execute(
                    self.index,
                    labels,
                    checkpoint_dir=self.checkpoint_dir,
                    policy=self._worker_policy,
                    **kwargs,
                )

            return execute
        return self.index.execute

    def _certified_hit(self, outcome: QueryOutcome) -> bool:
        """Certify a cache-served answer; evict and miss on violation."""
        from ..verify.certify import certify_result

        certificate = certify_result(
            self.index.graph, outcome.result, labels=outcome.labels
        )
        if certificate.ok:
            return True
        if self.index.result_cache is not None:
            self.index.result_cache.invalidate(
                outcome.labels, outcome.algorithm
            )
        return False

    # ------------------------------------------------------------------
    def shutdown(self, wait: bool = True) -> None:
        """Stop accepting work; ``wait=False`` also cancels pending work.

        The guarantee: after ``shutdown(wait=False)`` returns, no
        *not-yet-started* query will ever run — their futures resolve
        cancelled instead of lingering in the queue until the process
        exits (the pre-3.9-style leak this method used to have).
        Queries already executing are not interrupted either way; pass
        a :class:`~repro.core.budget.CancellationToken` to stop those
        cooperatively.  With ``wait=True`` the call blocks until every
        started query has finished.  Process workers are asked to
        checkpoint and exit (``wait=True``) or killed (``wait=False``).

        The attached trace sink is flushed after the pool stops (no
        buffered JSONL line is ever dropped by a drain) and closed iff
        the executor opened it itself (``trace_sink`` given as a path);
        borrowed sinks stay open for their real owner.
        """
        self._closed = True
        if self.worker_pool is not None:
            self.worker_pool.shutdown(wait=wait)
        self._pool.shutdown(wait=wait, cancel_futures=not wait)
        if self.trace_sink is not None:
            if self._owns_trace_sink:
                self.trace_sink.close()
            else:
                self.trace_sink.flush()

    def __enter__(self) -> "QueryExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()
