"""Concurrent batch execution over one shared :class:`GraphIndex`.

The workload GST keyword search was built for is many small queries
against one immutable graph.  :class:`QueryExecutor` is that serving
layer: a thread pool (``max_workers``) draining queries against a
shared index, with

* **per-query error isolation** — an infeasible or crashing query
  yields a failed :class:`~repro.service.index.QueryOutcome`, never an
  exception out of the batch;
* **deterministic ordering** — ``run_batch`` returns outcomes in
  submission order regardless of completion order;
* **deadlines** — a batch-wide wall-clock allowance threaded through
  the shared :class:`~repro.core.budget.Budget`: queries started near
  the deadline get a clamped time limit, queries after it are skipped;
* **telemetry** — every outcome carries a
  :class:`~repro.service.telemetry.QueryTrace`; give the executor a
  :class:`~repro.service.telemetry.TraceSink` to stream them as JSONL.

Workers are threads: per-label Dijkstras and DP searches release no
GIL, so the win is cache amortization and overlap of waiting, not CPU
parallelism — process pools are a later, separate backend.
"""

from __future__ import annotations

import os
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Hashable, Iterable, List, Optional, Sequence, Union

from ..core.budget import Budget
from ..graph.graph import Graph
from .index import GraphIndex, QueryOutcome
from .telemetry import TraceSink

__all__ = ["QueryExecutor"]


def _default_workers() -> int:
    return min(8, os.cpu_count() or 1)


class QueryExecutor:
    """A worker pool answering GST queries over one shared index."""

    def __init__(
        self,
        index: Union[Graph, GraphIndex],
        *,
        max_workers: Optional[int] = None,
        algorithm: str = "pruneddp++",
        budget: Optional[Budget] = None,
        trace_sink: Optional[TraceSink] = None,
    ) -> None:
        if max_workers is not None and max_workers <= 0:
            raise ValueError("max_workers must be positive")
        self.index = GraphIndex.ensure(index)
        self.max_workers = max_workers or _default_workers()
        self.algorithm = algorithm
        self.budget = budget
        self.trace_sink = trace_sink
        self._pool = ThreadPoolExecutor(
            max_workers=self.max_workers, thread_name_prefix="gst-query"
        )
        self._closed = False

    # ------------------------------------------------------------------
    def submit(
        self,
        labels: Iterable[Hashable],
        *,
        algorithm: Optional[str] = None,
        budget: Optional[Budget] = None,
        query_id=None,
        **solver_kwargs,
    ) -> "Future[QueryOutcome]":
        """Enqueue one query; the future resolves to a QueryOutcome.

        The future itself never carries an exception from the solve —
        errors are captured inside the outcome (isolation contract).
        """
        if self._closed:
            raise RuntimeError("executor is shut down")
        return self._pool.submit(
            self._run_one,
            tuple(labels),
            algorithm or self.algorithm,
            budget if budget is not None else self.budget,
            query_id,
            solver_kwargs,
        )

    def run_batch(
        self,
        queries: Sequence[Iterable[Hashable]],
        *,
        algorithm: Optional[str] = None,
        budget: Optional[Budget] = None,
        deadline: Optional[float] = None,
        **solver_kwargs,
    ) -> List[QueryOutcome]:
        """Run a batch concurrently; outcomes come back in input order.

        ``deadline`` (seconds) bounds the *whole batch*: every query
        shares one budget whose absolute deadline starts now.  Queries
        reaching the front after it passes are skipped (their outcome
        says so); queries started close to it run with what remains.
        """
        batch_budget = budget if budget is not None else self.budget
        if deadline is not None:
            batch_budget = (batch_budget or Budget()).with_deadline(deadline)
        futures = [
            self.submit(
                labels,
                algorithm=algorithm,
                budget=batch_budget,
                query_id=i,
                **solver_kwargs,
            )
            for i, labels in enumerate(queries)
        ]
        return [future.result() for future in futures]

    def map(
        self,
        queries: Sequence[Iterable[Hashable]],
        **kwargs,
    ) -> List[Optional[float]]:
        """Convenience: best weight per query (``None`` for failures)."""
        return [
            outcome.result.weight if outcome.ok and outcome.result else None
            for outcome in self.run_batch(queries, **kwargs)
        ]

    # ------------------------------------------------------------------
    def _run_one(
        self,
        labels,
        algorithm: str,
        budget: Optional[Budget],
        query_id,
        solver_kwargs: dict,
    ) -> QueryOutcome:
        outcome = self.index.execute(
            labels,
            algorithm=algorithm,
            budget=budget,
            query_id=query_id,
            **solver_kwargs,
        )
        if self.trace_sink is not None:
            self.trace_sink.write(outcome.trace)
        return outcome

    # ------------------------------------------------------------------
    def shutdown(self, wait: bool = True) -> None:
        """Stop accepting work and (optionally) wait for the pool."""
        self._closed = True
        self._pool.shutdown(wait=wait)

    def __enter__(self) -> "QueryExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()
