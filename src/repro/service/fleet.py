"""Persistent shared-memory worker fleet.

:class:`~repro.service.durability.ProcessWorkerPool` buys crash
isolation by forking a fresh subprocess *per query* — each spawn pays
the full cost of unsharing the parent's heap before it pops a single
state.  The fleet keeps the isolation and drops the per-query cost:

* the frozen :class:`~repro.graph.csr.CSRGraph` is exported **once**
  into a :mod:`multiprocessing.shared_memory` segment
  (:mod:`repro.graph.shm`), and
* N **persistent pre-forked workers** attach that segment at birth
  (fingerprint-verified), rebuild their private
  :class:`~repro.service.index.GraphIndex` around the mapped buffers,
  and then serve query after query over a duplex pipe — attach cost is
  paid once per worker lifetime, not once per query.

Supervision carries over from the process pool wholesale: per-worker
RSS watchdog sampled from ``/proc``, a hard wall-clock kill deadline,
cooperative cancellation (the parent's token becomes ``SIGUSR1``,
which cancels the worker's *current* query without killing the
worker), and respawn-and-resume — a worker that dies mid-query is
replaced by a fresh attach and the query resumes from its latest
engine checkpoint.  All terminal containment surfaces as a failed
:class:`~repro.service.index.QueryOutcome` carrying a typed
:class:`~repro.errors.WorkerCrashedError`, exactly like the one-shot
pool, so the executor's retry ladder composes unchanged.

Shutdown ordering is load-bearing: ``shutdown(wait=True)`` first
**drains** — waits for every in-flight query (and therefore every
in-flight checkpoint write) to deliver — then stops the workers, and
only then releases the shared segment.  Unlinking first would turn a
graceful drain into a race against the kernel.  ``wait=False`` is the
abandon-ship path: workers are killed outright and the segment is
force-unlinked.

Wire-in: ``QueryExecutor(isolation="fleet", workers=N)`` routes every
attempt through :meth:`FleetPool.execute`, and ``python -m repro serve
--workers N`` serves a whole TCP front-end from one fleet.
"""

from __future__ import annotations

import os
import signal
import threading
import time
from typing import Hashable, Iterable, List, Optional

from ..core.budget import Budget, CancellationToken
from ..errors import (
    ReproError,
    SharedMemoryGraphError,
    StoreError,
    WorkerCrashedError,
)
from ..graph.csr import CSRGraph
from ..graph.graph import Graph
from ..obs import instruments
from .durability import (
    WorkerPolicy,
    _error_outcome,
    _install_chaos_hook,
    _rss_mb,
    checkpointed_execute,
)
from .index import GraphIndex, QueryOutcome

__all__ = ["FleetPool", "FleetWorker"]


def _default_fleet_workers() -> int:
    return min(4, os.cpu_count() or 1)


# ----------------------------------------------------------------------
# Worker process body
# ----------------------------------------------------------------------
def _fleet_worker_entry(
    conn,
    worker_id: int,
    shm_name: str,
    expect_fingerprint: str,
    checkpoint_dir: Optional[str],
    policy: WorkerPolicy,
) -> None:
    """Child body: attach the shared graph once, then serve jobs forever.

    Messages up the pipe: one ``ready`` (or ``attach_failed``) after
    the attach, then one ``outcome`` per job.  ``SIGUSR1`` cancels the
    *current* query's token (the worker survives and serves the next
    job); ``SIGTERM`` cancels it *and* marks the worker draining, so it
    exits cleanly after delivering.  Every exit path detaches the
    shared segment, keeping the owner's refcount honest.
    """
    draining = threading.Event()
    current_token: List[Optional[CancellationToken]] = [None]

    def _cancel_current(reason: str) -> None:
        token = current_token[0]
        if token is not None:
            token.cancel(reason)

    signal.signal(
        signal.SIGUSR1,
        lambda signum, frame: _cancel_current("cancelled by supervisor"),
    )

    def _on_sigterm(signum, frame) -> None:
        draining.set()
        _cancel_current("terminated by supervisor")

    signal.signal(signal.SIGTERM, _on_sigterm)
    # The parent's SIGINT handling owns batch interruption; a forwarded
    # Ctrl-C must not kill a worker mid-checkpoint-write.
    signal.signal(signal.SIGINT, signal.SIG_IGN)

    handle = None
    try:
        started = time.perf_counter()
        try:
            csr, handle = CSRGraph.from_shared(
                shm_name, expect_fingerprint=expect_fingerprint
            )
            index = GraphIndex(Graph.from_csr(csr))
        except (SharedMemoryGraphError, StoreError) as exc:
            conn.send(
                {
                    "op": "attach_failed",
                    "worker": worker_id,
                    "error_type": type(exc).__name__,
                    "error": str(exc),
                }
            )
            return
        conn.send(
            {
                "op": "ready",
                "worker": worker_id,
                "pid": os.getpid(),
                "attach_seconds": time.perf_counter() - started,
            }
        )

        while not draining.is_set():
            try:
                job = conn.recv()
            except (EOFError, OSError):
                break
            if not isinstance(job, dict) or job.get("op") != "query":
                break  # "stop" or anything unrecognized: exit cleanly
            token = CancellationToken()
            current_token[0] = token
            budget = (job.get("budget") or Budget()).with_cancellation(token)
            on_write = None
            if (
                policy.chaos_kill_after_checkpoints is not None
                and checkpoint_dir is not None
            ):
                on_write = _install_chaos_hook(
                    checkpoint_dir, policy.chaos_kill_after_checkpoints
                )
            labels = job["labels"]
            algorithm = job["algorithm"]
            query_id = job.get("query_id")
            try:
                if checkpoint_dir is not None:
                    outcome = checkpointed_execute(
                        index,
                        labels,
                        algorithm=algorithm,
                        budget=budget,
                        query_id=query_id,
                        checkpoint_dir=checkpoint_dir,
                        policy=policy,
                        on_write=on_write,
                        use_result_cache=job.get("use_result_cache", True),
                        **job.get("solver_kwargs", {}),
                    )
                else:
                    outcome = index.execute(
                        labels,
                        algorithm=algorithm,
                        budget=budget,
                        query_id=query_id,
                        use_result_cache=job.get("use_result_cache", True),
                        **job.get("solver_kwargs", {}),
                    )
            except BaseException as exc:  # pragma: no cover - belt+braces
                outcome = _error_outcome(
                    labels, algorithm, query_id,
                    ReproError(f"fleet worker failed: {exc}"),
                )
            finally:
                current_token[0] = None
            reply = {
                "op": "outcome",
                "job_id": job.get("job_id"),
                "outcome": outcome,
            }
            try:
                conn.send(reply)
            except (BrokenPipeError, OSError):
                break
            except Exception as exc:
                # Unpicklable payload must not look like a crash.
                try:
                    conn.send(
                        {
                            "op": "outcome",
                            "job_id": job.get("job_id"),
                            "outcome": _error_outcome(
                                labels, algorithm, query_id,
                                ReproError(
                                    "fleet worker could not serialize "
                                    f"outcome: {exc}"
                                ),
                            ),
                        }
                    )
                except Exception:
                    break
    finally:
        if handle is not None:
            handle.close()
        try:
            conn.close()
        except OSError:  # pragma: no cover - defensive
            pass


# ----------------------------------------------------------------------
# Parent-side worker slot
# ----------------------------------------------------------------------
class FleetWorker:
    """Parent-side state of one fleet slot (process + pipe + counters)."""

    __slots__ = (
        "worker_id",
        "proc",
        "conn",
        "pid",
        "attach_seconds",
        "queries",
        "respawns",
        "busy",
    )

    def __init__(self, worker_id: int) -> None:
        self.worker_id = worker_id
        self.proc = None
        self.conn = None
        self.pid: Optional[int] = None
        self.attach_seconds: Optional[float] = None
        self.queries = 0
        self.respawns = 0
        self.busy = False

    def alive(self) -> bool:
        return self.proc is not None and self.proc.is_alive()

    def info(self) -> dict:
        return {
            "worker": self.worker_id,
            "pid": self.pid,
            "alive": self.alive(),
            "attach_seconds": self.attach_seconds,
            "queries": self.queries,
            "respawns": self.respawns,
            "busy": self.busy,
        }


class FleetPool:
    """N persistent workers attached to one shared-memory snapshot.

    Construction exports the index's CSR snapshot into shared memory
    and pre-forks ``workers`` processes, each of which attaches the
    segment (fingerprint-verified) and reports ready.  The constructor
    returns only when every worker is warm — the first query never pays
    an attach.  :meth:`execute` has the same signature and never-raises
    contract as :meth:`GraphIndex.execute
    <repro.service.index.GraphIndex.execute>`, so the executor injects
    it as the resilience pipeline's ``execute`` callable unchanged.
    """

    def __init__(
        self,
        index,
        *,
        workers: Optional[int] = None,
        checkpoint_dir: Optional[str] = None,
        policy: Optional[WorkerPolicy] = None,
        attach_timeout: float = 60.0,
        shm_name: Optional[str] = None,
    ) -> None:
        import multiprocessing

        if workers is not None and workers <= 0:
            raise ValueError("workers must be positive")
        self.index = GraphIndex.ensure(index)
        self.workers = workers or _default_fleet_workers()
        self.checkpoint_dir = checkpoint_dir
        if checkpoint_dir is not None:
            os.makedirs(checkpoint_dir, exist_ok=True)
        self.policy = policy or WorkerPolicy()
        self.attach_timeout = attach_timeout
        if "fork" not in multiprocessing.get_all_start_methods():
            raise RuntimeError(
                "the worker fleet requires the fork start method (POSIX); "
                "use isolation='thread' on this platform"
            )
        self._ctx = multiprocessing.get_context("fork")
        # Everything a child might lazily derive is computed pre-fork
        # (forking a multithreaded parent copies held locks).
        self._fingerprint = self.index.snapshot.fingerprint
        self.shared = self.index.snapshot.to_shared(name=shm_name)
        instruments.fleet_shm_bytes().set(self.shared.size)
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._closed = False
        self._slots: List[FleetWorker] = []
        try:
            for worker_id in range(self.workers):
                slot = FleetWorker(worker_id)
                self._spawn(slot)
                self._slots.append(slot)
        except Exception:
            # A half-built fleet must not leak processes or the segment.
            self._closed = True
            for slot in self._slots:
                self._kill_slot(slot)
            self.shared.unlink()
            self.shared.close()
            raise
        instruments.fleet_workers().set(len(self._slots))

    # ------------------------------------------------------------------
    # Spawning
    # ------------------------------------------------------------------
    def _spawn(self, slot: FleetWorker) -> None:
        """Fork one worker into ``slot`` and wait for its warm-up.

        Raises :class:`~repro.errors.ShmAttachError` /
        :class:`~repro.errors.WorkerCrashedError` when the worker
        cannot come up — at construction that propagates to the caller;
        mid-serving, :meth:`_respawn` converts it into a failed outcome.
        """
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        proc = self._ctx.Process(
            target=_fleet_worker_entry,
            args=(
                child_conn,
                slot.worker_id,
                self.shared.name,
                self._fingerprint,
                self.checkpoint_dir,
                self.policy,
            ),
            daemon=True,
        )
        proc.start()
        child_conn.close()
        slot.proc = proc
        slot.conn = parent_conn
        slot.pid = proc.pid
        deadline = time.monotonic() + self.attach_timeout
        while True:
            timeout = min(0.1, max(0.0, deadline - time.monotonic()))
            try:
                if parent_conn.poll(timeout):
                    msg = parent_conn.recv()
                    break
            except (EOFError, OSError):
                msg = None
                break
            if not proc.is_alive():
                msg = None
                break
            if time.monotonic() >= deadline:
                self._kill_slot(slot)
                raise WorkerCrashedError(
                    f"fleet worker {slot.worker_id} did not report ready "
                    f"within {self.attach_timeout:.1f}s",
                    pid=slot.pid,
                    reason="attach timeout",
                )
        if not isinstance(msg, dict) or msg.get("op") != "ready":
            self._kill_slot(slot)
            if isinstance(msg, dict) and msg.get("op") == "attach_failed":
                raise WorkerCrashedError(
                    f"fleet worker {slot.worker_id} could not attach the "
                    f"shared snapshot: [{msg.get('error_type')}] "
                    f"{msg.get('error')}",
                    pid=slot.pid,
                    reason="attach failed",
                )
            raise WorkerCrashedError(
                f"fleet worker {slot.worker_id} died during warm-up "
                f"(exitcode={proc.exitcode})",
                pid=slot.pid,
                exitcode=proc.exitcode,
                reason="died during warm-up",
            )
        slot.attach_seconds = float(msg.get("attach_seconds") or 0.0)
        instruments.fleet_attach_seconds().observe(slot.attach_seconds)

    def _respawn(self, slot: FleetWorker) -> Optional[WorkerCrashedError]:
        """Replace a dead worker in place; returns the error on failure."""
        self._kill_slot(slot)
        slot.respawns += 1
        instruments.fleet_respawns_total().inc()
        try:
            self._spawn(slot)
            return None
        except WorkerCrashedError as exc:
            return exc

    def _kill_slot(self, slot: FleetWorker) -> None:
        proc = slot.proc
        if proc is not None:
            try:
                proc.kill()
            except (OSError, ValueError, AttributeError):
                pass
            proc.join(1.0)
        conn = slot.conn
        if conn is not None:
            try:
                conn.close()
            except OSError:  # pragma: no cover - defensive
                pass
        slot.proc = None
        slot.conn = None

    # ------------------------------------------------------------------
    # Query execution
    # ------------------------------------------------------------------
    def execute(
        self,
        labels: Iterable[Hashable],
        *,
        algorithm: str = "pruneddp++",
        budget: Optional[Budget] = None,
        query_id=None,
        use_result_cache: bool = True,
        **solver_kwargs,
    ) -> QueryOutcome:
        """Run one query on the next free warm worker (never raises).

        Blocks until a worker frees up (the executor's thread pool is
        the queue in front of this), then supervises that worker for
        the duration: watchdog, hard deadline, cancellation, and
        respawn-and-resume all per the pool's
        :class:`~repro.service.durability.WorkerPolicy`.
        """
        labels = tuple(labels)
        slot = self._acquire()
        if slot is None:
            return _error_outcome(
                labels, algorithm, query_id,
                ReproError("fleet is shut down"),
            )
        try:
            return self._execute_on(
                slot, labels, algorithm, budget, query_id,
                use_result_cache, solver_kwargs,
            )
        finally:
            self._release(slot)

    def _acquire(self) -> Optional[FleetWorker]:
        with self._cond:
            while True:
                if self._closed:
                    return None
                for slot in self._slots:
                    if not slot.busy:
                        slot.busy = True
                        return slot
                self._cond.wait()

    def _release(self, slot: FleetWorker) -> None:
        with self._cond:
            slot.busy = False
            self._cond.notify_all()

    def _execute_on(
        self, slot, labels, algorithm, budget, query_id,
        use_result_cache, solver_kwargs,
    ) -> QueryOutcome:
        policy = self.policy
        # The parent's token cannot cross the process boundary (it is a
        # threading.Event); it is stripped for the wire and translated
        # into SIGUSR1 by the supervision loop below.
        wire_budget = budget
        if budget is not None and budget.cancel_token is not None:
            wire_budget = budget.replace(cancel_token=None)
        job = {
            "op": "query",
            "job_id": query_id,
            "labels": labels,
            "algorithm": algorithm,
            "budget": wire_budget,
            "query_id": query_id,
            "use_result_cache": use_result_cache,
            "solver_kwargs": solver_kwargs,
        }
        restarts = 0
        while True:
            sent = self._send_job(slot, job)
            if not sent:
                restarts += 1
                if restarts > policy.max_restarts:
                    return self._crashed_outcome(
                        slot, labels, algorithm, query_id, restarts,
                        reason="crashed", watchdog_kills=0,
                    )
                error = self._respawn(slot)
                if error is not None:
                    return self._attach_lost_outcome(
                        labels, algorithm, query_id, restarts, error
                    )
                continue
            attempt = self._supervise(slot, budget)
            if attempt.kind == "delivered":
                outcome = attempt.outcome
                outcome.trace.worker_restarts += restarts
                outcome.trace.fleet_worker = slot.worker_id
                slot.queries += 1
                instruments.fleet_queries_total().labels(
                    worker=str(slot.worker_id)
                ).inc()
                return outcome
            if attempt.kind == "watchdog":
                # Checkpoint-then-kill already happened; the slot is
                # respawned for future queries, but this query is NOT
                # internally retried — rerunning the same configuration
                # would exceed the budget again.  Surfacing retryable
                # lets the executor's ladder resume it degraded.
                self._respawn(slot)
                return self._crashed_outcome(
                    slot, labels, algorithm, query_id, restarts,
                    reason="memory watchdog", watchdog_kills=1,
                )
            if attempt.kind == "timeout":
                self._respawn(slot)
                return self._crashed_outcome(
                    slot, labels, algorithm, query_id, restarts,
                    reason="hard kill deadline", watchdog_kills=0,
                )
            # Plain crash: respawn (re-attach) and resend — the worker's
            # checkpointed_execute resumes from the latest checkpoint.
            restarts += 1
            if self._closed or restarts > policy.max_restarts:
                return self._crashed_outcome(
                    slot, labels, algorithm, query_id, restarts,
                    reason="crashed", watchdog_kills=0,
                    exitcode=attempt.exitcode,
                )
            error = self._respawn(slot)
            if error is not None:
                return self._attach_lost_outcome(
                    labels, algorithm, query_id, restarts, error
                )

    def _send_job(self, slot: FleetWorker, job: dict) -> bool:
        if slot.conn is None or not slot.alive():
            return False
        try:
            slot.conn.send(job)
            return True
        except (BrokenPipeError, OSError):
            return False

    class _Attempt:
        __slots__ = ("kind", "outcome", "exitcode")

        def __init__(self, kind, outcome=None, exitcode=None) -> None:
            self.kind = kind  # delivered | crashed | watchdog | timeout
            self.outcome = outcome
            self.exitcode = exitcode

    def _supervise(self, slot: FleetWorker, budget) -> "_Attempt":
        """Wait for one outcome, enforcing the policy on the worker."""
        policy = self.policy
        proc, conn = slot.proc, slot.conn
        hard_deadline = (
            time.monotonic() + policy.hard_timeout_seconds
            if policy.hard_timeout_seconds is not None
            else None
        )
        term_deadline: Optional[float] = None
        watchdog = False
        cancelled = False
        while True:
            try:
                has_data = conn.poll(policy.poll_interval)
            except (OSError, EOFError):
                has_data = False
            if has_data:
                msg = self._receive(conn)
                if isinstance(msg, dict) and msg.get("op") == "outcome":
                    if watchdog:
                        # The checkpoint-on-cancel answer is on disk; the
                        # delivery is superseded by the watchdog verdict.
                        return self._Attempt("watchdog")
                    return self._Attempt("delivered", outcome=msg["outcome"])
                if msg is None and not proc.is_alive():
                    proc.join(1.0)
                    if watchdog:
                        return self._Attempt(
                            "watchdog", exitcode=proc.exitcode
                        )
                    return self._Attempt("crashed", exitcode=proc.exitcode)
                continue  # stray frame (late ready); keep waiting
            if not proc.is_alive():
                # Dead without a poll hit: drain a final message that
                # raced the exit, then classify.
                msg = None
                try:
                    if conn.poll(0):
                        msg = self._receive(conn)
                except (OSError, EOFError):
                    msg = None
                proc.join(1.0)
                if watchdog:
                    return self._Attempt("watchdog", exitcode=proc.exitcode)
                if isinstance(msg, dict) and msg.get("op") == "outcome":
                    return self._Attempt("delivered", outcome=msg["outcome"])
                return self._Attempt("crashed", exitcode=proc.exitcode)
            now = time.monotonic()
            if not cancelled and (
                budget is not None and budget.cancelled()
            ):
                # Parent-side token → SIGUSR1: the worker cancels its
                # current query's token, delivers the anytime answer,
                # and stays alive for the next job.
                cancelled = True
                self._signal(proc, signal.SIGUSR1)
            if not watchdog and policy.max_rss_mb is not None:
                rss = _rss_mb(proc.pid)
                if rss is not None and rss > policy.max_rss_mb:
                    # Checkpoint-then-kill: SIGTERM cancels the current
                    # token AND drains the worker; the grace deadline
                    # reaps whatever is left.
                    watchdog = True
                    self._signal(proc, signal.SIGTERM)
                    term_deadline = now + policy.kill_grace_seconds
            if term_deadline is not None and now >= term_deadline:
                self._kill(proc)
                proc.join(1.0)
                if watchdog:
                    return self._Attempt("watchdog", exitcode=proc.exitcode)
                return self._Attempt("crashed", exitcode=proc.exitcode)
            if hard_deadline is not None and now >= hard_deadline:
                self._kill(proc)
                proc.join(1.0)
                return self._Attempt("timeout", exitcode=proc.exitcode)

    @staticmethod
    def _receive(conn):
        try:
            return conn.recv()
        except (EOFError, OSError):
            return None
        except Exception:  # unpickling failure: treat as undelivered
            return None

    @staticmethod
    def _signal(proc, signum) -> None:
        try:
            os.kill(proc.pid, signum)
        except (OSError, TypeError):  # pragma: no cover - defensive
            pass

    @staticmethod
    def _kill(proc) -> None:
        try:
            proc.kill()
        except (OSError, ValueError, AttributeError):  # pragma: no cover
            pass

    # ------------------------------------------------------------------
    # Failure shaping
    # ------------------------------------------------------------------
    def _crashed_outcome(
        self, slot, labels, algorithm, query_id, restarts,
        *, reason: str, watchdog_kills: int, exitcode=None,
    ) -> QueryOutcome:
        error = WorkerCrashedError(
            f"fleet worker {slot.worker_id} solving query {query_id!r} "
            f"died ({reason}, exitcode={exitcode}) after {restarts} "
            "restart(s)",
            pid=slot.pid,
            exitcode=exitcode,
            reason=reason,
        )
        outcome = _error_outcome(labels, algorithm, query_id, error)
        outcome.trace.worker_restarts = restarts
        outcome.trace.watchdog_kills = watchdog_kills
        outcome.trace.fleet_worker = slot.worker_id
        return outcome

    def _attach_lost_outcome(
        self, labels, algorithm, query_id, restarts, error
    ) -> QueryOutcome:
        """A respawned worker could not re-attach the shared snapshot.

        This is the owner-died / segment-unlinked case: the typed
        attach failure (never a ``BufferError``) is preserved inside
        the :class:`~repro.errors.WorkerCrashedError` message so
        operators can tell "the graph is gone" from "the query crashed".
        """
        outcome = _error_outcome(labels, algorithm, query_id, error)
        outcome.trace.worker_restarts = restarts
        return outcome

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """JSON-safe fleet summary (per-worker counters + shm info)."""
        with self._lock:
            return {
                "workers": len(self._slots),
                "closed": self._closed,
                "shm": self.shared.info() if not self.shared.closed else None,
                "per_worker": [slot.info() for slot in self._slots],
            }

    # ------------------------------------------------------------------
    # Shutdown
    # ------------------------------------------------------------------
    def shutdown(self, wait: bool = True) -> None:
        """Stop the fleet; release shared memory **last**.

        ``wait=True`` drains: in-flight queries (and their in-flight
        checkpoint writes) deliver before any worker is stopped, and
        the shared segment is released only after every worker has
        exited — a graceful shutdown can never yank the mapping out
        from under a live search.  ``wait=False`` kills workers
        outright and force-unlinks.  Idempotent.
        """
        with self._cond:
            if self._closed:
                already = True
            else:
                already = False
                self._closed = True
            self._cond.notify_all()
        if already:
            return
        if wait:
            # Drain: every busy slot must deliver (and _release) before
            # the workers are told to stop.  In-flight queries are
            # cancelled cooperatively (SIGUSR1) so the drain is bounded:
            # each engine checkpoints and returns its anytime answer
            # within a bounded number of pops.
            with self._cond:
                for slot in self._slots:
                    if slot.busy and slot.proc is not None:
                        self._signal(slot.proc, signal.SIGUSR1)
            with self._cond:
                while any(slot.busy for slot in self._slots):
                    self._cond.wait()
            for slot in self._slots:
                if slot.conn is not None and slot.alive():
                    try:
                        slot.conn.send({"op": "stop"})
                    except (BrokenPipeError, OSError):
                        pass
            deadline = time.monotonic() + self.policy.kill_grace_seconds
            for slot in self._slots:
                if slot.proc is not None:
                    slot.proc.join(max(0.0, deadline - time.monotonic()))
        for slot in self._slots:
            self._kill_slot(slot)
        instruments.fleet_workers().set(0)
        instruments.fleet_shm_bytes().set(0)
        # Workers have all exited (or been killed): force the unlink so
        # a kill -9'd worker's never-decremented refcount cannot leak
        # the segment, then drop the owner mapping.
        self.shared.unlink()
        self.shared.close()

    def __enter__(self) -> "FleetPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()
