"""The shared, immutable graph index every query-service path runs on.

A :class:`GraphIndex` is one graph plus everything worth amortizing
across queries:

* the per-label multi-source Dijkstra cache
  (:class:`~repro.core.cache.LabelDistanceCache`, LRU-bounded here so a
  long-tailed label stream cannot grow memory without bound),
* label statistics (frequencies, used by planners and workloads),
* the component decomposition (computed once, reused for fast
  infeasibility answers instead of per-query BFS).

It subsumes the older ``PreparedGraph``: build one index per graph,
share it freely across threads (all mutable internals are
lock-protected), and route every solve through :meth:`solve` /
:meth:`execute`.  The contract is the standard index contract — the
underlying graph must not be mutated while indexed.

:meth:`execute` is the telemetry-bearing entry point: it never raises,
returning a :class:`QueryOutcome` that carries either a result or the
captured error, plus a :class:`~repro.service.telemetry.QueryTrace`
with per-stage timings.  :meth:`solve` is the thin raising wrapper the
one-shot facade (:func:`repro.core.solver.solve_gst`) delegates to.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Tuple, Union

from ..core.budget import Budget
from ..core.cache import LabelDistanceCache
from ..core.context import QueryContext
from ..core.query import GSTQuery
from ..core.result import GSTResult
from ..core.solver import ALGORITHMS
from ..errors import (
    InfeasibleQueryError,
    LimitExceededError,
    QueryCancelledError,
    ReproError,
    StoreError,
)
from ..graph.components import component_ids as _component_ids
from ..graph.graph import Graph
from ..obs import instruments
from .telemetry import QueryTrace

__all__ = ["GraphIndex", "QueryOutcome", "DEFAULT_MAX_CACHED_LABELS"]

# Default LRU bound for the shared label cache: generous for realistic
# vocabularies, but a hard ceiling against unbounded growth.
DEFAULT_MAX_CACHED_LABELS = 4096

_MAX_TRACE_EVENTS = 64


@dataclass
class QueryOutcome:
    """One query's result *or* captured error, plus its trace.

    The executor returns these so a single infeasible or failing query
    cannot sink the batch; ``raise_for_error`` restores raising
    behavior where that is wanted.
    """

    query_id: Optional[Union[int, str]]
    labels: Tuple[Hashable, ...]
    algorithm: str
    result: Optional[GSTResult]
    error: Optional[BaseException]
    trace: QueryTrace

    @property
    def ok(self) -> bool:
        return self.error is None

    def raise_for_error(self) -> GSTResult:
        """Return the result, re-raising the captured error if any."""
        if self.error is not None:
            raise self.error
        assert self.result is not None
        return self.result


class GraphIndex:
    """Immutable-graph handle owning the cross-query caches."""

    def __init__(
        self,
        graph: Graph,
        *,
        max_cached_labels: Optional[int] = DEFAULT_MAX_CACHED_LABELS,
        cache: Optional[LabelDistanceCache] = None,
    ) -> None:
        started = time.perf_counter()
        self.graph = graph
        # Freeze once: the CSR snapshot is immutable, so every query on
        # this index (across all executor threads) shares it without
        # locking, and the whole read path runs on the flat kernels.
        freeze_started = time.perf_counter()
        self.snapshot = graph.freeze()
        self.snapshot_build_seconds = time.perf_counter() - freeze_started
        instruments.record_snapshot_build(self.snapshot_build_seconds)
        if cache is not None:
            if cache.graph is not graph:
                raise ValueError(
                    "distance cache was built for a different graph; "
                    "caches cannot be shared across graphs"
                )
            self.cache = cache
        else:
            self.cache = LabelDistanceCache(graph, max_labels=max_cached_labels)
        self._lock = threading.Lock()
        self._component_ids: Optional[List[int]] = None
        self._label_components: Dict[Hashable, frozenset] = {}
        # Persistent-store attachment (see repro.store / attach_store).
        self.store = None
        self.result_cache = None
        self.warm_loaded = 0
        self._fingerprint: Optional[str] = None
        self.build_seconds = time.perf_counter() - started

    @classmethod
    def ensure(cls, graph_or_index: Union[Graph, "GraphIndex"]) -> "GraphIndex":
        """Coerce a raw graph to an index (identity on an index)."""
        if isinstance(graph_or_index, GraphIndex):
            return graph_or_index
        return cls(graph_or_index)

    # ------------------------------------------------------------------
    # Persistent precompute store (repro.store)
    # ------------------------------------------------------------------
    @property
    def fingerprint(self) -> str:
        """The graph's structural fingerprint (computed once, cached)."""
        with self._lock:
            if self._fingerprint is None:
                from ..store.manifest import graph_fingerprint

                self._fingerprint = graph_fingerprint(self.graph)
            return self._fingerprint

    def attach_store(
        self,
        store,
        *,
        warm: bool = True,
        warm_labels: Optional[Iterable[Hashable]] = None,
        load_results: bool = True,
        **result_cache_kwargs,
    ) -> int:
        """Bind a :class:`~repro.store.PrecomputeStore` to this index.

        Verifies the store's graph fingerprint (raising a typed
        :class:`~repro.errors.StoreError` on mismatch — fail closed),
        warm-loads the label-Dijkstra cache from the stored distance
        tables (``warm_labels`` restricts which; default all), and
        loads the persisted epsilon-aware result cache.  Returns the
        number of label tables preloaded.  Store provenance is recorded
        on the index (``store``, ``warm_loaded``) and shows up in
        :meth:`cache_info` and every :class:`QueryTrace`.
        """
        from ..store.store import PrecomputeStore

        if isinstance(store, str):
            store = PrecomputeStore.open(store, self.graph)
        else:
            store.check_graph(self.graph)
        loaded = 0
        if warm:
            loaded = store.warm(self.cache, labels=warm_labels)
        result_cache = (
            store.load_result_cache(**result_cache_kwargs)
            if load_results
            else None
        )
        with self._lock:
            self.store = store
            self.warm_loaded = loaded
            if result_cache is not None:
                self.result_cache = result_cache
        instruments.record_warm_loads(loaded)
        return loaded

    @classmethod
    def open(cls, path: str, graph: Optional[Graph] = None, **index_kwargs) -> "GraphIndex":
        """Open a store directory as a ready-warmed index.

        With no ``graph``, the graph is reloaded from the
        ``graph_stem`` the builder recorded in the manifest (a missing
        stem fails closed with :class:`~repro.errors.StoreError`).
        Either way the fingerprint must match before any artifact is
        trusted.
        """
        from ..graph.io import load_graph
        from ..store.store import PrecomputeStore

        store = PrecomputeStore.open(path, graph)
        if graph is None:
            stem = store.manifest.graph_stem
            if not stem:
                raise StoreError(
                    f"store {path!r} records no graph_stem; pass the graph "
                    "explicitly: GraphIndex.open(path, graph)"
                )
            try:
                graph = load_graph(stem)
            except Exception as exc:
                raise StoreError(
                    f"store {path!r}: cannot reload graph from stem "
                    f"{stem!r}: {exc}"
                ) from None
            store.check_graph(graph)
        index = cls(graph, **index_kwargs)
        index.attach_store(store)
        return index

    def save_results(self) -> int:
        """Persist the live result cache back to the attached store."""
        if self.store is None or self.result_cache is None:
            return 0
        return self.store.save_result_cache(self.result_cache)

    def cached_outcome(
        self,
        labels: Iterable[Hashable],
        *,
        algorithm: str = "pruneddp++",
        budget: Optional[Budget] = None,
        epsilon: Optional[float] = None,
        query_id: Optional[Union[int, str]] = None,
    ) -> Optional["QueryOutcome"]:
        """A :class:`QueryOutcome` served from the result cache, or None.

        The epsilon-aware reuse rule: a cached answer proven within
        ``(1+ε)`` serves this request only when the requested
        ``ε' ≥ ε`` (same label set, same resolved algorithm tier).
        Never raises — any resolution error means "no cached answer"
        and the caller runs the normal path.
        """
        if self.result_cache is None:
            return None
        labels = tuple(labels)
        started = time.perf_counter()
        try:
            key = self.resolve_algorithm(algorithm, labels)
        except ValueError:
            return None
        if epsilon is None:
            epsilon = budget.epsilon if budget is not None else 0.0
        entry = self.result_cache.lookup(labels, key, epsilon)
        if entry is None:
            return None
        result = entry.to_result(labels)
        trace = QueryTrace(
            query_id=query_id,
            labels=labels,
            algorithm=key,
            index_build_seconds=self.build_seconds,
            store_hit=True,
            result_cache="hit",
        )
        trace.weight = result.weight
        trace.optimal = result.optimal
        trace.ratio = result.ratio
        trace.wall_seconds = time.perf_counter() - started
        return QueryOutcome(
            query_id=query_id,
            labels=labels,
            algorithm=key,
            result=result,
            error=None,
            trace=trace,
        )

    # ------------------------------------------------------------------
    # Graph / label statistics
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return self.graph.num_nodes

    @property
    def num_edges(self) -> int:
        return self.graph.num_edges

    @property
    def num_labels(self) -> int:
        return self.graph.num_labels

    def label_frequency(self, label: Hashable) -> int:
        return self.graph.label_frequency(label)

    def cache_info(self) -> dict:
        """Hit/miss/eviction counters of the shared label cache.

        Flat label-cache counters (``hits``/``misses``/``evictions``/
        ``warm_loads``/...) plus, when a store is attached, its
        provenance under ``"store"`` and the result cache's counters
        under ``"result_cache"`` — so warm-load effectiveness is
        observable, not just cache size.
        """
        info = self.cache.counters()
        info["snapshot"] = self.snapshot.info()
        info["store"] = (
            {
                "path": self.store.path,
                "fingerprint": self.store.manifest.fingerprint,
                "stored_labels": len(self.store.manifest.labels),
                "warm_loaded": self.warm_loaded,
            }
            if self.store is not None
            else None
        )
        info["result_cache"] = (
            self.result_cache.counters() if self.result_cache is not None else None
        )
        return info

    # ------------------------------------------------------------------
    # Component decomposition (built once, lazily)
    # ------------------------------------------------------------------
    @property
    def component_ids(self) -> List[int]:
        """Per-node component id; computed on first use, then shared."""
        with self._lock:
            if self._component_ids is None:
                started = time.perf_counter()
                self._component_ids = _component_ids(self.graph)
                self.build_seconds += time.perf_counter() - started
            return self._component_ids

    @property
    def num_components(self) -> int:
        ids = self.component_ids
        return max(ids) + 1 if ids else 0

    def _components_of_label(self, label: Hashable) -> frozenset:
        with self._lock:
            cached = self._label_components.get(label)
            if cached is not None:
                return cached
        ids = self.component_ids
        present = frozenset(ids[node] for node in self.graph.nodes_with_label(label))
        with self._lock:
            self._label_components[label] = present
        return present

    def covering_components(self, labels: Iterable[Hashable]) -> List[int]:
        """Component ids containing at least one node of every label.

        Empty means the query is infeasible — answered from the cached
        decomposition without running a single Dijkstra.
        """
        qualifying: Optional[frozenset] = None
        for label in labels:
            present = self._components_of_label(label)
            qualifying = present if qualifying is None else qualifying & present
            if not qualifying:
                return []
        return sorted(qualifying or ())

    def is_feasible(self, labels: Iterable[Hashable]) -> bool:
        """Whether some connected component covers every label."""
        labels = tuple(labels)
        if not labels:
            return False
        if any(self.graph.label_frequency(label) == 0 for label in labels):
            return False
        return bool(self.covering_components(labels))

    # ------------------------------------------------------------------
    # Query execution
    # ------------------------------------------------------------------
    def context(self, labels: Union[GSTQuery, Iterable[Hashable]]) -> QueryContext:
        """Build a query context against the shared label cache."""
        query = labels if isinstance(labels, GSTQuery) else GSTQuery(labels)
        return QueryContext.build(self.graph, query, cache=self.cache)

    def resolve_algorithm(self, algorithm: str, labels: Sequence[Hashable]) -> str:
        """Canonical solver key for ``algorithm`` (``"auto"`` is planned)."""
        key = algorithm.lower()
        if key == "auto":
            from ..core.planner import plan_algorithm

            key, _ = plan_algorithm(self.graph, labels)
        if key not in ALGORITHMS:
            raise ValueError(
                f"unknown algorithm {algorithm!r}; choose from "
                f"{sorted(ALGORITHMS) + ['auto']}"
            )
        return key

    # Backwards-compatible private alias.
    _resolve_algorithm = resolve_algorithm

    def solve(
        self,
        labels: Iterable[Hashable],
        *,
        algorithm: str = "pruneddp++",
        budget: Optional[Budget] = None,
        **solver_kwargs,
    ) -> GSTResult:
        """Solve one query on the shared index (raises on failure)."""
        outcome = self.execute(
            labels, algorithm=algorithm, budget=budget, **solver_kwargs
        )
        return outcome.raise_for_error()

    def execute(
        self,
        labels: Iterable[Hashable],
        *,
        algorithm: str = "pruneddp++",
        budget: Optional[Budget] = None,
        query_id: Optional[Union[int, str]] = None,
        use_result_cache: bool = True,
        **solver_kwargs,
    ) -> QueryOutcome:
        """Run one query, capturing errors and per-stage telemetry.

        Never raises: infeasible queries, expired deadlines and solver
        errors all come back as a :class:`QueryOutcome` whose ``error``
        field holds the exception (``result`` is then ``None``).

        When a store's result cache is attached it is consulted first
        (``use_result_cache=False`` skips the check — the executor sets
        this after doing its own pre-admission lookup) and successful
        outcomes are written back.
        """
        labels = tuple(labels)
        if use_result_cache and self.result_cache is not None:
            cached = self.cached_outcome(
                labels,
                algorithm=algorithm,
                budget=budget,
                epsilon=solver_kwargs.get("epsilon"),
                query_id=query_id,
            )
            if cached is not None:
                return cached
        wall_started = time.perf_counter()
        trace = QueryTrace(
            query_id=query_id,
            labels=labels,
            algorithm=algorithm,
            index_build_seconds=self.build_seconds,
            snapshot_build_seconds=self.snapshot_build_seconds,
        )
        events = trace.events

        def on_event(name: str, payload: dict) -> None:
            if len(events) < _MAX_TRACE_EVENTS:
                record = {"event": name}
                record.update(payload)
                events.append(record)

        result: Optional[GSTResult] = None
        error: Optional[BaseException] = None
        try:
            key = self.resolve_algorithm(algorithm, labels)
            trace.algorithm = key
            if budget is not None and budget.expired():
                trace.status = "skipped"
                raise LimitExceededError(
                    "batch deadline expired before query started"
                )
            if budget is not None and budget.cancelled():
                trace.status = "cancelled"
                trace.cancelled = True
                reason = budget.cancel_token.reason
                raise QueryCancelledError(
                    "query cancelled before it started"
                    + (f": {reason}" if reason else "")
                )
            solver_cls = ALGORITHMS[key]
            distinct = set(labels)
            trace.cache_hits = sum(1 for label in distinct if label in self.cache)
            trace.cache_misses = len(distinct) - trace.cache_hits
            trace.warm_labels = sum(
                1 for label in distinct if self.cache.is_warm(label)
            )
            trace.store_hit = trace.warm_labels > 0
            if self.result_cache is not None:
                trace.result_cache = "miss"
            solver = solver_cls(
                self.graph,
                labels,
                budget=budget,
                distance_cache=self.cache,
                on_event=on_event,
                **solver_kwargs,
            )
            stage_started = time.perf_counter()
            try:
                context = solver.build_context()
            finally:
                trace.stages["context_build"] = time.perf_counter() - stage_started
            trace.kernel = getattr(context, "kernel", None)
            stage_started = time.perf_counter()
            prepared = solver.prepare(context)
            trace.stages["bounds_build"] = time.perf_counter() - stage_started
            stage_started = time.perf_counter()
            result = solver.run_search(context, prepared)
            search_wall = time.perf_counter() - stage_started
            if result.stats.cancelled:
                # The token fired mid-search.  The progressive contract
                # makes any incumbent feasible tree a valid (bounded-gap)
                # answer; without one the cancellation is an error.
                trace.status = "cancelled"
                trace.cancelled = True
                if result.tree is None:
                    result = None
                    reason = (
                        budget.cancel_token.reason
                        if budget is not None and budget.cancel_token is not None
                        else None
                    )
                    raise QueryCancelledError(
                        "query cancelled before any feasible answer was found"
                        + (f": {reason}" if reason else "")
                    )
            feasible = result.stats.feasible_seconds
            trace.stages["search"] = max(0.0, search_wall - feasible)
            trace.stages["feasible"] = feasible
            trace.weight = result.weight
            trace.optimal = result.optimal
            trace.ratio = result.ratio
            trace.stats = result.stats.to_dict()
            if prepared is not None and prepared[0] is not None:
                trace.bounds_cache = prepared[0].cache_info()
            if self.result_cache is not None and trace.status == "ok":
                # Write back: later requests with the same label set,
                # tier, and an epsilon no tighter than what this run
                # proved are served straight from the cache.
                self.result_cache.put(labels, key, result)
        except InfeasibleQueryError as exc:
            trace.status = "infeasible"
            trace.error = str(exc)
            error = exc
        except ReproError as exc:
            if trace.status == "ok":
                trace.status = "error"
            trace.error = str(exc)
            error = exc
        except Exception as exc:  # per-query isolation: no batch sinking
            trace.status = "error"
            trace.error = f"{type(exc).__name__}: {exc}"
            error = exc
        trace.wall_seconds = time.perf_counter() - wall_started
        return QueryOutcome(
            query_id=query_id,
            labels=labels,
            algorithm=trace.algorithm,
            result=result,
            error=error,
            trace=trace,
        )
