"""Resource governance and graceful degradation for the query service.

The paper's progressive framework means an interrupted query still has
a feasible answer with a known approximation gap.  This module turns
that property into fault tolerance — four cooperating mechanisms the
:class:`~repro.service.executor.QueryExecutor` composes into one
pipeline per query:

* **Cooperative cancellation** — a shared
  :class:`~repro.core.budget.CancellationToken` rides the
  :class:`~repro.core.budget.Budget` into the engine's pop loop, so a
  deadline-expired or user-cancelled query stops within a bounded
  number of state pops instead of running to completion.
* **Admission control** (:class:`AdmissionController`) — estimates a
  query's cost from the ``k · 2^k`` DP state space and the index's
  label statistics *before* spending a worker on it, rejecting (typed
  :class:`~repro.errors.QueryRejectedError`) or down-budgeting queries
  that would blow the batch deadline.
* **Retry with a degradation ladder** (:class:`RetryPolicy`) — a query
  that times out or crashes is re-run one rung down
  (``pruneddp++ → pruneddp → basic``) with a growing ``epsilon``; the
  progressive solver's bounded-gap feasible tree is accepted as a
  degraded-but-valid answer, and the degradation is recorded in the
  :class:`~repro.service.telemetry.QueryTrace`.
* **Per-algorithm circuit breaking** (:class:`CircuitBreaker`) — a
  systematically failing configuration trips open after a threshold of
  failures and sheds load straight to the ladder for a cooldown, then
  probes half-open before closing again.

Everything here is deterministic, thread-safe, and dependency-free;
the injectable ``clock`` on breakers keeps the state machine testable
without sleeping.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, Hashable, Optional, Sequence, Tuple

from ..core.budget import Budget
from ..errors import (
    CircuitOpenError,
    LimitExceededError,
    QueryRejectedError,
    ReproError,
    WorkerCrashedError,
)
from ..obs import instruments
from .telemetry import QueryTrace

__all__ = [
    "DEGRADATION_LADDER",
    "AdmissionPolicy",
    "AdmissionDecision",
    "AdmissionController",
    "RetryPolicy",
    "BreakerPolicy",
    "CircuitBreaker",
    "BreakerBoard",
    "ResiliencePipeline",
]

# The degradation ladder, fastest-but-heaviest first.  Each rung trades
# solution quality (via a looser epsilon) and per-query preprocessing
# (PrunedDP++'s route tables, PrunedDP's pruning theorems) for a better
# chance of finishing inside the budget.
DEGRADATION_LADDER: Tuple[str, ...] = ("pruneddp++", "pruneddp", "basic")


# ----------------------------------------------------------------------
# Admission control
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class AdmissionPolicy:
    """Knobs for :class:`AdmissionController`.

    ``max_estimated_states``
        Hard ceiling on the estimated DP state space; queries above it
        are rejected (``action="reject"``) or down-budgeted
        (``action="clamp"``, which caps ``max_states`` at the ceiling).
    ``max_k``
        Reject queries with more than this many distinct labels — the
        ``2^k`` factor makes ``k`` the single most dangerous dimension.
    ``states_per_second``
        Calibration constant translating estimated states into seconds
        (used only when the budget carries a deadline).
    ``deadline_headroom``
        Fraction of the remaining batch deadline one query may claim;
        estimates above it trigger the configured ``action``.
    ``action``
        ``"reject"`` fails the query fast with
        :class:`~repro.errors.QueryRejectedError`; ``"clamp"`` admits it
        with a budget tightened to fit (``max_states`` / ``time_limit``).
    """

    max_estimated_states: Optional[int] = None
    max_k: Optional[int] = None
    states_per_second: float = 200_000.0
    deadline_headroom: float = 1.0
    action: str = "reject"

    def __post_init__(self) -> None:
        if self.max_estimated_states is not None and self.max_estimated_states <= 0:
            raise ValueError("max_estimated_states must be positive")
        if self.max_k is not None and self.max_k <= 0:
            raise ValueError("max_k must be positive")
        if self.states_per_second <= 0:
            raise ValueError("states_per_second must be positive")
        if not 0.0 < self.deadline_headroom <= 1.0:
            raise ValueError("deadline_headroom must be in (0, 1]")
        if self.action not in ("reject", "clamp"):
            raise ValueError("action must be 'reject' or 'clamp'")


@dataclass(frozen=True)
class AdmissionDecision:
    """What the controller decided for one query, and why."""

    action: str  # "admit" | "clamp" | "reject"
    estimated_states: int
    estimated_seconds: float
    reason: Optional[str] = None
    budget: Optional[Budget] = None  # the (possibly clamped) budget to run with

    @property
    def admitted(self) -> bool:
        return self.action != "reject"

    def to_dict(self) -> dict:
        return {
            "action": self.action,
            "estimated_states": self.estimated_states,
            "estimated_seconds": self.estimated_seconds,
            "reason": self.reason,
        }


class AdmissionController:
    """Pre-flight cost estimation against one shared index.

    The estimate is the classic DP state-space bound specialised with
    the index's label statistics: the search explores at most
    ``2^k - 1`` masks per node, and the populated node set is bounded
    both by ``|V|`` and by what ``k`` multi-source Dijkstras seeded from
    ``Σ|V_p|`` group members can reach.  We use

    ``estimated_states = min(|V|, k · Σ|V_p| · EXPANSION) · (2^k - 1)``

    — a coarse upper-bound surrogate (real runs prune far below it; the
    ``states_per_second`` calibration absorbs the constant), but
    monotone in exactly the quantities that make an instance dangerous:
    ``k``, group sizes, and graph size.
    """

    # How many nodes each Dijkstra seed "activates" in the estimate.
    SEED_EXPANSION = 8

    def __init__(
        self, index, policy: Optional[AdmissionPolicy] = None
    ) -> None:
        self.index = index
        self.policy = policy or AdmissionPolicy()

    # ------------------------------------------------------------------
    def estimate_states(self, labels: Sequence[Hashable]) -> int:
        """Estimated DP state-space size for this query on this graph."""
        distinct = tuple(dict.fromkeys(labels))
        k = len(distinct)
        if k == 0:
            return 0
        group_total = sum(
            self.index.label_frequency(label) for label in distinct
        )
        reachable = min(
            self.index.num_nodes,
            max(1, k * group_total * self.SEED_EXPANSION),
        )
        return reachable * ((1 << k) - 1)

    def assess(
        self, labels: Sequence[Hashable], budget: Optional[Budget]
    ) -> AdmissionDecision:
        """Decide admit / clamp / reject for one query (never raises)."""
        policy = self.policy
        distinct = tuple(dict.fromkeys(labels))
        k = len(distinct)
        states = self.estimate_states(distinct)
        seconds = states / policy.states_per_second

        if policy.max_k is not None and k > policy.max_k:
            return AdmissionDecision(
                action="reject",
                estimated_states=states,
                estimated_seconds=seconds,
                reason=f"query has k={k} labels; policy allows max_k={policy.max_k}",
            )

        over_ceiling = (
            policy.max_estimated_states is not None
            and states > policy.max_estimated_states
        )
        remaining = budget.remaining() if budget is not None else None
        allowance = (
            remaining * policy.deadline_headroom if remaining is not None else None
        )
        over_deadline = allowance is not None and seconds > allowance

        if not over_ceiling and not over_deadline:
            return AdmissionDecision(
                action="admit",
                estimated_states=states,
                estimated_seconds=seconds,
                budget=budget,
            )

        if over_ceiling:
            reason = (
                f"estimated {states} DP states exceeds ceiling "
                f"{policy.max_estimated_states}"
            )
        else:
            reason = (
                f"estimated {seconds:.3f}s exceeds the remaining deadline "
                f"allowance {allowance:.3f}s"
            )
        if policy.action == "reject":
            return AdmissionDecision(
                action="reject",
                estimated_states=states,
                estimated_seconds=seconds,
                reason=reason,
            )

        # Clamp: admit, but inside a budget the batch can survive.
        clamped = budget or Budget()
        if policy.max_estimated_states is not None:
            cap = policy.max_estimated_states
            if clamped.max_states is None or clamped.max_states > cap:
                clamped = clamped.replace(max_states=cap, on_limit="return")
        if allowance is not None:
            if clamped.time_limit is None or clamped.time_limit > allowance:
                clamped = clamped.replace(time_limit=max(0.0, allowance))
        return AdmissionDecision(
            action="clamp",
            estimated_states=states,
            estimated_seconds=seconds,
            reason=reason,
            budget=clamped,
        )

    def admit(
        self, labels: Sequence[Hashable], budget: Optional[Budget]
    ) -> Optional[Budget]:
        """Raising form of :meth:`assess`: the admitted budget, or
        :class:`~repro.errors.QueryRejectedError`."""
        decision = self.assess(labels, budget)
        if not decision.admitted:
            raise QueryRejectedError(
                decision.reason or "query rejected by admission control",
                estimated_states=decision.estimated_states,
                estimated_seconds=decision.estimated_seconds,
            )
        return decision.budget


# ----------------------------------------------------------------------
# Retry with degradation
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RetryPolicy:
    """How a failed query is re-run.

    ``max_retries``
        Extra attempts after the first failure (0 disables retries).
    ``ladder``
        Algorithm rungs, strongest first; a retry moves one rung down
        from the requested algorithm's position (clamped at the bottom).
    ``epsilon_ladder``
        Epsilon per retry number; the effective epsilon of attempt *i*
        is ``max(budget.epsilon, epsilon_ladder[min(i, last)])`` — it
        only ever grows, so a degraded answer's recorded gap is honest.
    ``degrade``
        ``False`` retries the *same* algorithm and epsilon (plain
        retry); ``True`` walks the ladder.
    """

    max_retries: int = 2
    ladder: Tuple[str, ...] = DEGRADATION_LADDER
    epsilon_ladder: Tuple[float, ...] = (0.1, 0.25, 0.5)
    degrade: bool = True

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if not self.ladder:
            raise ValueError("ladder must not be empty")
        if not self.epsilon_ladder:
            raise ValueError("epsilon_ladder must not be empty")

    def rung(
        self, requested: str, attempt: int, budget: Optional[Budget]
    ) -> Tuple[str, Optional[Budget]]:
        """Algorithm and budget for retry number ``attempt`` (1-based)."""
        if not self.degrade:
            return requested, budget
        try:
            start = self.ladder.index(requested)
        except ValueError:
            # Requested algorithm is off-ladder (e.g. "dpbf"): the first
            # retry enters the ladder at the top.
            start = -1
        position = min(start + attempt, len(self.ladder) - 1)
        epsilon = self.epsilon_ladder[min(attempt - 1, len(self.epsilon_ladder) - 1)]
        base = budget or Budget()
        degraded_budget = base.replace(epsilon=max(base.epsilon, epsilon))
        return self.ladder[position], degraded_budget


def retryable(outcome) -> bool:
    """Whether a failed outcome is worth re-running.

    Deterministic failures (infeasible queries, malformed input,
    admission rejections) and terminal ones (deadline skips, user
    cancellations) are not; resource-limit hits and *unexpected*
    exceptions are — those are exactly the cases a lower rung or a
    looser epsilon can rescue.
    """
    error = outcome.error
    if error is None:
        return False
    if outcome.trace.status in ("skipped", "cancelled", "rejected", "infeasible"):
        return False
    if isinstance(error, LimitExceededError):
        return True
    if isinstance(error, WorkerCrashedError):
        # A dead worker says nothing about the query; a retry resumes
        # it from its latest checkpoint (or re-runs it cold).
        return True
    return not isinstance(error, ReproError)


# ----------------------------------------------------------------------
# Circuit breaking
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class BreakerPolicy:
    """Thresholds for the per-algorithm circuit breakers."""

    failure_threshold: int = 5
    cooldown_seconds: float = 30.0
    half_open_probes: int = 1

    def __post_init__(self) -> None:
        if self.failure_threshold <= 0:
            raise ValueError("failure_threshold must be positive")
        if self.cooldown_seconds < 0:
            raise ValueError("cooldown_seconds must be >= 0")
        if self.half_open_probes <= 0:
            raise ValueError("half_open_probes must be positive")


class CircuitBreaker:
    """The classic closed → open → half-open state machine.

    ``closed``: requests flow; consecutive failures are counted and the
    ``failure_threshold``-th trips the breaker open.  ``open``: requests
    are refused until ``cooldown_seconds`` elapse, after which the next
    ``allow`` transitions to half-open.  ``half_open``: up to
    ``half_open_probes`` in-flight probes are admitted; one success
    closes the breaker, one failure re-opens it (restarting the
    cooldown).  All transitions are lock-protected; ``clock`` is
    injectable so tests never sleep.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(
        self,
        policy: Optional[BreakerPolicy] = None,
        *,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.policy = policy or BreakerPolicy()
        self._clock = clock
        self._lock = threading.Lock()
        self._state = self.CLOSED
        self._failures = 0
        self._opened_at: Optional[float] = None
        self._probes_in_flight = 0

    @property
    def state(self) -> str:
        with self._lock:
            return self._effective_state()

    def _effective_state(self) -> str:
        # Lock must be held.  An elapsed cooldown shows as half-open.
        if (
            self._state == self.OPEN
            and self._clock() - self._opened_at >= self.policy.cooldown_seconds
        ):
            return self.HALF_OPEN
        return self._state

    def allow(self) -> bool:
        """Whether a request may proceed (reserves a half-open probe)."""
        with self._lock:
            state = self._effective_state()
            if state == self.CLOSED:
                return True
            if state == self.OPEN:
                return False
            # Half-open: admit a bounded number of concurrent probes.
            if self._state == self.OPEN:  # cooldown just elapsed
                self._state = self.HALF_OPEN
                self._probes_in_flight = 0
            if self._probes_in_flight < self.policy.half_open_probes:
                self._probes_in_flight += 1
                return True
            return False

    def record_success(self) -> None:
        with self._lock:
            if self._state == self.HALF_OPEN:
                self._state = self.CLOSED
                self._failures = 0
                self._probes_in_flight = 0
                self._opened_at = None
            elif self._state == self.CLOSED:
                self._failures = 0

    def record_failure(self) -> None:
        with self._lock:
            if self._state == self.HALF_OPEN:
                self._state = self.OPEN
                self._opened_at = self._clock()
                self._probes_in_flight = 0
            elif self._state == self.CLOSED:
                self._failures += 1
                if self._failures >= self.policy.failure_threshold:
                    self._state = self.OPEN
                    self._opened_at = self._clock()

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "state": self._effective_state(),
                "consecutive_failures": self._failures,
                "probes_in_flight": self._probes_in_flight,
            }


class BreakerBoard:
    """One :class:`CircuitBreaker` per algorithm, created on demand."""

    def __init__(
        self,
        policy: Optional[BreakerPolicy] = None,
        *,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.policy = policy or BreakerPolicy()
        self._clock = clock
        self._lock = threading.Lock()
        self._breakers: Dict[str, CircuitBreaker] = {}

    def breaker(self, algorithm: str) -> CircuitBreaker:
        with self._lock:
            breaker = self._breakers.get(algorithm)
            if breaker is None:
                breaker = CircuitBreaker(self.policy, clock=self._clock)
                self._breakers[algorithm] = breaker
            return breaker

    def allow(self, algorithm: str) -> bool:
        breaker = self.breaker(algorithm)
        allowed = breaker.allow()
        instruments.set_breaker_state(algorithm, breaker.state)
        return allowed

    def record_success(self, algorithm: str) -> None:
        breaker = self.breaker(algorithm)
        breaker.record_success()
        instruments.set_breaker_state(algorithm, breaker.state)

    def record_failure(self, algorithm: str) -> None:
        breaker = self.breaker(algorithm)
        breaker.record_failure()
        instruments.set_breaker_state(algorithm, breaker.state)

    def snapshot(self) -> Dict[str, dict]:
        with self._lock:
            breakers = dict(self._breakers)
        return {name: breaker.snapshot() for name, breaker in breakers.items()}


# ----------------------------------------------------------------------
# The per-query pipeline
# ----------------------------------------------------------------------
class ResiliencePipeline:
    """Admission → breaker-gated execution → retry ladder, per query.

    The executor owns one pipeline and routes every query through
    :meth:`run`, which upholds the same isolation contract as
    :meth:`GraphIndex.execute <repro.service.index.GraphIndex.execute>`:
    it never raises — rejections, open circuits, exhausted retries and
    cancellations all come back as a ``QueryOutcome`` whose trace
    records what the pipeline did (``attempts``, ``retries``,
    ``degraded``, ``breaker_skips``, ``admission``).
    """

    def __init__(
        self,
        *,
        admission: Optional[AdmissionController] = None,
        retry_policy: Optional[RetryPolicy] = None,
        breakers: Optional[BreakerBoard] = None,
    ) -> None:
        self.admission = admission
        self.retry_policy = retry_policy
        self.breakers = breakers

    @property
    def is_noop(self) -> bool:
        return (
            self.admission is None
            and self.retry_policy is None
            and self.breakers is None
        )

    # ------------------------------------------------------------------
    def run(
        self,
        index,
        labels,
        *,
        algorithm: str,
        budget: Optional[Budget],
        query_id=None,
        execute=None,
        **solver_kwargs,
    ):
        """Run one query through admission → breakers → retry ladder.

        ``execute`` overrides how each attempt actually runs (same
        signature and never-raises contract as ``index.execute``); the
        process-isolation backend injects its worker dispatch here so
        crashed workers flow through the same ladder as timeouts.
        """
        labels = tuple(labels)
        if execute is None:
            execute = index.execute
        try:
            requested = index.resolve_algorithm(algorithm, labels)
        except ValueError:
            # Unknown algorithm: let execute() capture it the usual way.
            return execute(
                labels,
                algorithm=algorithm,
                budget=budget,
                query_id=query_id,
                **solver_kwargs,
            )

        admission_record = None
        if self.admission is not None:
            decision = self.admission.assess(labels, budget)
            admission_record = decision.to_dict()
            if not decision.admitted:
                return self._failed_outcome(
                    labels,
                    requested,
                    query_id,
                    status="rejected",
                    error=QueryRejectedError(
                        decision.reason or "query rejected by admission control",
                        estimated_states=decision.estimated_states,
                        estimated_seconds=decision.estimated_seconds,
                    ),
                    admission=admission_record,
                )
            budget = decision.budget if decision.budget is not None else budget

        ladder = (
            self.retry_policy.ladder if self.retry_policy is not None
            else DEGRADATION_LADDER
        )
        max_attempts = 1 + (
            self.retry_policy.max_retries if self.retry_policy is not None else 0
        )

        algo = requested
        attempt_budget = budget
        failures = 0
        retry_records = []
        breaker_skips = []
        outcome = None

        while True:
            # Circuit gate: an open breaker sheds this rung to the next
            # one down the ladder without spending a solver run on it.
            if self.breakers is not None:
                shed = self._shed_open_breakers(algo, ladder, breaker_skips)
                if shed is None:
                    return self._failed_outcome(
                        labels,
                        algo,
                        query_id,
                        status="error",
                        error=CircuitOpenError(
                            "circuit breakers are open for every eligible "
                            f"algorithm (skipped: {', '.join(breaker_skips)})"
                        ),
                        admission=admission_record,
                        requested=requested,
                        retries=retry_records,
                        breaker_skips=breaker_skips,
                    )
                if shed != algo:
                    algo = shed
                    attempt_budget = self._degraded_budget(
                        attempt_budget, failures
                    )

            outcome = execute(
                labels,
                algorithm=algo,
                budget=attempt_budget,
                query_id=query_id,
                **solver_kwargs,
            )

            if outcome.error is None:
                if self.breakers is not None:
                    self.breakers.record_success(algo)
                break
            if not retryable(outcome):
                break
            if self.breakers is not None:
                self.breakers.record_failure(algo)
            failures += 1
            if failures >= max_attempts:
                break
            retry_records.append(
                {
                    "algorithm": outcome.trace.algorithm,
                    "epsilon": (
                        attempt_budget.epsilon if attempt_budget is not None else 0.0
                    ),
                    "status": outcome.trace.status,
                    "error": outcome.trace.error,
                    "wall_seconds": outcome.trace.wall_seconds,
                }
            )
            algo, attempt_budget = self.retry_policy.rung(
                requested, failures, budget
            )

        trace = outcome.trace
        trace.requested_algorithm = requested
        # Every retried failure left a record; the final attempt
        # (success or terminal failure) is the outcome itself.
        trace.attempts = len(retry_records) + 1
        trace.retries = retry_records
        trace.breaker_skips = breaker_skips
        trace.admission = admission_record
        final_epsilon = (
            attempt_budget.epsilon if attempt_budget is not None else 0.0
        )
        base_epsilon = budget.epsilon if budget is not None else 0.0
        trace.degraded = bool(
            trace.algorithm != requested or final_epsilon > base_epsilon
        )
        return outcome

    # ------------------------------------------------------------------
    def _shed_open_breakers(self, algo, ladder, breaker_skips):
        """First algorithm at or below ``algo`` whose breaker admits.

        Returns ``None`` when the whole remaining ladder is open.
        """
        if self.breakers.allow(algo):
            return algo
        breaker_skips.append(algo)
        try:
            position = ladder.index(algo)
        except ValueError:
            position = -1
        for candidate in ladder[position + 1:]:
            if self.breakers.allow(candidate):
                return candidate
            breaker_skips.append(candidate)
        return None

    def _degraded_budget(self, budget: Optional[Budget], failures: int):
        """Budget for a breaker-shed rung (epsilon grows like a retry)."""
        if self.retry_policy is None:
            return budget
        base = budget or Budget()
        epsilon = self.retry_policy.epsilon_ladder[
            min(failures, len(self.retry_policy.epsilon_ladder) - 1)
        ]
        return base.replace(epsilon=max(base.epsilon, epsilon))

    def _failed_outcome(
        self,
        labels,
        algorithm,
        query_id,
        *,
        status,
        error,
        admission=None,
        requested=None,
        retries=None,
        breaker_skips=None,
    ):
        # Imported here to avoid a module cycle (index imports nothing
        # from resilience, but keeping it one-directional anyway).
        from .index import QueryOutcome

        trace = QueryTrace(
            query_id=query_id,
            labels=tuple(labels),
            algorithm=algorithm,
            status=status,
            error=str(error),
            requested_algorithm=requested or algorithm,
            retries=list(retries or ()),
            breaker_skips=list(breaker_skips or ()),
            admission=admission,
        )
        # No solver ran for the failing decision itself: executions are
        # exactly the recorded (retried) attempts — 0 for a rejection.
        trace.attempts = len(trace.retries)
        return QueryOutcome(
            query_id=query_id,
            labels=tuple(labels),
            algorithm=algorithm,
            result=None,
            error=error,
            trace=trace,
        )
