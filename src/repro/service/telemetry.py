"""Structured per-query telemetry.

Every query executed through the service layer produces one
:class:`QueryTrace`: which stages ran (context build, bound/table
preparation, search, feasible-solution construction), how long each
took, the engine's :class:`~repro.core.result.SearchStats` counters,
the shared cache's hit/miss contribution, and the outcome.  Traces are
plain data — ``to_dict`` is JSON-safe — so they can be logged,
aggregated, or streamed.

:class:`TraceSink` is the standard JSONL destination: one trace per
line, thread-safe appends (the executor's workers all write to one
sink), usable by the CLI ``batch`` command and the benchmark runner.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass, field
from typing import Any, Dict, IO, List, Optional, Tuple, Union

from ..obs.instruments import record_trace_dropped

__all__ = ["QueryTrace", "TraceSink", "STAGES"]

INF = float("inf")

# Canonical per-query stage names, in execution order.  ``search``
# excludes time spent materializing feasible trees, which is reported
# separately as ``feasible`` — so the stages partition the query's wall
# time (plus a sliver of bookkeeping overhead).
STAGES: Tuple[str, ...] = ("context_build", "bounds_build", "search", "feasible")


def _json_num(value):
    if isinstance(value, float) and value == INF:
        return "inf"
    return value


@dataclass
class QueryTrace:
    """One executed query, as the telemetry layer saw it.

    ``status`` is one of ``"ok"`` (a result came back), ``"infeasible"``
    (no component covers the labels), ``"skipped"`` (batch deadline
    expired before the query started), ``"cancelled"`` (the cooperative
    cancellation token fired mid-search), ``"rejected"`` (admission
    control refused the query) or ``"error"`` (anything else); only
    ``"ok"`` and ``"cancelled"`` traces may carry
    ``weight``/``optimal``/``ratio``.

    The resilience fields record what the executor's retry machinery
    did on the query's behalf: ``attempts`` counts solver executions
    (1 when the first try sufficed), ``retries`` holds one record per
    *failed* earlier attempt, ``degraded`` flags that the final answer
    came from a lower ladder rung (or looser epsilon) than requested,
    ``breaker_skips`` lists algorithms skipped because their circuit
    breaker was open, and ``admission`` carries the admission
    controller's cost estimate and decision.
    """

    query_id: Optional[Union[int, str]]
    labels: Tuple[Any, ...]
    algorithm: str
    status: str = "ok"
    wall_seconds: float = 0.0
    stages: Dict[str, float] = field(default_factory=dict)
    weight: Optional[float] = None
    optimal: Optional[bool] = None
    ratio: Optional[float] = None
    stats: Optional[Dict[str, Any]] = None
    cache_hits: int = 0
    cache_misses: int = 0
    index_build_seconds: float = 0.0
    error: Optional[str] = None
    events: List[Dict[str, Any]] = field(default_factory=list)
    # Persistent-store fields (see repro.store): ``store_hit`` is True
    # when the answer or any label table came from an attached store,
    # ``warm_labels`` counts query labels served from store-preloaded
    # distance tables, ``result_cache`` is "hit"/"miss" when a result
    # cache was consulted (None otherwise), and ``bounds_cache`` holds
    # the A* lower-bound memo's size/hit/miss counters.
    store_hit: bool = False
    warm_labels: int = 0
    result_cache: Optional[str] = None
    bounds_cache: Optional[Dict[str, Any]] = None
    # CSR snapshot fields: how long the index spent freezing the graph
    # (0.0 when the snapshot was already cached / never built) and which
    # kernel family the query actually ran on ("csr" or "legacy").
    snapshot_build_seconds: float = 0.0
    kernel: Optional[str] = None
    # Resilience-layer fields (filled in by the executor's pipeline).
    requested_algorithm: Optional[str] = None
    attempts: int = 1
    retries: List[Dict[str, Any]] = field(default_factory=list)
    degraded: bool = False
    cancelled: bool = False
    breaker_skips: List[str] = field(default_factory=list)
    admission: Optional[Dict[str, Any]] = None
    # Durability fields (see repro.service.durability): ``checkpoints``
    # counts engine checkpoints written while this query ran,
    # ``resumed_from`` names the checkpoint file the search was restored
    # from (None for cold solves), ``worker_restarts`` counts process
    # workers respawned on this query's behalf after crashes, and
    # ``watchdog_kills`` counts memory-watchdog checkpoint-then-kill
    # interventions.
    checkpoints: int = 0
    resumed_from: Optional[str] = None
    worker_restarts: int = 0
    watchdog_kills: int = 0
    # Fleet field (see repro.service.fleet): which persistent worker
    # slot served this query (None outside fleet isolation).
    fleet_worker: Optional[int] = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @property
    def stage_total(self) -> float:
        """Sum of all recorded stage timings (≈ ``wall_seconds``)."""
        return sum(self.stages.values())

    def to_dict(self) -> dict:
        """JSON-serializable record (``inf`` weights become ``"inf"``)."""
        return {
            "query_id": self.query_id,
            "labels": [str(label) for label in self.labels],
            "algorithm": self.algorithm,
            "status": self.status,
            "wall_seconds": self.wall_seconds,
            "stages": dict(self.stages),
            "stage_total": self.stage_total,
            "weight": _json_num(self.weight),
            "optimal": self.optimal,
            "ratio": _json_num(self.ratio),
            "stats": self.stats,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "store_hit": self.store_hit,
            "warm_labels": self.warm_labels,
            "result_cache": self.result_cache,
            "bounds_cache": self.bounds_cache,
            "snapshot_build_seconds": self.snapshot_build_seconds,
            "kernel": self.kernel,
            "index_build_seconds": self.index_build_seconds,
            "error": self.error,
            "events": [
                {k: _json_num(v) for k, v in event.items()}
                for event in self.events
            ],
            "requested_algorithm": self.requested_algorithm,
            "attempts": self.attempts,
            "retries": [
                {k: _json_num(v) for k, v in record.items()}
                for record in self.retries
            ],
            "degraded": self.degraded,
            "cancelled": self.cancelled,
            "breaker_skips": list(self.breaker_skips),
            "admission": self.admission,
            "checkpoints": self.checkpoints,
            "resumed_from": self.resumed_from,
            "worker_restarts": self.worker_restarts,
            "watchdog_kills": self.watchdog_kills,
            "fleet_worker": self.fleet_worker,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)


class TraceSink:
    """Append-only JSONL trace writer shared by concurrent workers.

    Accepts a path (opened/closed by the sink) or any writable text
    file object (flushed but left open on ``close``).  ``write`` is
    thread-safe; ``close`` is idempotent, so a sink can pass through
    several owners (executor, server drain, a ``with`` block) and each
    may close it defensively without tripping the others.
    """

    def __init__(self, destination: Union[str, IO[str]]) -> None:
        self._lock = threading.Lock()
        self.count = 0
        self.dropped = 0
        self._closed = False
        if isinstance(destination, str):
            self.path: Optional[str] = destination
            self._file: IO[str] = open(destination, "w", encoding="utf-8")
            self._owns_file = True
        else:
            self.path = getattr(destination, "name", None)
            self._file = destination
            self._owns_file = False

    @property
    def closed(self) -> bool:
        return self._closed

    def write(self, trace: QueryTrace) -> None:
        """Append one trace as a JSON line (flushed immediately)."""
        line = trace.to_json()
        with self._lock:
            if self._closed:
                raise ValueError("write to a closed TraceSink")
            self._file.write(line + "\n")
            self._file.flush()
            self.count += 1

    def write_or_drop(self, trace: QueryTrace) -> bool:
        """``write``, but a closed sink drops the line instead of raising.

        This is the straggler-during-drain path: a query that finishes
        after the server closed the sink must not turn its successful
        answer into a worker error.  The dropped line is counted here
        and in the registry's ``gst_traces_dropped_total`` so the loss
        is visible instead of silent.
        """
        try:
            self.write(trace)
            return True
        except ValueError:
            with self._lock:
                self.dropped += 1
            record_trace_dropped()
            return False

    def flush(self) -> None:
        """Force buffered lines to the destination (no-op once closed)."""
        with self._lock:
            if not self._closed and not self._file.closed:
                self._file.flush()

    def close(self) -> None:
        """Flush and close.  Idempotent; borrowed files stay open."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            if self._file.closed:
                return
            if self._owns_file:
                self._file.close()
            else:
                self._file.flush()

    def __enter__(self) -> "TraceSink":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
