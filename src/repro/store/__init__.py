"""``repro.store`` — persistent precompute & epsilon-aware result cache.

The durable, cross-process layer under the query service: a serving
deployment answers many queries over one immutable graph, so both the
Section-3.1 preprocessing (one multi-source Dijkstra per label) and
finished answers with proven ratios are worth keeping *across process
restarts*, not just in the per-process LRU the service already has.

* :func:`build_store` / ``repro precompute`` — offline builder that
  materializes per-label virtual-node distance tables for the top-K
  hottest labels, plus label statistics, into a versioned store
  directory with a graph-fingerprint manifest;
* :class:`PrecomputeStore` — validated handle: open (fail-closed on
  corruption / version skew / fingerprint mismatch, all typed
  :class:`~repro.errors.StoreError`), warm-load a live
  :class:`~repro.core.cache.LabelDistanceCache`, persist the result
  cache;
* :class:`ResultCache` — epsilon-aware answer cache: an answer proven
  within ``(1+ε)`` serves any later request asking for ``ε' ≥ ε``
  (same label set, same algorithm tier), LRU+TTL bounded;
* wired through :meth:`GraphIndex.attach_store
  <repro.service.index.GraphIndex.attach_store>` /
  :meth:`GraphIndex.open <repro.service.index.GraphIndex.open>` and the
  executor (result-cache consult before admission control, write-back
  after success).

Typical use::

    from repro.store import build_store, PrecomputeStore
    from repro.service import GraphIndex

    build_store(graph, "artifacts/dblp.store", top_k=64)
    ...
    index = GraphIndex(graph)
    index.attach_store(PrecomputeStore.open("artifacts/dblp.store", graph))
    index.solve(["database", "graphs"])    # hot labels cost no Dijkstra
"""

from .builder import (
    DEFAULT_TOP_K,
    DISTANCES_NAME,
    RESULTS_NAME,
    BuildReport,
    build_store,
    select_labels,
)
from .format import FORMAT_VERSION, MAGIC
from .manifest import MANIFEST_NAME, Manifest, graph_fingerprint
from .result_cache import CachedAnswer, ResultCache, result_key
from .store import PrecomputeStore

__all__ = [
    "BuildReport",
    "CachedAnswer",
    "DEFAULT_TOP_K",
    "DISTANCES_NAME",
    "FORMAT_VERSION",
    "MAGIC",
    "MANIFEST_NAME",
    "Manifest",
    "PrecomputeStore",
    "RESULTS_NAME",
    "ResultCache",
    "build_store",
    "graph_fingerprint",
    "result_key",
    "select_labels",
]
