"""Offline precompute builder: materialize per-label distance tables.

Section 3.1's preprocessing — one multi-source Dijkstra per query label
— is the dominant fixed cost of every solve, and on a serving workload
the same hot labels recur query after query.  The builder runs those
Dijkstras *once, offline*, for the top-K hottest labels (ranked by
workload occurrence when a workload is given, else by group size) and
serializes the resulting ``dist(v, ṽ_x)`` / parent arrays plus label
statistics to a versioned store directory that any later process can
warm-load.
"""

from __future__ import annotations

import os
import time
from collections import Counter
from dataclasses import dataclass, field
from typing import Hashable, Iterable, List, Optional, Sequence

from ..graph.graph import Graph
from ..graph.shortest_paths import multi_source_dijkstra
from .format import pack_label_table, write_header, write_record
from .manifest import Manifest

__all__ = ["BuildReport", "select_labels", "build_store", "DISTANCES_NAME",
           "RESULTS_NAME"]

DISTANCES_NAME = "distances.bin"
RESULTS_NAME = "results.bin"

DEFAULT_TOP_K = 64


@dataclass
class BuildReport:
    """What one ``build_store`` run produced."""

    path: str
    labels: List[str] = field(default_factory=list)
    seconds: float = 0.0
    bytes_written: int = 0

    def summary(self) -> str:
        return (
            f"store {self.path}: {len(self.labels)} label tables, "
            f"{self.bytes_written / 1024:.1f} KiB in {self.seconds:.2f}s"
        )


def select_labels(
    graph: Graph,
    top_k: int,
    workload: Optional[Sequence[Iterable[Hashable]]] = None,
) -> List[str]:
    """The top-K hottest labels worth precomputing.

    With a workload (a sequence of queries), labels are ranked by how
    often queries mention them; ties — and the no-workload case — fall
    back to group size (bigger groups cost more per Dijkstra *and*
    recur more in realistic keyword traffic).  Labels absent from the
    graph are skipped: there is nothing to precompute for them.
    """
    if top_k <= 0:
        raise ValueError("top_k must be positive")
    heat: Counter = Counter()
    if workload is not None:
        for query in workload:
            for label in set(str(l) for l in query):
                heat[label] += 1
    candidates = [str(label) for label in graph.all_labels()]
    candidates.sort(
        key=lambda label: (-heat[label], -graph.label_frequency(label), label)
    )
    if workload is not None:
        # Precompute only what the workload touches, padded with the
        # globally biggest groups if the workload is narrower than K.
        hot = [label for label in candidates if heat[label] > 0]
        cold = [label for label in candidates if heat[label] == 0]
        candidates = hot + cold
    return candidates[:top_k]


def build_store(
    graph: Graph,
    path: str,
    *,
    top_k: int = DEFAULT_TOP_K,
    labels: Optional[Iterable[Hashable]] = None,
    workload: Optional[Sequence[Iterable[Hashable]]] = None,
    graph_stem: Optional[str] = None,
) -> BuildReport:
    """Materialize a store directory for ``graph`` at ``path``.

    ``labels`` pins the exact label set; otherwise :func:`select_labels`
    picks the top ``top_k`` (guided by ``workload`` when given).
    ``graph_stem`` records where the graph files live so
    ``GraphIndex.open(path)`` can reload the graph without being handed
    one.  Returns a :class:`BuildReport`.
    """
    started = time.perf_counter()
    if labels is not None:
        chosen = []
        for label in labels:
            text = str(label)
            if graph.label_frequency(text) == 0 and graph.label_frequency(label) == 0:
                raise ValueError(f"label {label!r} occurs on no node")
            chosen.append(text)
    else:
        chosen = select_labels(graph, top_k, workload)

    os.makedirs(path, exist_ok=True)
    # Freeze before the Dijkstra sweep: the tables below are then
    # computed on the CSR kernels, and the snapshot's fingerprint is
    # recorded so warm starts can verify the flat arrays byte-for-byte.
    snapshot = graph.freeze()
    bytes_written = 0
    with open(os.path.join(path, DISTANCES_NAME), "wb") as handle:
        write_header(handle)
        for label in chosen:
            members = list(graph.nodes_with_label(label))
            if not members:
                # Stored labels are strings; fall back to the raw label
                # for graphs using non-string hashables.
                members = list(graph.nodes_with_label(_raw(graph, label)))
            dist, parent = multi_source_dijkstra(graph, members)
            bytes_written += write_record(
                handle, pack_label_table(label, dist, parent)
            )
    manifest = Manifest.for_graph(
        graph,
        chosen,
        graph_stem=graph_stem,
        snapshot_fingerprint=snapshot.fingerprint,
    )
    manifest.save(path)
    return BuildReport(
        path=path,
        labels=chosen,
        seconds=time.perf_counter() - started,
        bytes_written=bytes_written,
    )


def _raw(graph: Graph, text: str) -> Hashable:
    """Map a stringified label back to the graph's raw hashable."""
    for label in graph.all_labels():
        if str(label) == text:
            return label
    return text
