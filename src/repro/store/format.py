"""The on-disk container format of the precompute store.

One store file is a sequence of CRC-framed records behind a fixed
header::

    header : MAGIC (8 bytes) | format_version (u32, little-endian)
    record : payload_len (u32) | crc32 (u32) | payload bytes

Readers fail *closed*: a wrong magic, an unknown version, a short read,
or a checksum mismatch raises a typed
:class:`~repro.errors.StoreError` subclass — never a bare
``EOFError``/``struct.error`` — so callers can always fall back to a
cold solve.  The framing is deliberately dumb (no seeking, no index):
stores are written once by the offline builder and streamed fully at
warm-load time, which keeps the reader ~30 lines and the corruption
surface testable.

Two payload encodings ride the same frames:

* **label distance tables** (:func:`pack_label_table`): the label as
  UTF-8, then ``n`` float64 distances and ``n`` int32 parent pointers —
  the exact ``(dist, parent)`` arrays
  :class:`~repro.core.cache.LabelDistanceCache` holds in memory;
* **JSON records** (:func:`pack_json`): result-cache entries and any
  future sidecar metadata.
"""

from __future__ import annotations

import json
import struct
import zlib
from typing import Any, BinaryIO, Iterator, List, Tuple

from ..errors import StoreCorruptError, StoreVersionError

__all__ = [
    "MAGIC",
    "FORMAT_VERSION",
    "write_header",
    "read_header",
    "write_record",
    "iter_records",
    "pack_label_table",
    "unpack_label_table",
    "pack_json",
    "unpack_json",
]

MAGIC = b"GSTSTORE"
FORMAT_VERSION = 1

_HEADER = struct.Struct("<8sI")
_FRAME = struct.Struct("<II")
# Distances can be +inf (unreachable nodes); float64 round-trips them.
_F64 = struct.Struct("<d")
_I32 = struct.Struct("<i")


# ----------------------------------------------------------------------
# Header
# ----------------------------------------------------------------------
def write_header(fh: BinaryIO, version: int = FORMAT_VERSION) -> None:
    fh.write(_HEADER.pack(MAGIC, version))


def read_header(fh: BinaryIO, *, what: str = "store file") -> int:
    """Validate magic + version; returns the file's format version."""
    raw = fh.read(_HEADER.size)
    if len(raw) < _HEADER.size:
        raise StoreCorruptError(f"{what}: truncated header ({len(raw)} bytes)")
    magic, version = _HEADER.unpack(raw)
    if magic != MAGIC:
        raise StoreCorruptError(f"{what}: bad magic {magic!r}")
    if version != FORMAT_VERSION:
        raise StoreVersionError(
            f"{what}: format version {version} is not supported "
            f"(this build reads version {FORMAT_VERSION})"
        )
    return version


# ----------------------------------------------------------------------
# Frames
# ----------------------------------------------------------------------
def write_record(fh: BinaryIO, payload: bytes) -> int:
    """Append one CRC-framed record; returns bytes written."""
    fh.write(_FRAME.pack(len(payload), zlib.crc32(payload) & 0xFFFFFFFF))
    fh.write(payload)
    return _FRAME.size + len(payload)


def iter_records(fh: BinaryIO, *, what: str = "store file") -> Iterator[bytes]:
    """Yield record payloads until EOF, checking length and CRC."""
    while True:
        frame = fh.read(_FRAME.size)
        if not frame:
            return
        if len(frame) < _FRAME.size:
            raise StoreCorruptError(f"{what}: truncated record frame")
        length, crc = _FRAME.unpack(frame)
        payload = fh.read(length)
        if len(payload) < length:
            raise StoreCorruptError(
                f"{what}: truncated record payload "
                f"({len(payload)} of {length} bytes)"
            )
        if (zlib.crc32(payload) & 0xFFFFFFFF) != crc:
            raise StoreCorruptError(f"{what}: record checksum mismatch")
        yield payload


# ----------------------------------------------------------------------
# Label distance-table payloads
# ----------------------------------------------------------------------
def pack_label_table(
    label: str, dist: List[float], parent: List[int]
) -> bytes:
    """Encode one per-label ``(dist, parent)`` pair."""
    if len(dist) != len(parent):
        raise ValueError("dist and parent arrays must have equal length")
    encoded = str(label).encode("utf-8")
    parts = [struct.pack("<HI", len(encoded), len(dist)), encoded]
    parts.append(struct.pack(f"<{len(dist)}d", *dist))
    parts.append(struct.pack(f"<{len(parent)}i", *parent))
    return b"".join(parts)


def unpack_label_table(
    payload: bytes, *, what: str = "store file"
) -> Tuple[str, List[float], List[int]]:
    """Decode a :func:`pack_label_table` payload (fail-closed)."""
    try:
        label_len, n = struct.unpack_from("<HI", payload, 0)
        offset = struct.calcsize("<HI")
        label = payload[offset:offset + label_len].decode("utf-8")
        offset += label_len
        dist = list(struct.unpack_from(f"<{n}d", payload, offset))
        offset += n * _F64.size
        parent = list(struct.unpack_from(f"<{n}i", payload, offset))
        offset += n * _I32.size
    except (struct.error, UnicodeDecodeError) as exc:
        raise StoreCorruptError(f"{what}: malformed label table: {exc}") from None
    if offset != len(payload):
        raise StoreCorruptError(
            f"{what}: label table has {len(payload) - offset} trailing bytes"
        )
    return label, dist, parent


# ----------------------------------------------------------------------
# JSON payloads (result-cache entries, sidecar metadata)
# ----------------------------------------------------------------------
def pack_json(record: Any) -> bytes:
    return json.dumps(record, sort_keys=True).encode("utf-8")


def unpack_json(payload: bytes, *, what: str = "store file") -> Any:
    try:
        return json.loads(payload.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise StoreCorruptError(f"{what}: malformed JSON record: {exc}") from None
