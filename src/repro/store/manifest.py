"""Store manifest: graph fingerprint + artifact table of contents.

The manifest is the store's trust anchor.  Distance tables index nodes
by dense integer id, so loading them against any *other* graph — one
more node, one reweighted edge, one moved label — would silently
corrupt every downstream bound and answer.  :func:`graph_fingerprint`
therefore hashes the full structure (node count, every edge with its
weight, every node's label set), and every load path compares the
stored fingerprint against the live graph before a single array is
trusted.

The manifest itself is human-readable JSON (`manifest.json`) so
operators can inspect what a store holds; all validation failures
raise typed :class:`~repro.errors.StoreError` subclasses.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..errors import StoreCorruptError, StoreVersionError
from ..graph.graph import Graph
from .format import FORMAT_VERSION

__all__ = ["graph_fingerprint", "Manifest", "MANIFEST_NAME"]

MANIFEST_NAME = "manifest.json"


def graph_fingerprint(graph: Graph) -> str:
    """Deterministic sha256 over the graph's full structure.

    Covers node count, every edge ``(u, v, weight)`` (normalized
    ``u < v``, sorted), and every node's sorted label set — the three
    things the stored arrays depend on.  ``repr`` of the weight keeps
    the hash exact (no float formatting loss).
    """
    digest = hashlib.sha256()
    digest.update(f"n={graph.num_nodes};m={graph.num_edges};".encode())
    for u, v, weight in sorted(graph.edges()):
        digest.update(f"e={u},{v},{weight!r};".encode())
    for node in graph.nodes():
        labels = sorted(str(label) for label in graph.labels_of(node))
        if labels:
            digest.update(f"l={node}:{','.join(labels)};".encode())
    return digest.hexdigest()


@dataclass
class Manifest:
    """What one store directory contains, and for which graph."""

    fingerprint: str
    num_nodes: int
    num_edges: int
    num_labels: int
    labels: List[str] = field(default_factory=list)
    label_frequencies: Dict[str, int] = field(default_factory=dict)
    format_version: int = FORMAT_VERSION
    graph_stem: Optional[str] = None
    created_by: str = "repro.store"
    # Fingerprint of the frozen CSR snapshot at build time (see
    # :attr:`repro.graph.csr.CSRGraph.fingerprint`).  Optional — stores
    # written before snapshots existed simply omit it; when present,
    # warm-start paths additionally validate it so a store is only
    # trusted when the *byte-identical* flat arrays can be rebuilt.
    snapshot_fingerprint: Optional[str] = None

    REQUIRED = ("fingerprint", "num_nodes", "num_edges", "num_labels",
                "format_version")

    @classmethod
    def for_graph(
        cls,
        graph: Graph,
        labels: List[str],
        *,
        graph_stem: Optional[str] = None,
        snapshot_fingerprint: Optional[str] = None,
    ) -> "Manifest":
        return cls(
            fingerprint=graph_fingerprint(graph),
            num_nodes=graph.num_nodes,
            num_edges=graph.num_edges,
            num_labels=graph.num_labels,
            labels=list(labels),
            label_frequencies={
                label: graph.label_frequency(label) for label in labels
            },
            graph_stem=graph_stem,
            snapshot_fingerprint=snapshot_fingerprint,
        )

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "format_version": self.format_version,
            "fingerprint": self.fingerprint,
            "num_nodes": self.num_nodes,
            "num_edges": self.num_edges,
            "num_labels": self.num_labels,
            "labels": list(self.labels),
            "label_frequencies": dict(self.label_frequencies),
            "graph_stem": self.graph_stem,
            "created_by": self.created_by,
            "snapshot_fingerprint": self.snapshot_fingerprint,
        }

    def save(self, directory: str) -> str:
        path = os.path.join(directory, MANIFEST_NAME)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        return path

    # ------------------------------------------------------------------
    @classmethod
    def load(cls, directory: str) -> "Manifest":
        """Read and validate ``manifest.json`` (fail-closed)."""
        path = os.path.join(directory, MANIFEST_NAME)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                raw = json.load(handle)
        except OSError as exc:
            raise StoreCorruptError(f"cannot read store manifest: {exc}") from None
        except ValueError as exc:
            raise StoreCorruptError(f"{path}: malformed manifest JSON: {exc}") from None
        if not isinstance(raw, dict):
            raise StoreCorruptError(f"{path}: manifest is not a JSON object")
        missing = [key for key in cls.REQUIRED if key not in raw]
        if missing:
            raise StoreCorruptError(
                f"{path}: manifest missing required keys {missing}"
            )
        version = raw["format_version"]
        if version != FORMAT_VERSION:
            raise StoreVersionError(
                f"{path}: store format version {version} is not supported "
                f"(this build reads version {FORMAT_VERSION})"
            )
        try:
            return cls(
                fingerprint=str(raw["fingerprint"]),
                num_nodes=int(raw["num_nodes"]),
                num_edges=int(raw["num_edges"]),
                num_labels=int(raw["num_labels"]),
                labels=[str(label) for label in raw.get("labels", [])],
                label_frequencies={
                    str(k): int(v)
                    for k, v in raw.get("label_frequencies", {}).items()
                },
                format_version=int(version),
                graph_stem=raw.get("graph_stem"),
                created_by=str(raw.get("created_by", "repro.store")),
                snapshot_fingerprint=(
                    str(raw["snapshot_fingerprint"])
                    if raw.get("snapshot_fingerprint") is not None
                    else None
                ),
            )
        except (TypeError, ValueError) as exc:
            raise StoreCorruptError(
                f"{path}: manifest field has wrong type: {exc}"
            ) from None
