"""Epsilon-aware query result cache (in-memory + persistable).

The progressive framework's proven ratios make cached answers
*reusable across quality targets*: an answer proven within
``(1 + ε)`` of optimal satisfies every later request that asks for
``ε' ≥ ε`` — an exact answer (ε = 0) serves everything, while a loose
ε = 0.5 answer must never serve an ε' = 0.1 or exact request.  That
asymmetric rule is the whole point of this cache; a plain
equality-keyed cache would either miss safe reuse or, worse, return
under-proven answers.

Canonical key: ``frozenset(str(label) ...)`` + the resolved algorithm
tier.  Labels are stringified so persisted entries (JSON) and live
entries share one key space; algorithm tiers never cross-serve (a
``basic`` answer proving ε = 0.3 is still a different object of study
than a ``pruneddp++`` one in every benchmark, and tiers may diverge in
tie-breaking).

Eviction is LRU bounded by ``max_entries`` plus an optional TTL.  The
TTL is measured on a **monotonic** clock (``time.monotonic``) so an
NTP step can neither mass-expire nor immortalize live entries; the
wall clock (``time.time``) is used only for the absolute ``created``
timestamps carried by *persisted* records, where a cross-process
monotonic reading would be meaningless.  Both clocks and all counters
are injectable/observable for tests and telemetry.  Persistence uses
the store's CRC-framed format — see :meth:`ResultCache.save_to` /
:meth:`ResultCache.load_from`.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import BinaryIO, Callable, FrozenSet, Hashable, Iterable, List, Optional, Tuple

from ..core.result import GSTResult, SearchStats
from ..core.tree import SteinerTree
from ..errors import StoreCorruptError
from ..obs.instruments import record_result_cache_event
from .format import (
    iter_records,
    pack_json,
    read_header,
    unpack_json,
    write_header,
    write_record,
)

__all__ = ["CachedAnswer", "ResultCache", "result_key"]

INF = float("inf")
_EPS_SLACK = 1e-12


def result_key(
    labels: Iterable[Hashable], algorithm: str
) -> Tuple[FrozenSet[str], str]:
    """Canonical cache key: stringified label set + algorithm tier."""
    return frozenset(str(label) for label in labels), algorithm


@dataclass
class CachedAnswer:
    """One stored answer with its proven approximation guarantee.

    ``epsilon`` is the *proven* gap: 0.0 for optimal answers, otherwise
    ``ratio - 1`` at the time the answer was produced.  ``serves(eps)``
    implements the reuse rule.
    """

    labels: Tuple[str, ...]
    algorithm: str
    weight: float
    lower_bound: float
    optimal: bool
    epsilon: float
    tree_nodes: Tuple[int, ...]
    tree_edges: Tuple[Tuple[int, int, float], ...]
    created: float
    # Monotonic admission stamp used for in-memory TTL decisions.  Not
    # persisted (monotonic readings are process-local); ``load_from``
    # reconstructs it from the record's wall-clock age.
    stamp: float = 0.0

    def serves(self, requested_epsilon: float) -> bool:
        """Whether this answer's proven gap satisfies ``ε'`` requests."""
        return self.epsilon <= requested_epsilon + _EPS_SLACK

    # ------------------------------------------------------------------
    def to_result(self, requested_labels: Iterable[Hashable]) -> GSTResult:
        """Rehydrate a :class:`GSTResult` (zeroed search counters)."""
        tree = SteinerTree(self.tree_edges, nodes=self.tree_nodes)
        return GSTResult(
            algorithm=self.algorithm,
            labels=tuple(requested_labels),
            tree=tree,
            weight=self.weight,
            lower_bound=self.lower_bound,
            optimal=self.optimal,
            stats=SearchStats(),
        )

    def to_record(self) -> dict:
        return {
            "labels": sorted(self.labels),
            "algorithm": self.algorithm,
            "weight": self.weight,
            "lower_bound": self.lower_bound,
            "optimal": self.optimal,
            "epsilon": self.epsilon,
            "tree_nodes": sorted(self.tree_nodes),
            "tree_edges": [[u, v, w] for u, v, w in self.tree_edges],
            "created": self.created,
        }

    @classmethod
    def from_record(cls, record: dict, *, what: str = "result cache") -> "CachedAnswer":
        try:
            answer = cls(
                labels=tuple(str(label) for label in record["labels"]),
                algorithm=str(record["algorithm"]),
                weight=float(record["weight"]),
                lower_bound=float(record["lower_bound"]),
                optimal=bool(record["optimal"]),
                epsilon=float(record["epsilon"]),
                tree_nodes=tuple(int(n) for n in record["tree_nodes"]),
                tree_edges=tuple(
                    (int(u), int(v), float(w)) for u, v, w in record["tree_edges"]
                ),
                created=float(record["created"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise StoreCorruptError(
                f"{what}: malformed cached-answer record: {exc!r}"
            ) from None
        # A live solve can never produce lower_bound > weight (report-time
        # clamping in repro.core.result); a persisted record claiming it
        # is corrupt and must not rehydrate into a false ratio-1 answer.
        if answer.lower_bound > answer.weight + _EPS_SLACK * max(
            1.0, abs(answer.weight)
        ):
            raise StoreCorruptError(
                f"{what}: cached answer claims lower_bound="
                f"{answer.lower_bound!r} > weight={answer.weight!r}"
            )
        return answer


class ResultCache:
    """LRU + TTL cache of proven answers, keyed by label set and tier."""

    def __init__(
        self,
        *,
        max_entries: int = 1024,
        ttl_seconds: Optional[float] = None,
        clock: Optional[Callable[[], float]] = None,
        wall_clock: Optional[Callable[[], float]] = None,
    ) -> None:
        if max_entries <= 0:
            raise ValueError("max_entries must be positive")
        if ttl_seconds is not None and ttl_seconds <= 0:
            raise ValueError("ttl_seconds must be positive (or None)")
        self.max_entries = max_entries
        self.ttl_seconds = ttl_seconds
        # TTL ages on the monotonic clock; the wall clock only stamps
        # the ``created`` field persisted in records.  A test injecting
        # a single ``clock`` (the historical signature) gets it for
        # both roles, so deterministic FakeClock tests keep working.
        if clock is not None and wall_clock is None:
            wall_clock = clock
        self._clock = clock if clock is not None else time.monotonic
        self._wall = wall_clock if wall_clock is not None else time.time
        self._entries: "OrderedDict[Tuple[FrozenSet[str], str], CachedAnswer]" = (
            OrderedDict()
        )
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.expirations = 0

    # ------------------------------------------------------------------
    def lookup(
        self,
        labels: Iterable[Hashable],
        algorithm: str,
        epsilon: float = 0.0,
    ) -> Optional[CachedAnswer]:
        """An answer proven at least as tight as ``epsilon``, or None.

        A hit refreshes LRU recency; a TTL-expired entry is dropped and
        counted as a miss.  An entry whose proven gap is looser than
        the request is a miss too (it stays cached for looser callers).
        """
        key = result_key(labels, algorithm)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None and self._expired(entry):
                del self._entries[key]
                self.expirations += 1
                record_result_cache_event("expired")
                entry = None
            if entry is None or not entry.serves(epsilon):
                self.misses += 1
                record_result_cache_event("miss")
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            record_result_cache_event("hit")
            return entry

    def put(
        self,
        labels: Iterable[Hashable],
        algorithm: str,
        result: GSTResult,
    ) -> Optional[CachedAnswer]:
        """Store a finished solve's answer; returns the cached entry.

        Only storable answers are kept: a feasible tree with a finite
        weight and a finite proven ratio.  An existing entry is only
        replaced by a *tighter* one (smaller proven ε) — caching a
        loose anytime answer never degrades an exact one already held.
        """
        if result.tree is None or result.weight == INF:
            return None
        epsilon = 0.0 if result.optimal else result.ratio - 1.0
        if epsilon == INF:
            return None
        entry = CachedAnswer(
            labels=tuple(sorted(str(label) for label in labels)),
            algorithm=algorithm,
            weight=result.weight,
            lower_bound=result.lower_bound,
            optimal=result.optimal,
            epsilon=epsilon,
            tree_nodes=tuple(result.tree.nodes),
            tree_edges=tuple(result.tree.edges),
            created=self._wall(),
            stamp=self._clock(),
        )
        key = result_key(labels, algorithm)
        with self._lock:
            existing = self._entries.get(key)
            if (
                existing is not None
                and not self._expired(existing)
                and existing.epsilon <= entry.epsilon
            ):
                self._entries.move_to_end(key)
                return existing
            self._entries[key] = entry
            self._entries.move_to_end(key)
            record_result_cache_event("insertion")
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.evictions += 1
                record_result_cache_event("eviction")
        return entry

    def invalidate(
        self, labels: Iterable[Hashable], algorithm: str
    ) -> bool:
        """Evict one entry (certification failure, staleness); True if found.

        Used by the executor's ``certify_cache_hits`` guard: a cached
        answer that fails re-validation against the live graph must not
        be served to the *next* caller either.
        """
        key = result_key(labels, algorithm)
        with self._lock:
            if key not in self._entries:
                return False
            del self._entries[key]
            self.evictions += 1
            record_result_cache_event("eviction")
            return True

    def _expired(self, entry: CachedAnswer) -> bool:
        """TTL check on the monotonic admission stamp (NTP-immune)."""
        return (
            self.ttl_seconds is not None
            and self._clock() - entry.stamp > self.ttl_seconds
        )

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Tuple[FrozenSet[str], str]) -> bool:
        with self._lock:
            return key in self._entries

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def counters(self) -> dict:
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "expirations": self.expirations,
                "entries": len(self._entries),
                "max_entries": self.max_entries,
                "ttl_seconds": self.ttl_seconds,
            }

    def entries(self) -> List[CachedAnswer]:
        """Snapshot of the live entries, LRU-oldest first."""
        with self._lock:
            return list(self._entries.values())

    # ------------------------------------------------------------------
    # Persistence (CRC-framed JSON records)
    # ------------------------------------------------------------------
    def save_to(self, fh: BinaryIO) -> int:
        """Write every live entry; returns the number written."""
        write_header(fh)
        count = 0
        for entry in self.entries():
            write_record(fh, pack_json(entry.to_record()))
            count += 1
        return count

    def load_from(self, fh: BinaryIO, *, what: str = "result cache") -> int:
        """Merge persisted entries into this cache; returns the count.

        TTL-expired persisted entries are skipped (counted as
        expirations); fresher live entries win over persisted ones.
        """
        read_header(fh, what=what)
        count = 0
        for payload in iter_records(fh, what=what):
            entry = CachedAnswer.from_record(
                unpack_json(payload, what=what), what=what
            )
            # Persisted records only carry wall-clock ``created``; age
            # them once against the wall clock at load, then hand the
            # remaining TTL to the monotonic stamp so a later NTP step
            # cannot disturb them.
            age = self._wall() - entry.created
            if self.ttl_seconds is not None and age > self.ttl_seconds:
                self.expirations += 1
                record_result_cache_event("expired")
                continue
            entry.stamp = self._clock() - max(0.0, age)
            key = result_key(entry.labels, entry.algorithm)
            with self._lock:
                existing = self._entries.get(key)
                if existing is not None and existing.epsilon <= entry.epsilon:
                    continue
                self._entries[key] = entry
                record_result_cache_event("insertion")
                while len(self._entries) > self.max_entries:
                    self._entries.popitem(last=False)
                    self.evictions += 1
                    record_result_cache_event("eviction")
            count += 1
        return count
