"""The store handle: open, validate, warm-load, write back.

A :class:`PrecomputeStore` is one store *directory* (manifest +
distance tables + persisted result cache) bound to one immutable
graph.  Opening validates the manifest and — when a graph is supplied
— its fingerprint, so a stale or foreign artifact is rejected before a
single array is trusted; every failure is a typed
:class:`~repro.errors.StoreError`, which is the contract the service
layer's fall-back-to-cold-solve paths rely on.
"""

from __future__ import annotations

import os
from typing import Dict, Hashable, Iterable, List, Optional, Tuple

from ..core.cache import LabelDistanceCache
from ..errors import StoreCorruptError, StoreFingerprintError
from ..graph.graph import Graph
from .builder import DISTANCES_NAME, RESULTS_NAME, BuildReport, build_store
from .format import iter_records, read_header, unpack_label_table
from .manifest import Manifest, graph_fingerprint
from .result_cache import ResultCache

__all__ = ["PrecomputeStore"]


class PrecomputeStore:
    """Validated handle on one store directory."""

    def __init__(self, path: str, manifest: Manifest) -> None:
        self.path = path
        self.manifest = manifest

    # ------------------------------------------------------------------
    @classmethod
    def open(cls, path: str, graph: Optional[Graph] = None) -> "PrecomputeStore":
        """Open a store, fail-closed.

        Validates the manifest (typed errors for corruption / version
        skew) and, when ``graph`` is given, compares fingerprints —
        a mismatch raises :class:`~repro.errors.StoreFingerprintError`.
        """
        if not os.path.isdir(path):
            raise StoreCorruptError(f"store path {path!r} is not a directory")
        manifest = Manifest.load(path)
        store = cls(path, manifest)
        if graph is not None:
            store.check_graph(graph)
        return store

    @classmethod
    def build(
        cls,
        graph: Graph,
        path: str,
        **build_kwargs,
    ) -> Tuple["PrecomputeStore", BuildReport]:
        """Build a store for ``graph`` and return the opened handle."""
        report = build_store(graph, path, **build_kwargs)
        return cls.open(path, graph), report

    def check_graph(self, graph: Graph) -> None:
        """Raise unless this store was built for exactly ``graph``.

        Always compares the structural (sorted-edge) fingerprint; when
        the manifest additionally records a CSR ``snapshot_fingerprint``
        (stores written since snapshots exist) and the live graph is —
        or can be — frozen, the snapshot's byte-level fingerprint is
        validated too, which also pins construction order of the flat
        arrays for warm starts.
        """
        live = graph_fingerprint(graph)
        if live != self.manifest.fingerprint:
            raise StoreFingerprintError(
                f"store {self.path!r} was built for a different graph "
                f"(stored fingerprint {self.manifest.fingerprint[:12]}…, "
                f"live graph {live[:12]}…); rebuild with `repro precompute`"
            )
        stored_snapshot = self.manifest.snapshot_fingerprint
        if stored_snapshot is not None:
            live_snapshot = graph.freeze().fingerprint
            if live_snapshot != stored_snapshot:
                raise StoreFingerprintError(
                    f"store {self.path!r} records snapshot fingerprint "
                    f"{stored_snapshot[:12]}… but the live graph freezes "
                    f"to {live_snapshot[:12]}…; the flat arrays were "
                    "built in a different order — rebuild the store"
                )

    # ------------------------------------------------------------------
    # Distance tables
    # ------------------------------------------------------------------
    @property
    def labels(self) -> List[str]:
        """Labels whose distance tables this store holds."""
        return list(self.manifest.labels)

    def load_tables(
        self, labels: Optional[Iterable[Hashable]] = None
    ) -> Dict[str, Tuple[List[float], List[int]]]:
        """Stream the distance file into ``{label: (dist, parent)}``.

        ``labels`` restricts which tables are kept (all by default).
        Truncation, checksum and shape problems raise typed errors.
        """
        wanted = (
            None if labels is None else {str(label) for label in labels}
        )
        path = os.path.join(self.path, DISTANCES_NAME)
        what = f"store {self.path!r} distances"
        tables: Dict[str, Tuple[List[float], List[int]]] = {}
        try:
            handle = open(path, "rb")
        except OSError as exc:
            raise StoreCorruptError(f"{what}: cannot open: {exc}") from None
        with handle:
            read_header(handle, what=what)
            for payload in iter_records(handle, what=what):
                label, dist, parent = unpack_label_table(payload, what=what)
                if len(dist) != self.manifest.num_nodes:
                    raise StoreCorruptError(
                        f"{what}: table for label {label!r} has "
                        f"{len(dist)} nodes, manifest says "
                        f"{self.manifest.num_nodes}"
                    )
                if wanted is None or label in wanted:
                    tables[label] = (dist, parent)
        return tables

    def warm(
        self,
        cache: LabelDistanceCache,
        labels: Optional[Iterable[Hashable]] = None,
    ) -> int:
        """Preload a live label cache from disk; returns tables loaded.

        The cache must belong to a fingerprint-matching graph — callers
        go through :meth:`GraphIndex.attach_store
        <repro.service.index.GraphIndex.attach_store>`, which checks.
        """
        tables = self.load_tables(labels)
        count = 0
        for label, (dist, parent) in tables.items():
            raw = self._resolve_label(cache.graph, label)
            if raw is None:
                continue
            cache.preload(raw, (dist, parent))
            count += 1
        return count

    @staticmethod
    def _resolve_label(graph: Graph, text: str) -> Optional[Hashable]:
        """Stored (string) label → the graph's live hashable label."""
        if graph.label_frequency(text) > 0:
            return text
        for label in graph.all_labels():
            if str(label) == text:
                return label
        return None

    # ------------------------------------------------------------------
    # Result cache persistence
    # ------------------------------------------------------------------
    def load_result_cache(self, **cache_kwargs) -> ResultCache:
        """The persisted result cache (empty when none was saved yet)."""
        cache = ResultCache(**cache_kwargs)
        path = os.path.join(self.path, RESULTS_NAME)
        if os.path.exists(path):
            what = f"store {self.path!r} results"
            try:
                handle = open(path, "rb")
            except OSError as exc:
                raise StoreCorruptError(f"{what}: cannot open: {exc}") from None
            with handle:
                cache.load_from(handle, what=what)
        return cache

    def save_result_cache(self, cache: ResultCache) -> int:
        """Persist the result cache next to the tables; returns entries."""
        path = os.path.join(self.path, RESULTS_NAME)
        tmp = path + ".tmp"
        with open(tmp, "wb") as handle:
            count = cache.save_to(handle)
        os.replace(tmp, path)
        return count

    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        return (
            f"PrecomputeStore({self.path!r}, labels={len(self.manifest.labels)}, "
            f"fingerprint={self.manifest.fingerprint[:12]}…)"
        )
