"""Differential correctness harness for the GST reproduction.

Three layers, designed to catch three different failure shapes:

* :mod:`repro.verify.certify` — a **solution certifier** that re-derives
  every claim a :class:`~repro.core.result.GSTResult` makes (tree shape,
  group coverage, recomputed weight, bound soundness, trace invariants)
  from first principles.  Catches an answer that is wrong *about itself*.
* :mod:`repro.verify.differential` — a **differential runner** sweeping
  random instances across brute force, DPBF, and the four progressive
  tiers, with greedy minimization and on-disk reproducers for any
  disagreement.  Catches tiers that are wrong *about each other*.
* :mod:`repro.verify.metamorphic` — **metamorphic transforms** (node
  renumbering, weight scaling, duplicate-label aliasing, disconnected
  clutter) with exactly known effect on the optimum.  Catches all tiers
  agreeing on a wrong answer.

Entry points: the ``repro verify`` / ``repro fuzz`` CLI subcommands, the
engine's opt-in ``debug_certify`` solver kwarg, and the executor's
``certify_cache_hits`` guard for answers served from a persistent store.
"""

from ..errors import CertificationError
from .certify import Certificate, certify_incumbent, certify_result
from .differential import (
    BRUTE_FORCE_FUZZ_NODES,
    TIERS,
    RoundReport,
    SweepReport,
    TierRun,
    generate_instance,
    minimize_reproducer,
    run_round,
    run_sweep,
    verify_instance,
    write_reproducer,
)
from .metamorphic import (
    add_disconnected_clutter,
    clone_graph,
    inject_duplicate_labels,
    metamorphic_checks,
    renumber_nodes,
    scale_weights,
)

__all__ = [
    "Certificate",
    "CertificationError",
    "certify_result",
    "certify_incumbent",
    "TIERS",
    "BRUTE_FORCE_FUZZ_NODES",
    "TierRun",
    "RoundReport",
    "SweepReport",
    "generate_instance",
    "verify_instance",
    "run_round",
    "run_sweep",
    "minimize_reproducer",
    "write_reproducer",
    "clone_graph",
    "renumber_nodes",
    "scale_weights",
    "inject_duplicate_labels",
    "add_disconnected_clutter",
    "metamorphic_checks",
]
