"""Independent solution certifier for :class:`~repro.core.result.GSTResult`.

The paper's claims are correctness claims: every tier must return the
*same* optimal weight, and every progressive report must satisfy
``LB ≤ f* ≤ UB`` with ``UB/LB ≤ (1 + ε)`` at termination.  This module
re-derives those facts from first principles — walking the answer tree
against the live graph, recomputing its weight, and checking every
claimed bound — sharing no code with the search engines beyond the
:class:`~repro.core.tree.SteinerTree` container itself.

Two entry points:

* :func:`certify_result` — full post-hoc validation of a finished
  :class:`GSTResult` (tree shape, coverage, weight, bounds, trace
  invariants, optional cross-check against a known optimum).  Returns a
  :class:`Certificate`; call :meth:`Certificate.raise_if_failed` to turn
  violations into a :class:`~repro.errors.CertificationError`.
* :func:`certify_incumbent` — the engine's ``debug_certify`` hook:
  validates one incumbent update in the pop loop and raises immediately,
  so a wrong answer is caught at the exact pop that produced it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, List, Optional, Sequence, Tuple

from ..core.result import GSTResult
from ..core.tree import SteinerTree
from ..errors import CertificationError, GraphError
from ..graph.graph import Graph

__all__ = ["Certificate", "certify_result", "certify_incumbent"]

INF = float("inf")

# Relative tolerance for recomputed-weight and bound comparisons.  Edge
# weights are summed in different orders by different tiers, so exact
# float equality is not expected; anything beyond a few ulps is a bug.
_REL_TOL = 1e-9


def _tol(reference: float) -> float:
    if reference == INF:
        return 0.0
    return _REL_TOL * max(1.0, abs(reference))


@dataclass
class Certificate:
    """Outcome of certifying one answer: which checks ran, what failed."""

    algorithm: str
    labels: Tuple[Hashable, ...]
    passed: List[str] = field(default_factory=list)
    violations: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def _check(self, name: str, condition: bool, detail: str) -> bool:
        if condition:
            self.passed.append(name)
        else:
            self.violations.append(f"{name}: {detail}")
        return condition

    def raise_if_failed(self) -> "Certificate":
        """Raise :class:`CertificationError` if any check failed."""
        if self.violations:
            raise CertificationError(
                f"{self.algorithm} answer for {list(self.labels)!r} failed "
                f"certification: " + "; ".join(self.violations)
            )
        return self

    def summary(self) -> str:
        if self.ok:
            return f"certified ({len(self.passed)} checks)"
        return "FAILED: " + "; ".join(self.violations)


def certify_result(
    graph: Graph,
    result: GSTResult,
    *,
    labels: Optional[Sequence[Hashable]] = None,
    epsilon: Optional[float] = None,
    expected_weight: Optional[float] = None,
) -> Certificate:
    """Re-validate ``result`` against ``graph`` from first principles.

    Checks performed:

    * **shape** — a finite ``weight`` comes with a tree and vice versa;
    * **tree** — every edge exists in the graph with the stored weight,
      the edge set is acyclic and connected, and every query group has
      a node in the tree (:meth:`SteinerTree.validate`);
    * **weight** — the recomputed edge-weight sum matches ``weight``;
    * **bounds** — ``0 ≤ lower_bound ≤ weight``, and ``optimal`` implies
      ``lower_bound == weight`` (a ratio-1 certificate);
    * **epsilon** — when ``epsilon`` is given and the solve was not
      cancelled, the exit guarantee ``weight ≤ (1+ε)·lower_bound``
      actually holds (``optimal`` answers satisfy it trivially);
    * **trace** — progress reports never cross (``LB ≤ UB``), the UB
      curve is non-increasing, timestamps are non-decreasing, and the
      final report matches the result;
    * **optimum** — when ``expected_weight`` (an independent reference,
      e.g. brute force) is given: never better than it, and equal to it
      when optimality is claimed.

    ``labels`` defaults to ``result.labels``.  ``epsilon`` should be
    passed only when the solve genuinely ran to its epsilon exit —
    budget-truncated anytime answers legitimately carry looser ratios.
    """
    query_labels: Tuple[Hashable, ...] = (
        tuple(labels) if labels is not None else tuple(result.labels)
    )
    cert = Certificate(algorithm=result.algorithm, labels=query_labels)

    has_tree = result.tree is not None
    finite = result.weight < INF
    cert._check(
        "shape",
        has_tree == finite,
        f"weight={result.weight!r} but tree is "
        f"{'present' if has_tree else 'absent'}",
    )

    if has_tree:
        tree: SteinerTree = result.tree  # type: ignore[assignment]
        try:
            tree.validate(graph, query_labels)
            cert.passed.append("tree")
        except GraphError as exc:
            cert.violations.append(f"tree: {exc}")
        recomputed = sum(w for _, _, w in tree.edges)
        cert._check(
            "weight",
            abs(recomputed - result.weight) <= _tol(result.weight),
            f"recomputed edge sum {recomputed!r} != reported "
            f"{result.weight!r}",
        )

    lb = result.lower_bound
    cert._check("lb-nonnegative", lb >= 0.0, f"lower_bound={lb!r} < 0")
    cert._check(
        "lb-noncrossing",
        lb <= result.weight + _tol(result.weight),
        f"lower_bound={lb!r} crosses weight={result.weight!r}",
    )
    if result.optimal:
        cert._check(
            "optimal-certificate",
            finite and abs(lb - result.weight) <= _tol(result.weight),
            f"optimal=True but lower_bound={lb!r} does not meet "
            f"weight={result.weight!r}",
        )

    if epsilon is not None and finite and not result.stats.cancelled:
        satisfied = result.optimal or (
            lb > 0.0
            and result.weight <= (1.0 + epsilon) * lb + _tol(result.weight)
        )
        cert._check(
            "epsilon-exit",
            satisfied,
            f"weight={result.weight!r} exceeds (1+{epsilon})*"
            f"lower_bound={lb!r} at exit",
        )

    _certify_trace(cert, result)

    if expected_weight is not None:
        cert._check(
            "not-better-than-optimum",
            result.weight >= expected_weight - _tol(expected_weight),
            f"weight={result.weight!r} beats the reference optimum "
            f"{expected_weight!r}",
        )
        if result.optimal:
            cert._check(
                "matches-optimum",
                abs(result.weight - expected_weight) <= _tol(expected_weight),
                f"claimed-optimal weight={result.weight!r} != reference "
                f"optimum {expected_weight!r}",
            )

    return cert


def _certify_trace(cert: Certificate, result: GSTResult) -> None:
    """The monotone non-crossing invariants of the progressive contract."""
    previous_ub = INF
    previous_elapsed = -INF
    for i, point in enumerate(result.trace):
        if point.lower_bound > point.best_weight + _tol(point.best_weight):
            cert.violations.append(
                f"trace[{i}]: lower_bound={point.lower_bound!r} crosses "
                f"best_weight={point.best_weight!r}"
            )
            return
        if point.best_weight > previous_ub + _tol(previous_ub):
            cert.violations.append(
                f"trace[{i}]: best_weight={point.best_weight!r} regressed "
                f"from {previous_ub!r}"
            )
            return
        if point.elapsed < previous_elapsed:
            cert.violations.append(
                f"trace[{i}]: elapsed={point.elapsed!r} went backwards"
            )
            return
        previous_ub = point.best_weight
        previous_elapsed = point.elapsed
    if result.trace:
        final = result.trace[-1]
        if abs(final.best_weight - result.weight) > _tol(result.weight):
            cert.violations.append(
                f"trace: final best_weight={final.best_weight!r} != result "
                f"weight={result.weight!r}"
            )
            return
    cert.passed.append("trace")


def certify_incumbent(
    graph: Graph,
    labels: Sequence[Hashable],
    tree: Optional[SteinerTree],
    claimed_weight: float,
    lower_bound: float,
) -> None:
    """Validate one incumbent update; raises on the first violation.

    This is the engine's ``debug_certify`` hook — called on every
    ``new_best`` event, so it must be cheap (one tree walk) and must
    fail *loudly* at the offending pop rather than at the end of the
    solve.
    """
    violations: List[str] = []
    if tree is None:
        violations.append(f"incumbent weight {claimed_weight!r} has no tree")
    else:
        try:
            tree.validate(graph, labels)
        except GraphError as exc:
            violations.append(f"tree: {exc}")
        recomputed = sum(w for _, _, w in tree.edges)
        if abs(recomputed - claimed_weight) > _tol(claimed_weight):
            violations.append(
                f"recomputed weight {recomputed!r} != claimed "
                f"{claimed_weight!r}"
            )
    if lower_bound < 0.0:
        violations.append(f"lower_bound={lower_bound!r} < 0")
    if lower_bound > claimed_weight + _tol(claimed_weight):
        violations.append(
            f"lower_bound={lower_bound!r} crosses incumbent "
            f"{claimed_weight!r}"
        )
    if violations:
        raise CertificationError(
            f"incumbent update for {list(labels)!r} failed certification: "
            + "; ".join(violations)
        )
