"""Differential sweep: every tier against every other on random instances.

One *round* draws a random graph (:func:`repro.graph.generators.random_graph`)
and a random query, runs it through every algorithm tier — the
brute-force subset oracle, the independent DPBF implementation, and the
four engine-backed progressive solvers — certifies each answer with
:mod:`repro.verify.certify`, and demands that all finite weights agree
(infeasibility must agree too: a tier seeing no covering tree while
another returns one is a disagreement, not an error).

On a failure the instance is greedily *minimized* — query labels, then
edges, then isolated nodes are dropped while the failure persists — and
the shrunken instance is serialized via :mod:`repro.graph.io` next to a
JSON report, so ``repro verify --graph <stem> --labels ...`` replays it.

Instance generation is deterministic in ``seed``; a sweep over rounds
``[seed, seed + rounds)`` is exactly reproducible, which is what the CI
smoke job and ``scripts/fuzz_nightly.sh`` rely on.
"""

from __future__ import annotations

import json
import os
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, List, Optional, Sequence, Tuple

from ..core.bruteforce import brute_force_gst
from ..core.result import GSTResult
from ..core.solver import ALGORITHMS, solve_gst
from ..errors import InfeasibleQueryError, ReproError
from ..graph import generators
from ..graph.graph import Graph
from ..graph.io import save_graph
from .certify import Certificate, certify_result
from .metamorphic import clone_graph, metamorphic_checks

__all__ = [
    "TIERS",
    "BRUTE_FORCE_FUZZ_NODES",
    "TierRun",
    "RoundReport",
    "SweepReport",
    "generate_instance",
    "verify_instance",
    "run_round",
    "run_sweep",
    "minimize_reproducer",
    "write_reproducer",
]

INF = float("inf")
TIERS: Tuple[str, ...] = (
    "bruteforce",
    "dpbf",
    "basic",
    "pruneddp",
    "pruneddp+",
    "pruneddp++",
)
# Subset enumeration is 2^n; past this the sweep leans on DPBF (an
# independent non-engine implementation) as the exact reference.
BRUTE_FORCE_FUZZ_NODES = 12
_WEIGHT_TOL = 1e-6


@dataclass
class TierRun:
    """One tier's outcome on one instance."""

    algorithm: str
    weight: float = INF
    infeasible: bool = False
    error: Optional[str] = None
    certificate: Optional[Certificate] = None

    @property
    def ok(self) -> bool:
        return self.error is None and (
            self.certificate is None or self.certificate.ok
        )

    def describe(self) -> str:
        if self.error is not None:
            return f"error: {self.error}"
        if self.infeasible:
            return "infeasible"
        text = f"weight={self.weight:g}"
        if self.certificate is not None:
            text += f" [{self.certificate.summary()}]"
        return text


@dataclass
class RoundReport:
    """One differential round: the instance plus every tier's verdict."""

    seed: int
    num_nodes: int
    num_edges: int
    labels: Tuple[Hashable, ...]
    runs: Dict[str, TierRun] = field(default_factory=dict)
    disagreement: Optional[str] = None
    violations: List[str] = field(default_factory=list)
    reproducer: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.disagreement is None and not self.violations


@dataclass
class SweepReport:
    """Aggregate of a fuzz sweep; ``ok`` means zero failures of any kind."""

    rounds: int = 0
    certified: int = 0
    skipped_bruteforce: int = 0
    failures: List[RoundReport] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        verdict = "OK" if self.ok else f"{len(self.failures)} FAILING ROUNDS"
        return (
            f"fuzz: {self.rounds} rounds, {self.certified} answers "
            f"certified, {self.skipped_bruteforce} rounds too large for "
            f"brute force — {verdict}"
        )


# ----------------------------------------------------------------------
# Instance generation and per-instance verification
# ----------------------------------------------------------------------
def generate_instance(
    seed: int, *, max_nodes: int = 24, max_labels: int = 5
) -> Tuple[Graph, List[str]]:
    """The deterministic random instance of round ``seed``.

    Most instances are connected (every query feasible); a fraction are
    deliberately left to chance so the infeasible/disconnected paths of
    every tier are exercised too.  Weights are strictly positive, as the
    PrunedDP family requires.
    """
    rng = random.Random(f"repro.verify/{seed}")
    num_nodes = rng.randint(4, max(4, max_nodes))
    num_labels = rng.randint(2, max(2, max_labels))
    graph = generators.random_graph(
        num_nodes,
        num_nodes - 1 + rng.randint(0, num_nodes),
        num_query_labels=num_labels,
        label_frequency=rng.randint(1, 3),
        weight_range=(1.0, 10.0),
        connected=rng.random() < 0.85,
        seed=rng.randrange(2**31),
    )
    k = rng.randint(2, num_labels)
    labels = rng.sample([f"q{i}" for i in range(num_labels)], k)
    return graph, labels


def _run_tier(
    graph: Graph,
    labels: Sequence[Hashable],
    algorithm: str,
    *,
    epsilon: float = 0.0,
    certify: bool = True,
    debug_certify: bool = False,
) -> TierRun:
    run = TierRun(algorithm=algorithm)
    try:
        if algorithm == "bruteforce":
            weight, _tree = brute_force_gst(graph, labels)
            run.weight = weight
            run.infeasible = weight == INF
            return run
        kwargs = {}
        if algorithm != "dpbf":
            # DPBF is non-progressive: it takes no epsilon and cannot
            # certify incumbents (it has none until it terminates).
            kwargs["epsilon"] = epsilon
            if debug_certify:
                kwargs["debug_certify"] = True
        result: GSTResult = solve_gst(graph, labels, algorithm=algorithm, **kwargs)
    except InfeasibleQueryError:
        run.infeasible = True
        return run
    except ReproError as exc:
        run.error = f"{type(exc).__name__}: {exc}"
        return run
    run.weight = result.weight
    run.infeasible = result.weight == INF
    if certify:
        run.certificate = certify_result(
            graph, result, labels=labels, epsilon=epsilon
        )
    return run


def verify_instance(
    graph: Graph,
    labels: Sequence[Hashable],
    *,
    algorithms: Optional[Sequence[str]] = None,
    epsilon: float = 0.0,
    certify: bool = True,
    debug_certify: bool = False,
    seed: int = -1,
) -> RoundReport:
    """Run every tier on one instance; cross-check and certify.

    ``algorithms`` defaults to every tier applicable to the instance
    (brute force is skipped above :data:`BRUTE_FORCE_FUZZ_NODES` nodes).
    DPBF ignores ``epsilon`` (it is exact or nothing), which is fine:
    its weight must still satisfy the agreement rule below.
    """
    report = RoundReport(
        seed=seed,
        num_nodes=graph.num_nodes,
        num_edges=graph.num_edges,
        labels=tuple(labels),
    )
    tiers = tuple(algorithms) if algorithms is not None else TIERS
    for name in tiers:
        if name != "bruteforce" and name not in ALGORITHMS:
            raise ValueError(f"unknown tier {name!r}")
        if name == "bruteforce" and graph.num_nodes > BRUTE_FORCE_FUZZ_NODES:
            continue
        run = _run_tier(
            graph,
            labels,
            name,
            epsilon=epsilon,
            certify=certify,
            debug_certify=debug_certify,
        )
        report.runs[name] = run
        if run.error is not None:
            report.violations.append(f"{name}: {run.error}")
        if run.certificate is not None and not run.certificate.ok:
            report.violations.append(f"{name}: {run.certificate.summary()}")
    _cross_check(report, epsilon)
    return report


def _cross_check(report: RoundReport, epsilon: float) -> None:
    """All tiers must agree on feasibility; exact weights must match.

    With ``epsilon > 0`` a progressive tier may stop up to ``(1+ε)``
    above the optimum, so agreement is then one-sided: within ``(1+ε)``
    of the best exact answer and never below it.
    """
    runs = [run for run in report.runs.values() if run.error is None]
    if not runs:
        return
    feasibility = {run.infeasible for run in runs}
    if len(feasibility) > 1:
        detail = ", ".join(f"{r.algorithm}={r.describe()}" for r in runs)
        report.disagreement = f"feasibility disagreement: {detail}"
        return
    if feasibility == {True}:
        return
    reference = min(run.weight for run in runs)
    slack = 1.0 + epsilon
    for run in runs:
        tol = _WEIGHT_TOL * max(1.0, abs(reference))
        if run.weight < reference - tol or run.weight > reference * slack + tol:
            detail = ", ".join(
                f"{r.algorithm}={r.weight:g}" for r in report.runs.values()
            )
            report.disagreement = (
                f"weight disagreement (reference {reference:g}, "
                f"epsilon {epsilon:g}): {detail}"
            )
            return


def run_round(
    seed: int,
    *,
    max_nodes: int = 24,
    max_labels: int = 5,
    algorithms: Optional[Sequence[str]] = None,
    epsilon: float = 0.0,
    certify: bool = True,
    debug_certify: bool = False,
    metamorphic: bool = False,
) -> RoundReport:
    """One seeded differential round (generate → run tiers → compare)."""
    graph, labels = generate_instance(
        seed, max_nodes=max_nodes, max_labels=max_labels
    )
    report = verify_instance(
        graph,
        labels,
        algorithms=algorithms,
        epsilon=epsilon,
        certify=certify,
        debug_certify=debug_certify,
        seed=seed,
    )
    if metamorphic and report.ok:
        feasible = any(
            not run.infeasible and run.error is None
            for run in report.runs.values()
        )
        if feasible:
            base = next(
                run.weight
                for run in report.runs.values()
                if run.error is None and not run.infeasible
            )
            report.violations.extend(
                f"metamorphic: {text}"
                for text in metamorphic_checks(
                    graph, labels, seed=seed, base_weight=base
                )
            )
    return report


# ----------------------------------------------------------------------
# The sweep
# ----------------------------------------------------------------------
def run_sweep(
    rounds: int,
    *,
    seed: int = 0,
    max_nodes: int = 24,
    max_labels: int = 5,
    algorithms: Optional[Sequence[str]] = None,
    epsilon: float = 0.0,
    debug_certify: bool = False,
    metamorphic_every: int = 0,
    reproducer_dir: Optional[str] = None,
    on_round: Optional[Callable[[RoundReport], None]] = None,
) -> SweepReport:
    """``rounds`` differential rounds starting at ``seed``.

    ``metamorphic_every=N`` additionally runs the metamorphic transforms
    every N-th round (0 disables them).  When ``reproducer_dir`` is set,
    each failing round is minimized and serialized there.
    """
    if rounds <= 0:
        raise ValueError("rounds must be positive")
    sweep = SweepReport()
    for offset in range(rounds):
        round_seed = seed + offset
        metamorphic = metamorphic_every > 0 and offset % metamorphic_every == 0
        report = run_round(
            round_seed,
            max_nodes=max_nodes,
            max_labels=max_labels,
            algorithms=algorithms,
            epsilon=epsilon,
            debug_certify=debug_certify,
            metamorphic=metamorphic,
        )
        sweep.rounds += 1
        sweep.certified += sum(
            run.certificate is not None for run in report.runs.values()
        )
        sweep.skipped_bruteforce += "bruteforce" not in report.runs
        if not report.ok:
            if report.disagreement is not None and reproducer_dir is not None:
                graph, labels = generate_instance(
                    round_seed, max_nodes=max_nodes, max_labels=max_labels
                )
                graph, labels = minimize_reproducer(
                    graph,
                    labels,
                    lambda g, l: _still_disagrees(
                        g, l, algorithms=algorithms, epsilon=epsilon
                    ),
                )
                report.reproducer = write_reproducer(
                    graph, labels, report, reproducer_dir
                )
            sweep.failures.append(report)
        if on_round is not None:
            on_round(report)
    return sweep


def _still_disagrees(
    graph: Graph,
    labels: Sequence[Hashable],
    *,
    algorithms: Optional[Sequence[str]],
    epsilon: float,
) -> bool:
    if not labels:
        return False
    try:
        report = verify_instance(
            graph, labels, algorithms=algorithms, epsilon=epsilon, certify=False
        )
    except ReproError:
        return False
    return report.disagreement is not None


# ----------------------------------------------------------------------
# Minimization and reproducer serialization
# ----------------------------------------------------------------------
def minimize_reproducer(
    graph: Graph,
    labels: Sequence[Hashable],
    failing: Callable[[Graph, Sequence[Hashable]], bool],
    *,
    max_passes: int = 4,
) -> Tuple[Graph, List[Hashable]]:
    """Greedy delta-debugging: shrink while ``failing`` stays true.

    Three reduction moves, iterated to a fixed point (or ``max_passes``):
    drop a query label, drop an edge, drop nodes that are isolated and
    unlabelled-for-the-query.  Every candidate is re-checked with
    ``failing`` before being kept, so the result still reproduces.
    """
    labels = list(labels)
    if not failing(graph, labels):
        return graph, labels
    for _ in range(max_passes):
        changed = False
        if len(labels) > 1:
            for label in list(labels):
                trial = [x for x in labels if x != label]
                if trial and failing(graph, trial):
                    labels = trial
                    changed = True
        for u, v, _w in list(graph.edges()):
            trial_graph, _ = clone_graph(graph, skip_edge=(u, v))
            if failing(trial_graph, labels):
                graph = trial_graph
                changed = True
        keep = [
            node
            for node in range(graph.num_nodes)
            if graph.degree(node) > 0
            or any(graph.has_label(node, label) for label in labels)
        ]
        if len(keep) < graph.num_nodes:
            trial_graph, _ = clone_graph(graph, keep_nodes=keep)
            if failing(trial_graph, labels):
                graph = trial_graph
                changed = True
        if not changed:
            break
    return graph, labels


def write_reproducer(
    graph: Graph,
    labels: Sequence[Hashable],
    report: RoundReport,
    directory: str,
) -> str:
    """Serialize a failing instance; returns the graph file stem.

    Writes ``<stem>.edges`` / ``<stem>.labels`` (the :mod:`repro.graph.io`
    format) plus ``<stem>.json`` describing the failure and the exact
    ``repro verify`` command that replays it.
    """
    os.makedirs(directory, exist_ok=True)
    stem = os.path.join(directory, f"disagreement-seed{report.seed}")
    save_graph(graph, stem)
    label_text = ",".join(str(label) for label in labels)
    record = {
        "seed": report.seed,
        "labels": [str(label) for label in labels],
        "num_nodes": graph.num_nodes,
        "num_edges": graph.num_edges,
        "disagreement": report.disagreement,
        "violations": report.violations,
        "weights": {
            name: ("inf" if run.weight == INF else run.weight)
            for name, run in report.runs.items()
        },
        "replay": f"repro verify --graph {stem} --labels {label_text}",
    }
    with open(stem + ".json", "w", encoding="utf-8") as fh:
        json.dump(record, fh, indent=2, sort_keys=True)
    return stem
