"""Metamorphic invariance checks for the GST solvers.

Differential testing catches tiers disagreeing with *each other*; the
metamorphic layer catches all of them agreeing on a wrong answer.  Each
transform below rewrites an instance in a way whose effect on the
optimal weight is known exactly:

* :func:`renumber_nodes` — a random permutation of node ids.  The
  optimum is invariant (graphs are isomorphic).
* :func:`scale_weights` — every edge weight multiplied by a positive
  factor.  The optimum scales by exactly that factor.
* :func:`inject_duplicate_labels` — for each query label ``p`` an alias
  label is attached to exactly the nodes of ``V_p`` and appended to the
  query.  Any tree covering ``p`` covers the alias, so the optimum is
  invariant (while the DP's mask space doubles — exactly the kind of
  bookkeeping a bitmask bug would corrupt).
* :func:`add_disconnected_clutter` — a fresh connected component with
  only non-query labels.  Unreachable and irrelevant, so the optimum is
  invariant (this is what flushes out solvers that assume connectivity).

:func:`metamorphic_checks` runs all four against one solver tier and
returns the list of violated invariants (empty = all held).
"""

from __future__ import annotations

import random
from typing import Hashable, List, Optional, Sequence, Tuple

from ..core.solver import solve_gst
from ..graph.graph import Graph

__all__ = [
    "renumber_nodes",
    "scale_weights",
    "inject_duplicate_labels",
    "add_disconnected_clutter",
    "metamorphic_checks",
    "clone_graph",
]

INF = float("inf")
_REL_TOL = 1e-6


def clone_graph(
    graph: Graph,
    *,
    keep_nodes: Optional[Sequence[int]] = None,
    skip_edge: Optional[Tuple[int, int]] = None,
    weight_scale: float = 1.0,
) -> Tuple[Graph, dict]:
    """A rebuilt copy of ``graph``; returns ``(copy, old_id -> new_id)``.

    ``keep_nodes`` restricts the copy to those nodes (dense renumbering
    in the given order); ``skip_edge`` drops one edge; ``weight_scale``
    multiplies every edge weight.  Edges with a dropped endpoint are
    dropped.  Used by the minimizer and the transforms below.
    """
    nodes = list(keep_nodes) if keep_nodes is not None else list(range(graph.num_nodes))
    copy = Graph()
    mapping = {}
    for old in nodes:
        mapping[old] = copy.add_node(
            labels=graph.labels_of(old), name=graph.name_of(old)
        )
    skip = None
    if skip_edge is not None:
        u, v = skip_edge
        skip = (min(u, v), max(u, v))
    for u, v, w in graph.edges():
        if (min(u, v), max(u, v)) == skip:
            continue
        if u in mapping and v in mapping:
            copy.add_edge(mapping[u], mapping[v], w * weight_scale)
    return copy, mapping


def renumber_nodes(
    graph: Graph, rng: random.Random
) -> Tuple[Graph, dict]:
    """An isomorphic copy under a random node permutation."""
    order = list(range(graph.num_nodes))
    rng.shuffle(order)
    return clone_graph(graph, keep_nodes=order)


def scale_weights(graph: Graph, factor: float) -> Graph:
    """Every edge weight multiplied by ``factor`` (> 0)."""
    if factor <= 0.0:
        raise ValueError("factor must be positive")
    copy, _ = clone_graph(graph, weight_scale=factor)
    return copy


def inject_duplicate_labels(
    graph: Graph, labels: Sequence[Hashable]
) -> Tuple[Graph, List[Hashable]]:
    """Alias every query label onto the exact same node group.

    Returns the rewritten graph and the extended query
    ``labels + aliases``; the optimal weight is unchanged.
    """
    copy, mapping = clone_graph(graph)
    extended: List[Hashable] = list(labels)
    for label in labels:
        alias = f"{label}#dup"
        for node in graph.nodes_with_label(label):
            copy.add_labels(mapping[node], [alias])
        extended.append(alias)
    return copy, extended


def add_disconnected_clutter(
    graph: Graph, rng: random.Random, num_nodes: int = 5
) -> Graph:
    """A fresh component of non-query-labelled nodes glued onto nothing."""
    copy, _ = clone_graph(graph)
    fresh = [
        copy.add_node(labels=[f"clutter:{i}"], name=("clutter", i))
        for i in range(num_nodes)
    ]
    for i in range(1, len(fresh)):
        copy.add_edge(fresh[i], fresh[rng.randrange(i)], rng.uniform(1.0, 10.0))
    return copy


def metamorphic_checks(
    graph: Graph,
    labels: Sequence[Hashable],
    *,
    algorithm: str = "pruneddp++",
    seed: int = 0,
    base_weight: Optional[float] = None,
) -> List[str]:
    """Run every transform; returns the violated invariants (if any).

    ``base_weight`` skips the baseline solve when the caller already has
    the instance's weight from a differential round.
    """
    rng = random.Random(seed)
    if base_weight is None:
        base_weight = solve_gst(graph, labels, algorithm=algorithm).weight
    violations: List[str] = []

    def _compare(name: str, got: float, want: float) -> None:
        if abs(got - want) > _REL_TOL * max(1.0, abs(want)):
            violations.append(
                f"{name}: weight {got!r} != expected {want!r} "
                f"(base {base_weight!r})"
            )

    renumbered, _ = renumber_nodes(graph, rng)
    _compare(
        "renumber",
        solve_gst(renumbered, labels, algorithm=algorithm).weight,
        base_weight,
    )

    factor = 3.5
    _compare(
        "scale",
        solve_gst(scale_weights(graph, factor), labels, algorithm=algorithm).weight,
        base_weight * factor,
    )

    duplicated, extended = inject_duplicate_labels(graph, labels)
    _compare(
        "duplicate-labels",
        solve_gst(duplicated, extended, algorithm=algorithm).weight,
        base_weight,
    )

    cluttered = add_disconnected_clutter(graph, rng)
    _compare(
        "clutter",
        solve_gst(cluttered, labels, algorithm=algorithm).weight,
        base_weight,
    )

    return violations
