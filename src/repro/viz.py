"""Dependency-free SVG rendering of answer trees and progressive curves.

The paper's case studies (Figs 11/12/17/18) are tree drawings and its
core evaluation (Fig 10) is a UB/LB-vs-time chart; this module produces
both as standalone SVG files so a reproduction report can embed real
vector figures without a plotting stack.

* :func:`tree_to_svg` — layered tree drawing (root on top, children
  fanned below), node boxes carrying names/labels, edges annotated
  with weights;
* :func:`trace_to_svg` — log-time UB/LB convergence chart from one or
  more solver traces.

Both return the SVG document as a string; :func:`save_svg` writes it.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple
from xml.sax.saxutils import escape

from .core.tree import SteinerTree
from .graph.graph import Graph

__all__ = ["tree_to_svg", "trace_to_svg", "save_svg"]

_FONT = "font-family='monospace' font-size='11'"

# Brand-neutral placeholder palette (one colour per series).
_SERIES_COLORS = (
    "#4269d0", "#efb118", "#ff725c", "#6cc5b0",
    "#3ca951", "#ff8ab7", "#a463f2", "#97bbf5",
)


def save_svg(path: str, svg: str) -> str:
    """Write an SVG document; returns the path."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(svg)
    return path


# ----------------------------------------------------------------------
# Tree drawing
# ----------------------------------------------------------------------
def tree_to_svg(
    tree: SteinerTree,
    graph: Graph,
    *,
    root: int = -1,
    node_width: int = 130,
    level_height: int = 80,
    max_labels: int = 3,
) -> str:
    """Layered drawing of a Steiner tree (paper case-study style)."""
    adjacency: Dict[int, List[Tuple[int, float]]] = {n: [] for n in tree.nodes}
    for u, v, w in tree.edges:
        adjacency[u].append((v, w))
        adjacency[v].append((u, w))
    if root < 0 or root not in tree.nodes:
        root = max(tree.nodes, key=lambda n: len(adjacency[n]))

    # BFS layering + in-order leaf positioning.
    depth: Dict[int, int] = {root: 0}
    order: List[int] = [root]
    parent_of: Dict[int, Optional[int]] = {root: None}
    queue = [root]
    while queue:
        node = queue.pop(0)
        for child, _ in adjacency[node]:
            if child not in depth:
                depth[child] = depth[node] + 1
                parent_of[child] = node
                order.append(child)
                queue.append(child)

    # Assign x positions: leaves evenly spaced, internals centered over
    # their children (classic tidy-ish layout).
    children: Dict[int, List[int]] = {n: [] for n in tree.nodes}
    for node in order[1:]:
        children[parent_of[node]].append(node)
    x_position: Dict[int, float] = {}
    next_leaf_x = [0.0]

    def place(node: int) -> float:
        kids = children[node]
        if not kids:
            x = next_leaf_x[0]
            next_leaf_x[0] += node_width + 20
        else:
            xs = [place(kid) for kid in kids]
            x = sum(xs) / len(xs)
        x_position[node] = x
        return x

    place(root)

    width = int(next_leaf_x[0] + node_width)
    height = (max(depth.values()) + 1) * level_height + 50
    parts: List[str] = [
        f"<svg xmlns='http://www.w3.org/2000/svg' width='{width}' "
        f"height='{height}' viewBox='0 0 {width} {height}'>",
        "<rect width='100%' height='100%' fill='white'/>",
    ]

    def center(node: int) -> Tuple[float, float]:
        return (
            x_position[node] + node_width / 2,
            depth[node] * level_height + 40,
        )

    # Edges first (under the boxes).
    for u, v, w in tree.edges:
        x1, y1 = center(u)
        x2, y2 = center(v)
        parts.append(
            f"<line x1='{x1:.1f}' y1='{y1:.1f}' x2='{x2:.1f}' y2='{y2:.1f}' "
            "stroke='#888' stroke-width='1.5'/>"
        )
        mx, my = (x1 + x2) / 2, (y1 + y2) / 2
        parts.append(
            f"<text x='{mx + 4:.1f}' y='{my - 4:.1f}' {_FONT} "
            f"fill='#666'>{w:g}</text>"
        )
    # Node boxes.
    for node in tree.nodes:
        x, y = x_position[node], depth[node] * level_height + 25
        name = graph.name_of(node)
        title = escape(str(name if name is not None else node))
        labels = ",".join(
            sorted(str(x) for x in graph.labels_of(node))[:max_labels]
        )
        parts.append(
            f"<rect x='{x:.1f}' y='{y}' width='{node_width}' height='34' "
            "rx='5' fill='#eef2fb' stroke='#4269d0'/>"
        )
        parts.append(
            f"<text x='{x + 6:.1f}' y='{y + 14}' {_FONT} "
            f"fill='#1a1a2e'>{title[:20]}</text>"
        )
        if labels:
            parts.append(
                f"<text x='{x + 6:.1f}' y='{y + 28}' {_FONT} "
                f"fill='#555'>{escape(labels)[:24]}</text>"
            )
    parts.append("</svg>")
    return "\n".join(parts)


# ----------------------------------------------------------------------
# Progressive-curve chart
# ----------------------------------------------------------------------
def trace_to_svg(
    traces: Dict[str, Sequence[Tuple[float, float, float]]],
    *,
    width: int = 560,
    height: int = 320,
    title: str = "progressive bounds (UB solid, LB dashed)",
) -> str:
    """Figure-10-style chart: per-algorithm UB (solid) + LB (dashed).

    ``traces[name]`` is a sequence of ``(elapsed, UB, LB)``; elapsed is
    drawn on a log axis like the paper.  Infinite UBs are skipped.
    """
    if not traces:
        raise ValueError("no traces to plot")
    margin = 55
    plot_w = width - margin - 20
    plot_h = height - margin - 30

    points: List[Tuple[float, float]] = []
    for trace in traces.values():
        for t, ub, lb in trace:
            if t > 0 and math.isfinite(ub):
                points.append((t, ub))
            if t > 0:
                points.append((t, lb))
    if not points:
        raise ValueError("no finite points to plot")
    t_lo = min(math.log10(t) for t, _ in points)
    t_hi = max(math.log10(t) for t, _ in points)
    y_lo = min(y for _, y in points)
    y_hi = max(y for _, y in points)
    t_span = (t_hi - t_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    def sx(t: float) -> float:
        return margin + (math.log10(max(t, 1e-9)) - t_lo) / t_span * plot_w

    def sy(value: float) -> float:
        return 20 + (y_hi - value) / y_span * plot_h

    parts = [
        f"<svg xmlns='http://www.w3.org/2000/svg' width='{width}' "
        f"height='{height}' viewBox='0 0 {width} {height}'>",
        "<rect width='100%' height='100%' fill='white'/>",
        f"<text x='{margin}' y='14' {_FONT} fill='#333'>{escape(title)}</text>",
        # Axes.
        f"<line x1='{margin}' y1='{20 + plot_h}' x2='{margin + plot_w}' "
        f"y2='{20 + plot_h}' stroke='#333'/>",
        f"<line x1='{margin}' y1='20' x2='{margin}' y2='{20 + plot_h}' "
        "stroke='#333'/>",
        f"<text x='{margin + plot_w - 70}' y='{20 + plot_h + 16}' {_FONT} "
        "fill='#333'>time (log)</text>",
        f"<text x='6' y='{20 + plot_h / 2:.0f}' {_FONT} fill='#333'>weight</text>",
        f"<text x='{margin - 40}' y='{sy(y_hi) + 4:.0f}' {_FONT} "
        f"fill='#333'>{y_hi:.1f}</text>",
        f"<text x='{margin - 40}' y='{sy(y_lo) + 4:.0f}' {_FONT} "
        f"fill='#333'>{y_lo:.1f}</text>",
    ]

    for idx, (name, trace) in enumerate(traces.items()):
        color = _SERIES_COLORS[idx % len(_SERIES_COLORS)]
        ub_path = " ".join(
            f"{sx(t):.1f},{sy(ub):.1f}"
            for t, ub, _ in trace
            if t > 0 and math.isfinite(ub)
        )
        lb_path = " ".join(
            f"{sx(t):.1f},{sy(lb):.1f}" for t, _, lb in trace if t > 0
        )
        if ub_path:
            parts.append(
                f"<polyline points='{ub_path}' fill='none' stroke='{color}' "
                "stroke-width='2'/>"
            )
        if lb_path:
            parts.append(
                f"<polyline points='{lb_path}' fill='none' stroke='{color}' "
                "stroke-width='2' stroke-dasharray='5,4'/>"
            )
        parts.append(
            f"<text x='{margin + plot_w - 120}' y='{34 + idx * 15}' {_FONT} "
            f"fill='{color}'>{escape(name)}</text>"
        )
    parts.append("</svg>")
    return "\n".join(parts)
