"""Keyword search application tests."""

from __future__ import annotations

import pytest

from repro import InfeasibleQueryError
from repro.apps import Database, KeywordSearchEngine


def bibliography() -> Database:
    db = Database()
    authors = db.create_relation("author", ["name"])
    papers = db.create_relation("paper", ["title"])
    authors.insert("knuth", name="Donald Knuth")
    authors.insert("dijkstra", name="Edsger Dijkstra")
    authors.insert("hoare", name="Tony Hoare")
    papers.insert("art", title="The Art of Computer Programming")
    papers.insert("goto", title="Goto Statement Considered Harmful")
    papers.insert("quicksort", title="Quicksort")
    db.add_reference("author", "knuth", "paper", "art")
    db.add_reference("author", "dijkstra", "paper", "goto")
    db.add_reference("author", "hoare", "paper", "quicksort")
    db.add_reference("paper", "art", "paper", "quicksort", strength=2.0)
    db.add_reference("paper", "goto", "paper", "quicksort", strength=2.0)
    return db


@pytest.fixture
def engine():
    return KeywordSearchEngine(bibliography())


class TestNormalize:
    def test_lowercase_and_split(self, engine):
        assert engine.normalize(["Donald Knuth"]) == ("donald", "knuth")

    def test_deduplication(self, engine):
        assert engine.normalize(["art", "Art"]) == ("art",)

    def test_empty_keyword_rejected(self, engine):
        with pytest.raises(InfeasibleQueryError):
            engine.normalize(["..."])


class TestSearch:
    def test_single_keyword(self, engine):
        answer = engine.search(["quicksort"])
        assert answer.optimal
        assert answer.weight == 0.0
        assert len(answer.tree.nodes) == 1

    def test_connects_authors(self, engine):
        answer = engine.search(["knuth", "hoare"])
        assert answer.optimal
        # knuth -1- art -2- quicksort -1- hoare
        assert answer.weight == pytest.approx(4.0)
        assert any("Knuth" in t for t in answer.tuples)
        assert any("Hoare" in t for t in answer.tuples)

    def test_three_authors(self, engine):
        answer = engine.search(["knuth", "dijkstra", "hoare"])
        assert answer.optimal
        answer.tree.validate(engine.graph, answer.keywords)
        assert answer.weight == pytest.approx(7.0)

    def test_unknown_keyword_raises(self, engine):
        with pytest.raises(InfeasibleQueryError):
            engine.search(["knuth", "xenomorph"])

    def test_render(self, engine):
        answer = engine.search(["knuth", "hoare"])
        out = answer.render(engine.graph)
        assert "art" in out or "quicksort" in out

    def test_algorithm_choice(self):
        engine = KeywordSearchEngine(bibliography(), algorithm="basic")
        answer = engine.search(["knuth", "hoare"])
        assert answer.weight == pytest.approx(4.0)

    def test_anytime_epsilon(self, engine):
        answer = engine.search(["knuth", "dijkstra", "hoare"], epsilon=1.0)
        assert answer.weight <= 14.0 + 1e-9  # within 2x of 7


class TestDirectedMode:
    def test_directed_search(self):
        engine = KeywordSearchEngine(bibliography(), directed=True)
        # 'art' cites 'quicksort': a directed root exists at knuth/art.
        answer = engine.search(["art", "quicksort"])
        assert answer.optimal
        answer.tree.validate(engine.graph, answer.keywords)
        assert answer.weight == pytest.approx(2.0)  # art -> quicksort

    def test_directed_render(self):
        engine = KeywordSearchEngine(bibliography(), directed=True)
        answer = engine.search(["art", "quicksort"])
        out = answer.render(engine.graph)
        assert out.startswith("*")

    def test_directed_can_be_infeasible(self):
        from repro import InfeasibleQueryError

        engine = KeywordSearchEngine(bibliography(), directed=True)
        # Nothing references both authors' names forward.
        with pytest.raises(InfeasibleQueryError):
            engine.search(["knuth", "dijkstra"])

    def test_directed_top_r_unsupported(self):
        engine = KeywordSearchEngine(bibliography(), directed=True)
        with pytest.raises(NotImplementedError):
            engine.search_top_r(["art"], r=2)


class TestTopR:
    def test_top_r_ordering(self, engine):
        answers = engine.search_top_r(["knuth", "hoare"], r=3)
        assert answers
        weights = [a.weight for a in answers]
        assert weights == sorted(weights)
        assert answers[0].optimal
        for answer in answers[1:]:
            assert not answer.optimal

    def test_top_r_all_cover(self, engine):
        for answer in engine.search_top_r(["knuth", "dijkstra"], r=4):
            assert answer.tree.covers(engine.graph, answer.keywords)

    def test_exact_top_r(self, engine):
        answers = engine.search_top_r(["knuth", "hoare"], r=3, exact=True)
        assert answers
        weights = [a.weight for a in answers]
        assert weights == sorted(weights)
        # Exact enumeration marks every answer as proven.
        assert all(a.optimal for a in answers)
        # Distinct reduced answers.
        assert len({a.tree.edges for a in answers}) == len(answers)

    def test_exact_top_r_at_least_as_good(self, engine):
        exact = engine.search_top_r(["knuth", "dijkstra", "hoare"], r=2, exact=True)
        approx = engine.search_top_r(["knuth", "dijkstra", "hoare"], r=2)
        assert exact[0].weight == pytest.approx(approx[0].weight)
        if len(exact) > 1 and len(approx) > 1:
            assert exact[1].weight <= approx[1].weight + 1e-9
