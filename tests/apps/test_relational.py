"""Tests for the mini relational database substrate."""

from __future__ import annotations

import pytest

from repro import GraphError
from repro.apps.relational import Database, tokenize


class TestTokenize:
    def test_basic(self):
        assert tokenize("Hello, World!") == ["hello", "world"]

    def test_numbers_kept(self):
        assert tokenize("SIGMOD 2016") == ["sigmod", "2016"]

    def test_empty(self):
        assert tokenize("...") == []


def sample_db() -> Database:
    db = Database()
    authors = db.create_relation("author", ["name"])
    papers = db.create_relation("paper", ["title"])
    authors.insert("a1", name="Ada Lovelace")
    authors.insert("a2", name="Alan Turing")
    papers.insert("p1", title="Notes on the Analytical Engine")
    papers.insert("p2", title="Computing Machinery and Intelligence")
    db.add_reference("author", "a1", "paper", "p1")
    db.add_reference("author", "a2", "paper", "p2")
    db.add_reference("paper", "p2", "paper", "p1", strength=2.0)
    return db


class TestSchema:
    def test_duplicate_relation_rejected(self):
        db = Database()
        db.create_relation("r", ["a"])
        with pytest.raises(GraphError):
            db.create_relation("r", ["a"])

    def test_unknown_relation(self):
        with pytest.raises(GraphError):
            Database().relation("ghost")

    def test_duplicate_key_rejected(self):
        db = Database()
        rel = db.create_relation("r", ["a"])
        rel.insert(1, a="x")
        with pytest.raises(GraphError):
            rel.insert(1, a="y")

    def test_unknown_attribute_rejected(self):
        db = Database()
        rel = db.create_relation("r", ["a"])
        with pytest.raises(GraphError):
            rel.insert(1, b="nope")

    def test_reference_to_missing_tuple_rejected(self):
        db = sample_db()
        with pytest.raises(GraphError):
            db.add_reference("author", "a1", "paper", "p999")
        with pytest.raises(GraphError):
            db.add_reference("author", "ghost", "paper", "p1")

    def test_nonpositive_strength_rejected(self):
        db = sample_db()
        with pytest.raises(GraphError):
            db.add_reference("author", "a1", "paper", "p2", strength=0.0)


class TestToGraph:
    def test_nodes_and_edges(self):
        g = sample_db().to_graph()
        assert g.num_nodes == 4
        assert g.num_edges == 3

    def test_keyword_labels(self):
        g = sample_db().to_graph()
        ada = g.node_by_name(("author", "a1"))
        assert g.has_label(ada, "ada")
        assert g.has_label(ada, "lovelace")
        assert g.has_label(ada, "rel:author")

    def test_edge_weights_are_strengths(self):
        g = sample_db().to_graph()
        p1 = g.node_by_name(("paper", "p1"))
        p2 = g.node_by_name(("paper", "p2"))
        assert g.edge_weight(p1, p2) == 2.0

    def test_describe_node(self):
        db = sample_db()
        g = db.to_graph()
        text = db.describe_node(g, g.node_by_name(("author", "a1")))
        assert "Ada Lovelace" in text
        assert "author" in text


class TestToDigraph:
    def test_edges_follow_reference_direction(self):
        db = sample_db()
        dg = db.to_digraph()
        ada = dg.node_by_name(("author", "a1"))
        p1 = dg.node_by_name(("paper", "p1"))
        assert dg.has_edge(ada, p1)
        assert not dg.has_edge(p1, ada)
        dg.validate()

    def test_directed_keyword_search(self):
        """Directed GST over the tuple digraph: an author connecting to
        both papers must follow forward references only."""
        from repro.core import DirectedGSTSolver

        db = sample_db()
        dg = db.to_digraph()
        # 'computing' is in p2's title; 'analytical' in p1's.
        # p2 cites p1, so the root can be p2 (or alan, who wrote p2).
        result = DirectedGSTSolver(dg, ["computing", "analytical"]).solve()
        assert result.optimal
        result.tree.validate(dg, ["computing", "analytical"])
        p2 = dg.node_by_name(("paper", "p2"))
        assert result.tree.root == p2  # cheapest root: p2 -> p1 costs 2
        assert result.weight == pytest.approx(2.0)

    def test_directed_infeasible_where_undirected_feasible(self):
        """Direction can make queries unanswerable: nothing references
        both authors, though they connect in the undirected graph."""
        from repro import InfeasibleQueryError
        from repro.core import DirectedGSTSolver

        db = sample_db()
        dg = db.to_digraph()
        with pytest.raises(InfeasibleQueryError):
            DirectedGSTSolver(dg, ["ada", "alan"]).solve()
        # Undirected: feasible.
        from repro import solve_gst

        result = solve_gst(db.to_graph(), ["ada", "alan"])
        assert result.optimal
