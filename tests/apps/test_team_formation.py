"""Team formation application tests."""

from __future__ import annotations

import pytest

from repro import GraphError, InfeasibleQueryError
from repro.apps import ExpertNetwork


@pytest.fixture
def network():
    net = ExpertNetwork()
    net.add_expert("ann", ["python", "ml"])
    net.add_expert("bob", ["databases"])
    net.add_expert("cat", ["frontend"])
    net.add_expert("dan", [])  # connector
    net.add_collaboration("ann", "dan", 1.0)
    net.add_collaboration("bob", "dan", 1.0)
    net.add_collaboration("cat", "dan", 2.0)
    net.add_collaboration("ann", "bob", 5.0)
    return net


class TestConstruction:
    def test_duplicate_expert_rejected(self, network):
        with pytest.raises(GraphError):
            network.add_expert("ann", ["x"])

    def test_unknown_expert_in_collaboration(self, network):
        with pytest.raises(GraphError):
            network.add_collaboration("ann", "zoe", 1.0)

    def test_nonpositive_cost_rejected(self, network):
        with pytest.raises(GraphError):
            network.add_collaboration("ann", "bob", 0.0)

    def test_num_experts(self, network):
        assert network.num_experts == 4

    def test_skills_of(self, network):
        assert network.skills_of("ann") == frozenset({"python", "ml"})
        with pytest.raises(GraphError):
            network.skills_of("zoe")


class TestFindTeam:
    def test_single_skill(self, network):
        team = network.find_team(["databases"])
        assert team.members == ["bob"]
        assert team.communication_cost == 0.0
        assert team.optimal

    def test_two_skills_via_connector(self, network):
        team = network.find_team(["ml", "databases"])
        assert sorted(team.members) == ["ann", "bob", "dan"]
        assert team.communication_cost == pytest.approx(2.0)
        assert team.covers(network.expert_skills())

    def test_three_skills(self, network):
        team = network.find_team(["ml", "databases", "frontend"])
        assert team.communication_cost == pytest.approx(4.0)
        assert team.covers(network.expert_skills())

    def test_duplicate_skills_deduped(self, network):
        team = network.find_team(["ml", "ml", "databases"])
        assert team.required_skills == ("ml", "databases")

    def test_missing_skill_raises(self, network):
        with pytest.raises(InfeasibleQueryError):
            network.find_team(["quantum"])

    def test_empty_skills_raises(self, network):
        with pytest.raises(InfeasibleQueryError):
            network.find_team([])

    def test_algorithm_selection(self, network):
        team = network.find_team(["ml", "databases"], algorithm="basic")
        assert team.communication_cost == pytest.approx(2.0)

    def test_team_covers_check(self, network):
        team = network.find_team(["ml"])
        assert team.covers(network.expert_skills())
        assert not team.covers({})
