"""Tests for the BANKS-I / BANKS-II approximation baselines."""

from __future__ import annotations

import pytest

from repro import InfeasibleQueryError
from repro.baselines import Banks1Solver, Banks2Solver
from repro.core import DPBFSolver, brute_force_gst
from repro.graph import generators

SOLVERS = [Banks1Solver, Banks2Solver]


@pytest.mark.parametrize("solver_cls", SOLVERS)
class TestFeasibility:
    def test_path(self, path_graph, solver_cls):
        result = solver_cls(path_graph, ["x", "y"]).solve()
        assert result.tree is not None
        result.tree.validate(path_graph, ["x", "y"])
        assert result.weight == pytest.approx(3.0)  # trivially optimal here
        assert not result.optimal  # heuristics never claim optimality

    def test_always_feasible_on_random_graphs(self, solver_cls):
        for seed in range(8):
            g = generators.random_graph(
                30, 60, num_query_labels=4, label_frequency=3, seed=seed
            )
            labels = [f"q{i}" for i in range(4)]
            result = solver_cls(g, labels).solve()
            assert result.tree is not None, seed
            result.tree.validate(g, labels)

    def test_single_label(self, path_graph, solver_cls):
        result = solver_cls(path_graph, ["x"]).solve()
        assert result.weight == 0.0
        assert result.tree.nodes == frozenset({0})

    def test_infeasible_raises(self, path_graph, solver_cls):
        with pytest.raises(InfeasibleQueryError):
            solver_cls(path_graph, ["x", "ghost"]).solve()

    def test_never_better_than_optimum(self, solver_cls, random_graph_factory):
        for seed in range(8):
            g = random_graph_factory(seed, n=10, extra_edges=8, k=3)
            labels = ["q0", "q1", "q2"]
            optimum, _ = brute_force_gst(g, labels)
            result = solver_cls(g, labels).solve()
            assert result.weight >= optimum - 1e-9

    def test_lower_bound_is_trivial(self, path_graph, solver_cls):
        result = solver_cls(path_graph, ["x", "y"]).solve()
        assert result.lower_bound == 0.0


class TestApproximationQuality:
    def test_banks1_within_k_approx_with_full_exploration(self):
        """With unbounded candidates, BANKS-I's best connection node
        yields a <= k-approximation (union of k shortest paths)."""
        for seed in range(6):
            g = generators.random_graph(
                25, 55, num_query_labels=3, label_frequency=3, seed=seed
            )
            labels = ["q0", "q1", "q2"]
            optimum = DPBFSolver(g, labels).solve().weight
            result = Banks1Solver(g, labels, max_candidates=10**9).solve()
            assert result.weight <= 3 * optimum + 1e-9, seed

    def test_banks2_reasonable_on_dblp_like(self):
        g = generators.dblp_like(
            num_papers=150, num_authors=90,
            num_query_labels=10, label_frequency=5, seed=3,
        )
        labels = [f"q{i}" for i in range(4)]
        optimum = DPBFSolver(g, labels).solve().weight
        result = Banks2Solver(g, labels).solve()
        ratio = result.weight / optimum
        assert 1.0 - 1e-9 <= ratio <= 4.0  # paper sees ~1.1-1.5

    def test_banks2_explores_most_of_graph(self):
        """The paper's explanation for BANKS-II's cost: it settles ~k·n
        node/group pairs, unlike PrunedDP++'s partial exploration."""

        g = generators.dblp_like(
            num_papers=200, num_authors=120,
            num_query_labels=10, label_frequency=6, seed=4,
        )
        labels = [f"q{i}" for i in range(4)]
        banks = Banks2Solver(g, labels).solve()
        assert banks.stats.states_popped >= 0.5 * g.num_nodes

    def test_degree_penalty_changes_exploration(self):
        g = generators.powerlaw(300, num_query_labels=6, label_frequency=5, seed=0)
        labels = [f"q{i}" for i in range(3)]
        damped = Banks2Solver(g, labels, degree_penalty=1.0).solve()
        plain = Banks2Solver(g, labels, degree_penalty=0.0).solve()
        # Both feasible; answers may differ but both are valid trees.
        damped.tree.validate(g, labels)
        plain.tree.validate(g, labels)


class TestProgressiveTrace:
    def test_banks2_trace_improves(self):
        g = generators.random_graph(
            40, 90, num_query_labels=4, label_frequency=4, seed=7
        )
        labels = [f"q{i}" for i in range(4)]
        result = Banks2Solver(g, labels).solve()
        weights = [p.best_weight for p in result.trace]
        assert weights == sorted(weights, reverse=True)

    def test_time_limit_respected(self):
        g = generators.powerlaw(500, num_query_labels=6, label_frequency=6, seed=1)
        labels = [f"q{i}" for i in range(5)]
        result = Banks2Solver(g, labels, time_limit=0.01).solve()
        # Either finished very fast or stopped near the limit.
        assert result.stats.total_seconds < 2.0
