"""BLINKS-style solver tests: top-k roots, early termination, soundness."""

from __future__ import annotations

import pytest

from repro import InfeasibleQueryError
from repro.baselines import DistanceNetworkSolver
from repro.baselines.blinks import BlinksSolver
from repro.core import brute_force_gst
from repro.core.context import QueryContext
from repro.core.query import GSTQuery
from repro.graph import generators


def exact_root_scores(graph, labels):
    """Oracle: score(v) = Σ_i dist(v, V_i) for every node, exactly."""
    ctx = QueryContext.build(graph, GSTQuery(labels))
    scores = []
    for v in graph.nodes():
        total = 0.0
        for i in range(ctx.k):
            d = ctx.dist[i][v]
            if d == float("inf"):
                total = float("inf")
                break
            total += d
        scores.append(total)
    return scores


class TestBasics:
    def test_path(self, path_graph):
        result = BlinksSolver(path_graph, ["x", "y"]).solve()
        assert result.tree is not None
        result.tree.validate(path_graph, ["x", "y"])
        assert result.weight == pytest.approx(3.0)
        assert not result.optimal

    def test_k_answers_validation(self, path_graph):
        with pytest.raises(ValueError):
            BlinksSolver(path_graph, ["x"], k_answers=0)

    def test_infeasible_raises(self, path_graph):
        with pytest.raises(InfeasibleQueryError):
            BlinksSolver(path_graph, ["x", "ghost"]).solve()

    def test_split_groups_raise(self):
        from repro import Graph

        g = Graph()
        g.add_node(labels=["x"])
        g.add_node(labels=["y"])
        with pytest.raises(InfeasibleQueryError):
            BlinksSolver(g, ["x", "y"]).solve()

    def test_feasible_on_random_graphs(self):
        for seed in range(6):
            g = generators.random_graph(
                30, 60, num_query_labels=4, label_frequency=3, seed=seed
            )
            labels = [f"q{i}" for i in range(4)]
            result = BlinksSolver(g, labels).solve()
            result.tree.validate(g, labels)


class TestTopKCorrectness:
    @pytest.mark.parametrize("seed", range(8))
    def test_best_root_score_is_exact(self, seed):
        """Early termination must not change the top-1 root score."""
        g = generators.random_graph(
            30, 65, num_query_labels=3, label_frequency=3, seed=seed
        )
        labels = ["q0", "q1", "q2"]
        solver = BlinksSolver(g, labels, k_answers=3)
        solver.solve()
        answers = solver.top_roots()
        assert answers
        oracle = exact_root_scores(g, labels)
        best_possible = min(oracle)
        assert answers[0].score == pytest.approx(best_possible), seed

    @pytest.mark.parametrize("seed", range(5))
    def test_topk_scores_match_oracle(self, seed):
        g = generators.random_graph(
            25, 50, num_query_labels=3, label_frequency=3, seed=seed + 50
        )
        labels = ["q0", "q1", "q2"]
        k_answers = 4
        solver = BlinksSolver(g, labels, k_answers=k_answers)
        solver.solve()
        got = [a.score for a in solver.top_roots()]
        oracle = sorted(exact_root_scores(g, labels))[:k_answers]
        oracle = [s for s in oracle if s < float("inf")]
        assert got == pytest.approx(oracle[: len(got)])
        assert len(got) == min(k_answers, len(oracle))

    def test_scores_sorted_and_roots_distinct(self):
        g = generators.random_graph(
            40, 90, num_query_labels=4, label_frequency=4, seed=3
        )
        labels = [f"q{i}" for i in range(4)]
        solver = BlinksSolver(g, labels, k_answers=5)
        solver.solve()
        answers = solver.top_roots()
        scores = [a.score for a in answers]
        assert scores == sorted(scores)
        assert len({a.root for a in answers}) == len(answers)


class TestEarlyTermination:
    def test_terminates_before_full_exploration(self):
        """On a big graph with close-together keywords, BLINKS settles
        far fewer node/keyword pairs than the k·n full exploration."""
        g = generators.road_grid(
            30, 30, num_query_labels=6, label_frequency=30, seed=4
        )
        labels = [f"q{i}" for i in range(4)]
        solver = BlinksSolver(g, labels, k_answers=3)
        result = solver.solve()
        full_work = 4 * g.num_nodes
        assert result.stats.states_popped < 0.8 * full_work

    def test_answer_quality_against_optimum(self):
        for seed in range(5):
            g = generators.random_graph(
                10, 16, num_query_labels=3, label_frequency=2, seed=seed
            )
            labels = ["q0", "q1", "q2"]
            optimum, _ = brute_force_gst(g, labels)
            result = BlinksSolver(g, labels).solve()
            assert optimum - 1e-9 <= result.weight <= 3 * optimum + 1e-9

    def test_same_best_tree_weight_as_distance_network(self):
        """BLINKS' best root minimizes the same objective the
        distance-network heuristic scans for; answer weights agree
        after identical pruning."""
        for seed in range(5):
            g = generators.random_graph(
                35, 75, num_query_labels=3, label_frequency=3, seed=seed + 9
            )
            labels = ["q0", "q1", "q2"]
            blinks = BlinksSolver(g, labels).solve()
            dn = DistanceNetworkSolver(g, labels).solve()
            # Both pick a root minimizing the same score, so after the
            # identical path-union + prune pipeline the answers match.
            assert blinks.weight == pytest.approx(dn.weight)

    def test_time_limit(self):
        g = generators.powerlaw(
            600, num_query_labels=6, label_frequency=5, seed=5
        )
        labels = [f"q{i}" for i in range(5)]
        result = BlinksSolver(g, labels, time_limit=0.005).solve()
        # Either finished or stopped; no exception, stats sane.
        assert result.stats.total_seconds < 2.0


class TestBiLevelIndex:
    def test_index_preserves_answers(self):
        from repro.baselines.blinks import BlinksIndex

        for seed in range(5):
            g = generators.random_graph(
                40, 85, num_query_labels=3, label_frequency=3, seed=seed + 30
            )
            labels = ["q0", "q1", "q2"]
            plain = BlinksSolver(g, labels, k_answers=3)
            plain.solve()
            index = BlinksIndex(g, block_size=8)
            indexed = BlinksSolver(g, labels, k_answers=3, index=index)
            indexed.solve()
            assert [a.score for a in indexed.top_roots()] == pytest.approx(
                [a.score for a in plain.top_roots()]
            )

    def test_index_never_explores_more(self):
        from repro.baselines.blinks import BlinksIndex

        g = generators.road_grid(
            25, 25, num_query_labels=6, label_frequency=20, seed=6
        )
        labels = [f"q{i}" for i in range(4)]
        plain = BlinksSolver(g, labels, k_answers=2).solve()
        index = BlinksIndex(g, block_size=25)
        indexed = BlinksSolver(g, labels, k_answers=2, index=index).solve()
        assert indexed.weight == pytest.approx(plain.weight)
        assert (
            indexed.stats.states_popped
            <= plain.stats.states_popped + 64  # check-interval slack
        )

    def test_keyword_bounds_admissible(self):
        from repro.baselines.blinks import BlinksIndex
        from repro.core.context import QueryContext
        from repro.core.query import GSTQuery

        g = generators.random_graph(
            45, 95, num_query_labels=3, label_frequency=4, seed=9
        )
        labels = ["q0", "q1", "q2"]
        index = BlinksIndex(g, block_size=7)
        query = GSTQuery(labels)
        groups = query.groups(g)
        bounds = index.keyword_bounds(groups)
        ctx = QueryContext.build(g, query)
        for i in range(3):
            for v in g.nodes():
                block = index.partition.block_of(v)
                assert bounds[i][block] <= ctx.dist[i][v] + 1e-9

    def test_index_for_wrong_graph_rejected(self):
        from repro import GraphError
        from repro.baselines.blinks import BlinksIndex

        g1 = generators.random_graph(10, 15, num_query_labels=2, seed=1)
        g2 = generators.random_graph(10, 15, num_query_labels=2, seed=2)
        index = BlinksIndex(g1)
        with pytest.raises(GraphError):
            BlinksSolver(g2, ["q0", "q1"], index=index)
