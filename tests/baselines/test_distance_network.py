"""Distance-network heuristic tests, including its k-approx guarantee."""

from __future__ import annotations

import pytest

from repro import InfeasibleQueryError
from repro.baselines import DistanceNetworkSolver
from repro.core import DPBFSolver, brute_force_gst
from repro.graph import generators


class TestBasics:
    def test_path(self, path_graph):
        result = DistanceNetworkSolver(path_graph, ["x", "y"]).solve()
        assert result.tree is not None
        result.tree.validate(path_graph, ["x", "y"])
        assert result.weight == pytest.approx(3.0)
        assert not result.optimal

    def test_single_label(self, path_graph):
        result = DistanceNetworkSolver(path_graph, ["x"]).solve()
        assert result.weight == 0.0

    def test_star_finds_hub(self, star_graph):
        result = DistanceNetworkSolver(star_graph, ["x", "y", "z"]).solve()
        assert result.weight == pytest.approx(6.0)
        assert 0 in result.tree.nodes

    def test_infeasible_raises(self, path_graph):
        with pytest.raises(InfeasibleQueryError):
            DistanceNetworkSolver(path_graph, ["x", "nope"]).solve()

    def test_bad_num_roots(self, path_graph):
        with pytest.raises(ValueError):
            DistanceNetworkSolver(path_graph, ["x"], num_roots=0)


class TestGuarantee:
    @pytest.mark.parametrize("seed", range(10))
    def test_k_approximation(self, seed, random_graph_factory):
        """Provable bound: answer <= k * optimum."""
        k = 3
        g = random_graph_factory(seed, n=10, extra_edges=8, k=k)
        labels = [f"q{i}" for i in range(k)]
        optimum, _ = brute_force_gst(g, labels)
        result = DistanceNetworkSolver(g, labels).solve()
        assert optimum - 1e-9 <= result.weight <= k * optimum + 1e-9

    def test_more_roots_never_worse(self):
        g = generators.random_graph(
            40, 90, num_query_labels=4, label_frequency=4, seed=6
        )
        labels = [f"q{i}" for i in range(4)]
        one = DistanceNetworkSolver(g, labels, num_roots=1).solve()
        many = DistanceNetworkSolver(g, labels, num_roots=8).solve()
        assert many.weight <= one.weight + 1e-9

    def test_much_cheaper_than_exact_search(self):
        g = generators.dblp_like(
            num_papers=150, num_authors=90,
            num_query_labels=10, label_frequency=5, seed=3,
        )
        labels = [f"q{i}" for i in range(4)]
        heuristic = DistanceNetworkSolver(g, labels).solve()
        exact = DPBFSolver(g, labels).solve()
        assert heuristic.weight >= exact.weight - 1e-9
        # The heuristic only scans nodes once.
        assert heuristic.stats.states_popped == g.num_nodes
