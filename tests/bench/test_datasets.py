"""Dataset registry tests."""

from __future__ import annotations

import pytest

from repro.bench import datasets
from repro.graph.components import is_connected


@pytest.fixture(autouse=True)
def fresh_cache():
    datasets.clear_cache()
    yield
    datasets.clear_cache()


class TestRegistry:
    @pytest.mark.parametrize("name", datasets.DATASET_NAMES)
    def test_every_dataset_builds(self, name):
        g = datasets.get_dataset(name, "tiny")
        assert g.num_nodes > 0
        assert is_connected(g)
        g.validate()

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            datasets.get_dataset("orkut")

    def test_unknown_scale(self):
        with pytest.raises(ValueError):
            datasets.get_dataset("dblp", "galactic")

    def test_memoized(self):
        a = datasets.get_dataset("dblp", "tiny")
        b = datasets.get_dataset("dblp", "tiny")
        assert a is b

    def test_scales_grow(self):
        tiny = datasets.get_dataset("dblp", "tiny")
        small = datasets.get_dataset("dblp", "small")
        assert small.num_nodes > tiny.num_nodes


class TestKwfPools:
    def test_pool_names(self):
        pool = datasets.kwf_pool(8)
        assert len(pool) == datasets.POOL_SIZE
        assert pool[0] == "kwf8:0"

    def test_invalid_kwf(self):
        with pytest.raises(ValueError):
            datasets.kwf_pool(7)

    @pytest.mark.parametrize("kwf", datasets.KWF_VALUES)
    def test_pool_frequencies_attached(self, kwf):
        g = datasets.get_dataset("dblp", "tiny")
        for label in datasets.kwf_pool(kwf):
            assert g.label_frequency(label) == min(kwf, g.num_nodes)
