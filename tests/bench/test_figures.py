"""Smoke + shape tests for the figure/table regeneration harness.

Full-size regenerations live under benchmarks/; here each harness
function is exercised at tiny scale and its output contract checked.
"""

from __future__ import annotations

import pytest

from repro.bench import figures
from repro.bench.runner import RATIO_CHECKPOINTS


class TestTimeFigures:
    def test_knum_sweep_structure(self):
        fig = figures.figure_time_vs_ratio_knum(
            "dblp", scale="tiny", knums=(3, 4), num_queries=1,
        )
        assert "knum=3" in fig.text and "knum=4" in fig.text
        assert (3, "PrunedDP++") in fig.series
        values = fig.series[(3, "PrunedDP++")]
        assert len(values) == len(RATIO_CHECKPOINTS)
        # Times to successive (tighter) checkpoints are non-decreasing.
        assert values == sorted(values)

    def test_kwf_sweep_structure(self):
        fig = figures.figure_time_vs_ratio_kwf(
            "roadusa", scale="tiny", knum=3, kwfs=(4, 8), num_queries=1,
        )
        assert "kwf=4" in fig.text and "kwf=8" in fig.text
        assert (4, "Basic") in fig.series


class TestMemoryFigures:
    def test_memory_knum(self):
        fig = figures.figure_memory_vs_ratio_knum(
            "dblp", scale="tiny", knums=(3,), num_queries=1,
        )
        peak, states = fig.series[(3, "PrunedDP++")]
        assert peak > 0 and states > 0
        # PrunedDP++ never pops more states than Basic.
        assert fig.series[(3, "PrunedDP++")][1] <= fig.series[(3, "Basic")][1]

    def test_memory_kwf(self):
        fig = figures.figure_memory_vs_ratio_kwf(
            "imdb", scale="tiny", knum=3, kwfs=(8,), num_queries=1,
        )
        assert (8, "PrunedDP") in fig.series


class TestProgressiveFigure:
    def test_traces_monotone(self):
        fig = figures.figure_progressive_bounds(
            "dblp", scale="tiny", knum=4,
        )
        for algorithm in ("Basic", "PrunedDP", "PrunedDP+", "PrunedDP++"):
            trace = fig.series[("trace", algorithm)]
            assert trace
            ubs = [ub for _, ub, _ in trace]
            lbs = [lb for _, _, lb in trace]
            assert all(b <= a + 1e-9 for a, b in zip(ubs, ubs[1:]))
            assert all(b >= a - 1e-9 for a, b in zip(lbs, lbs[1:]))
            # Gap closed at the end.
            assert ubs[-1] == pytest.approx(lbs[-1])


class TestLargeKnumFigure:
    def test_runs(self):
        fig = figures.figure_large_knum(
            "dblp", scale="tiny", knums=(5,),
        )
        assert "knum=5" in fig.text
        trace = fig.series[(5, "PrunedDP++")]
        assert trace


class TestAllAlgorithmsTable:
    def test_structure(self):
        fig = figures.table_all_algorithms(
            "dblp", scale="tiny", knum=3, num_queries=1,
            algorithms=("Basic", "PrunedDP++", "DPBF", "DistanceNetwork"),
        )
        assert "all-algorithms" in fig.text
        ratio, states, seconds = fig.series[("row", "PrunedDP++")]
        assert ratio == pytest.approx(1.0)
        assert states > 0 and seconds >= 0
        heuristic_ratio = fig.series[("row", "DistanceNetwork")][0]
        assert heuristic_ratio >= 1.0 - 1e-9


class TestBanksTable:
    def test_structure(self):
        table = figures.table_banks_comparison(
            "dblp", scale="tiny", configurations=((3, 8),), num_queries=1,
        )
        banks_time, banks_ratio, pp_time, tr = table.series[(3, 8)]
        assert banks_time >= 0
        assert banks_ratio >= 1.0 - 1e-9
        assert pp_time >= 0
        # T_r never exceeds the full PrunedDP++ solve time.
        assert tr <= pp_time + 1e-9
        assert "BANKS-II" in table.text
