"""Metrics/formatting helper tests."""

from __future__ import annotations

import math

import pytest

from repro.bench.metrics import (
    format_bytes,
    format_seconds,
    format_table,
    geometric_mean,
    mean,
)


class TestMeans:
    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0

    def test_mean_empty_is_nan(self):
        assert math.isnan(mean([]))

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_geometric_mean_skips_nonpositive(self):
        assert geometric_mean([0.0, 4.0]) == pytest.approx(4.0)

    def test_geometric_mean_empty_is_nan(self):
        assert math.isnan(geometric_mean([0.0]))


class TestFormatSeconds:
    def test_micro(self):
        assert format_seconds(5e-5) == "50us"

    def test_milli(self):
        assert format_seconds(0.0123) == "12.3ms"

    def test_seconds(self):
        assert format_seconds(3.14159) == "3.14s"

    def test_minutes(self):
        assert format_seconds(300.0) == "5.0min"

    def test_none_and_nan(self):
        assert format_seconds(None) == "-"
        assert format_seconds(float("nan")) == "-"

    def test_inf(self):
        assert format_seconds(float("inf")) == "inf"


class TestFormatBytes:
    def test_bytes(self):
        assert format_bytes(512) == "512B"

    def test_kilobytes(self):
        assert format_bytes(2048) == "2.0KB"

    def test_megabytes(self):
        assert format_bytes(3 * 1024**2) == "3.0MB"

    def test_gigabytes(self):
        assert format_bytes(5 * 1024**3) == "5.0GB"

    def test_nan(self):
        assert format_bytes(float("nan")) == "-"


class TestMeasurePeakMemory:
    def test_returns_result_and_positive_peak(self):
        from repro.bench.metrics import measure_peak_memory

        result, peak = measure_peak_memory(lambda: [0] * 100_000)
        assert len(result) == 100_000
        assert peak > 100_000 * 8 // 2  # at least the list's payload

    def test_bigger_allocation_bigger_peak(self):
        from repro.bench.metrics import measure_peak_memory

        _, small = measure_peak_memory(lambda: [0] * 10_000)
        _, big = measure_peak_memory(lambda: [0] * 1_000_000)
        assert big > small

    def test_nested_measurement(self):
        from repro.bench.metrics import measure_peak_memory

        def outer():
            _, inner_peak = measure_peak_memory(lambda: [0] * 1000)
            return inner_peak

        inner_peak, outer_peak = measure_peak_memory(outer)
        assert inner_peak > 0
        assert outer_peak > 0

    def test_exception_stops_tracing(self):
        import tracemalloc

        from repro.bench.metrics import measure_peak_memory

        def boom():
            raise RuntimeError("x")

        with pytest.raises(RuntimeError):
            measure_peak_memory(boom)
        assert not tracemalloc.is_tracing()

    def test_solver_memory_ordering_ground_truth(self):
        """The real allocator agrees with the byte model's ordering."""
        from repro.bench.metrics import measure_peak_memory
        from repro.core import BasicSolver, PrunedDPPlusPlusSolver
        from repro.graph import generators

        g = generators.dblp_like(
            num_papers=120, num_authors=70,
            num_query_labels=10, label_frequency=5, seed=2,
        )
        labels = [f"q{i}" for i in range(4)]
        _, basic_peak = measure_peak_memory(
            lambda: BasicSolver(g, labels).solve()
        )
        _, pp_peak = measure_peak_memory(
            lambda: PrunedDPPlusPlusSolver(g, labels).solve()
        )
        assert pp_peak < basic_peak


class TestFormatTable:
    def test_alignment(self):
        out = format_table(
            ["name", "value"], [["a", "1"], ["long-name", "22"]], title="T"
        )
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1]
        assert lines[2].startswith("-")
        assert len(lines) == 5

    def test_non_string_cells(self):
        out = format_table(["x"], [[42]])
        assert "42" in out
