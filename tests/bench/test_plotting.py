"""ASCII chart tests."""

from __future__ import annotations

import pytest

from repro.bench.plotting import ascii_chart, progressive_chart


class TestAsciiChart:
    def test_single_series(self):
        chart = ascii_chart({"s": [(0.0, 1.0), (1.0, 2.0), (2.0, 4.0)]})
        assert "A=s" in chart
        assert "A" in chart.splitlines()[0] or any(
            "A" in line for line in chart.splitlines()
        )

    def test_multiple_series_have_distinct_markers(self):
        chart = ascii_chart(
            {
                "up": [(0.0, 0.0), (1.0, 10.0)],
                "down": [(0.0, 10.0), (1.0, 0.0)],
            }
        )
        assert "A=up" in chart
        assert "B=down" in chart
        body = "\n".join(chart.splitlines()[:-2])
        assert "A" in body and "B" in body

    def test_log_x(self):
        chart = ascii_chart(
            {"s": [(0.001, 1.0), (0.01, 2.0), (10.0, 3.0)]}, log_x=True
        )
        assert chart  # no crash on 4-decade span

    def test_non_finite_points_skipped(self):
        chart = ascii_chart(
            {"s": [(0.0, float("inf")), (1.0, 2.0), (2.0, 3.0)]}
        )
        assert chart

    def test_flat_series(self):
        chart = ascii_chart({"s": [(0.0, 5.0), (1.0, 5.0)]})
        assert "5.00" in chart

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ascii_chart({})
        with pytest.raises(ValueError):
            ascii_chart({"s": [(0.0, float("nan"))]})

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            ascii_chart({"s": [(0, 1)]}, width=2, height=2)

    def test_y_label(self):
        chart = ascii_chart({"s": [(0, 1), (1, 2)]}, y_label="weight")
        assert chart.splitlines()[0] == "weight"


class TestProgressiveChart:
    def test_single_algorithm_shows_ub_and_lb(self):
        trace = [(0.01, 10.0, 1.0), (0.1, 8.0, 4.0), (1.0, 8.0, 8.0)]
        chart = progressive_chart({"X": trace})
        assert "A=X UB" in chart
        assert "B=X LB" in chart

    def test_multi_algorithm_overlays_ubs(self):
        traces = {
            "X": [(0.01, 10.0, 1.0), (1.0, 8.0, 8.0)],
            "Y": [(0.01, 12.0, 1.0), (0.5, 8.0, 8.0)],
        }
        chart = progressive_chart(traces)
        assert "A=X" in chart and "B=Y" in chart

    def test_infinite_ub_skipped(self):
        trace = [(0.01, float("inf"), 1.0), (1.0, 8.0, 8.0)]
        chart = progressive_chart({"X": trace})
        assert chart

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            progressive_chart({})

    def test_real_solver_trace(self):
        from repro.core import PrunedDPPlusPlusSolver
        from repro.graph import generators

        g = generators.random_graph(
            30, 70, num_query_labels=3, label_frequency=3, seed=2
        )
        result = PrunedDPPlusPlusSolver(g, ["q0", "q1", "q2"]).solve()
        trace = [(p.elapsed, p.best_weight, p.lower_bound) for p in result.trace]
        chart = progressive_chart({"PrunedDP++": trace})
        assert "UB" in chart and "LB" in chart
