"""JSON experiment-record tests."""

from __future__ import annotations

import json

import pytest

from repro.bench.reporting import (
    environment_record,
    load_json,
    query_run_to_dict,
    save_json,
    suite_to_dict,
)
from repro.bench.runner import run_query, run_suite
from repro.bench.workloads import make_workload


@pytest.fixture(scope="module")
def workload():
    return make_workload(
        "dblp", scale="tiny", knum=3, kwf=8, num_queries=2, seed=2
    )


class TestEnvironmentRecord:
    def test_fields(self):
        record = environment_record()
        assert record["python"]
        assert record["platform"]
        assert "T" in record["timestamp"]


class TestQueryRunRecord:
    def test_serializable(self, workload):
        graph, queries = workload
        run = run_query("PrunedDP++", graph, list(queries)[0])
        record = query_run_to_dict(run)
        text = json.dumps(record)  # must not raise
        parsed = json.loads(text)
        assert parsed["algorithm"] == "PrunedDP++"
        assert parsed["optimal"] is True
        assert parsed["tree"]["edges"] is not None
        assert parsed["time_to_ratio"]["1"] is not None
        assert parsed["stats"]["states_popped"] > 0

    def test_trace_round_trips(self, workload):
        graph, queries = workload
        run = run_query("Basic", graph, list(queries)[0])
        record = query_run_to_dict(run)
        assert len(record["trace"]) == len(run.result.trace)


class TestSuiteRecord:
    def test_structure(self, workload):
        graph, queries = workload
        suite = run_suite(graph, list(queries), ["Basic", "PrunedDP++"])
        record = suite_to_dict(suite, metadata={"figure": "test"})
        assert record["metadata"] == {"figure": "test"}
        assert set(record["algorithms"]) == {"Basic", "PrunedDP++"}
        basic = record["algorithms"]["Basic"]
        assert basic["all_optimal"] is True
        assert len(basic["runs"]) == 2
        json.dumps(record)

    def test_save_and_load(self, workload, tmp_path):
        graph, queries = workload
        suite = run_suite(graph, list(queries), ["PrunedDP++"])
        record = suite_to_dict(suite)
        path = str(tmp_path / "record.json")
        save_json(path, record)
        loaded = load_json(path)
        assert loaded["algorithms"]["PrunedDP++"]["all_optimal"] is True


class TestResultToDict:
    def test_infinity_encoded(self):
        from repro.core.result import GSTResult, SearchStats

        result = GSTResult(
            algorithm="T",
            labels=("a",),
            tree=None,
            weight=float("inf"),
            lower_bound=0.0,
            optimal=False,
            stats=SearchStats(),
        )
        record = result.to_dict()
        assert record["weight"] == "inf"
        json.dumps(record)

    def test_tree_edges_included(self, workload):
        graph, queries = workload
        run = run_query("DPBF", graph, list(queries)[0])
        record = run.result.to_dict()
        assert record["tree"]["edges"]
        total = sum(w for _, _, w in record["tree"]["edges"])
        assert total == pytest.approx(run.result.weight)
