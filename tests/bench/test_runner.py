"""Progressive benchmark runner tests."""

from __future__ import annotations

import pytest

from repro.bench.runner import (
    ALL_ALGORITHMS,
    PROGRESSIVE_ALGORITHMS,
    RATIO_CHECKPOINTS,
    run_query,
    run_suite,
)
from repro.bench.workloads import make_workload


@pytest.fixture(scope="module")
def workload():
    return make_workload(
        "dblp", scale="tiny", knum=3, kwf=8, num_queries=2, seed=1
    )


class TestRunQuery:
    @pytest.mark.parametrize("algorithm", ALL_ALGORITHMS)
    def test_every_algorithm_runs(self, algorithm, workload):
        graph, queries = workload
        labels = list(queries)[0]
        run = run_query(algorithm, graph, labels)
        assert run.algorithm == algorithm
        assert run.result.tree is not None
        assert run.wall_seconds >= 0.0
        assert run.states_popped > 0
        assert run.peak_bytes > 0

    def test_unknown_algorithm(self, workload):
        graph, queries = workload
        with pytest.raises(ValueError):
            run_query("Simplex", graph, list(queries)[0])

    def test_time_to_ratio_keys(self, workload):
        graph, queries = workload
        run = run_query("PrunedDP++", graph, list(queries)[0])
        ttr = run.time_to_ratio
        assert set(ttr) == set(RATIO_CHECKPOINTS)
        # Optimal reached -> every checkpoint reached.
        assert all(v is not None for v in ttr.values())
        # Times to looser ratios are no later than to tighter ones.
        ordered = [ttr[t] for t in sorted(RATIO_CHECKPOINTS, reverse=True)]
        assert ordered == sorted(ordered)


class TestRunSuite:
    def test_suite_aggregation(self, workload):
        graph, queries = workload
        suite = run_suite(graph, list(queries), PROGRESSIVE_ALGORITHMS)
        assert set(suite.algorithms()) == set(PROGRESSIVE_ALGORITHMS)
        for algorithm in PROGRESSIVE_ALGORITHMS:
            assert suite.all_optimal(algorithm)
            assert suite.mean_states(algorithm) > 0
            assert suite.mean_total_seconds(algorithm) >= 0
            assert suite.mean_peak_bytes(algorithm) > 0
            for target in RATIO_CHECKPOINTS:
                assert suite.mean_time_to_ratio(algorithm, target) >= 0

    def test_same_weights_across_exact_algorithms(self, workload):
        graph, queries = workload
        suite = run_suite(graph, list(queries), PROGRESSIVE_ALGORITHMS)
        weights = {
            round(suite.mean_weight(a), 9) for a in PROGRESSIVE_ALGORITHMS
        }
        assert len(weights) == 1
