"""Workload generation tests."""

from __future__ import annotations

import pytest

from repro.bench.workloads import QuerySet, generate_queries, make_workload


class TestGenerateQueries:
    def test_count_and_size(self):
        pool = [f"l{i}" for i in range(10)]
        queries = generate_queries(pool, knum=4, count=7, seed=1)
        assert len(queries) == 7
        for q in queries:
            assert len(q) == 4
            assert len(set(q)) == 4
            assert set(q) <= set(pool)

    def test_deterministic(self):
        pool = [f"l{i}" for i in range(10)]
        assert generate_queries(pool, 3, 5, seed=2) == generate_queries(
            pool, 3, 5, seed=2
        )

    def test_seed_changes_queries(self):
        pool = [f"l{i}" for i in range(10)]
        assert generate_queries(pool, 3, 5, seed=1) != generate_queries(
            pool, 3, 5, seed=9
        )

    def test_knum_exceeds_pool(self):
        with pytest.raises(ValueError):
            generate_queries(["a"], knum=2, count=1)


class TestMakeWorkload:
    def test_workload_shape(self):
        graph, queries = make_workload(
            "dblp", scale="tiny", knum=3, kwf=8, num_queries=2, seed=0
        )
        assert isinstance(queries, QuerySet)
        assert len(queries) == 2
        assert queries.knum == 3
        assert queries.kwf == 8
        for labels in queries:
            assert len(labels) == 3
            for label in labels:
                assert graph.label_frequency(label) > 0

    def test_queries_are_solvable(self):
        from repro import solve_gst

        graph, queries = make_workload(
            "roadusa", scale="tiny", knum=3, kwf=4, num_queries=2, seed=3
        )
        for labels in queries:
            result = solve_gst(graph, labels)
            assert result.optimal
            result.tree.validate(graph, labels)

    def test_deterministic(self):
        _, a = make_workload("imdb", scale="tiny", knum=3, kwf=8, num_queries=3)
        _, b = make_workload("imdb", scale="tiny", knum=3, kwf=8, num_queries=3)
        assert a.queries == b.queries
