"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations


import pytest

from repro import Graph
from repro.graph import generators


@pytest.fixture
def path_graph():
    """a(x) -1- b -2- c(y): the smallest interesting GST instance."""
    g = Graph()
    a = g.add_node(labels=["x"], name="a")
    b = g.add_node(name="b")
    c = g.add_node(labels=["y"], name="c")
    g.add_edge(a, b, 1.0)
    g.add_edge(b, c, 2.0)
    return g


@pytest.fixture
def diamond_graph():
    """Two routes between the labelled endpoints; optimum takes the light one.

        a(x) --1-- m1 --1-- d(y)
        a(x) --3-- m2 --3-- d(y)
    """
    g = Graph()
    a = g.add_node(labels=["x"], name="a")
    m1 = g.add_node(name="m1")
    m2 = g.add_node(name="m2")
    d = g.add_node(labels=["y"], name="d")
    g.add_edge(a, m1, 1.0)
    g.add_edge(m1, d, 1.0)
    g.add_edge(a, m2, 3.0)
    g.add_edge(m2, d, 3.0)
    return g


@pytest.fixture
def star_graph():
    """Hub h connected to three labelled leaves; optimum is the full star."""
    g = Graph()
    h = g.add_node(name="h")
    a = g.add_node(labels=["x"], name="a")
    b = g.add_node(labels=["y"], name="b")
    c = g.add_node(labels=["z"], name="c")
    g.add_edge(h, a, 1.0)
    g.add_edge(h, b, 2.0)
    g.add_edge(h, c, 3.0)
    # Expensive direct rim edges the optimum must avoid.
    g.add_edge(a, b, 10.0)
    g.add_edge(b, c, 10.0)
    return g


@pytest.fixture
def disconnected_graph():
    """Two components; only the second covers both labels."""
    g = Graph()
    a = g.add_node(labels=["x"], name="a0")
    b = g.add_node(name="b0")
    g.add_edge(a, b, 1.0)
    c = g.add_node(labels=["x"], name="c1")
    d = g.add_node(labels=["y"], name="d1")
    e = g.add_node(name="e1")
    g.add_edge(c, e, 2.0)
    g.add_edge(e, d, 3.0)
    return g


def small_random_graph(seed: int, n: int = 10, extra_edges: int = 8, k: int = 3):
    """Connected random graph with k query labels, for cross-checks."""
    return generators.random_graph(
        n,
        n - 1 + extra_edges,
        num_query_labels=k,
        label_frequency=2,
        weight_range=(1.0, 9.0),
        connected=True,
        seed=seed,
    )


@pytest.fixture
def random_graph_factory():
    return small_random_graph
