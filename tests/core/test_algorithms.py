"""End-to-end correctness tests for the four progressive solvers.

The invariants checked here are the paper's claims:

* all four algorithms (and DPBF) return the same, optimal weight;
* returned trees are valid covering trees of exactly that weight;
* every solve is *progressive*: UB non-increasing, LB non-decreasing,
  proven ratio monotone, final ratio 1;
* PrunedDP pops no more states than Basic, PrunedDP++ no more than
  PrunedDP (the pruning/A* theorems at work);
* anytime knobs (epsilon, time_limit, max_states) return sound
  guarantees.
"""

from __future__ import annotations

import pytest

from repro import Graph, GraphError, InfeasibleQueryError
from repro.core import (
    BasicSolver,
    DPBFSolver,
    PrunedDPPlusPlusSolver,
    PrunedDPPlusSolver,
    PrunedDPSolver,
    brute_force_gst,
)
from repro.graph import generators

ALL_PROGRESSIVE = [
    BasicSolver,
    PrunedDPSolver,
    PrunedDPPlusSolver,
    PrunedDPPlusPlusSolver,
]
ALL_EXACT = ALL_PROGRESSIVE + [DPBFSolver]

INF = float("inf")


@pytest.mark.parametrize("solver_cls", ALL_EXACT)
class TestSmallInstances:
    def test_path(self, path_graph, solver_cls):
        result = solver_cls(path_graph, ["x", "y"]).solve()
        assert result.optimal
        assert result.weight == pytest.approx(3.0)
        result.tree.validate(path_graph, ["x", "y"])

    def test_diamond_prefers_light_route(self, diamond_graph, solver_cls):
        result = solver_cls(diamond_graph, ["x", "y"]).solve()
        assert result.weight == pytest.approx(2.0)
        assert frozenset({0, 1, 3}) == result.tree.nodes

    def test_star(self, star_graph, solver_cls):
        result = solver_cls(star_graph, ["x", "y", "z"]).solve()
        assert result.weight == pytest.approx(6.0)
        assert 0 in result.tree.nodes  # must route through the hub

    def test_single_label_is_single_node(self, path_graph, solver_cls):
        result = solver_cls(path_graph, ["x"]).solve()
        assert result.optimal
        assert result.weight == 0.0
        assert result.tree.nodes == frozenset({0})

    def test_all_labels_on_one_node(self, solver_cls):
        g = Graph()
        v = g.add_node(labels=["a", "b", "c"])
        w = g.add_node(labels=["a"])
        g.add_edge(v, w, 4.0)
        result = solver_cls(g, ["a", "b", "c"]).solve()
        assert result.weight == 0.0
        assert result.tree.nodes == frozenset({v})

    def test_two_nodes_sharing_labels(self, solver_cls):
        g = Graph()
        a = g.add_node(labels=["p", "q"])
        b = g.add_node(labels=["q", "r"])
        g.add_edge(a, b, 2.5)
        result = solver_cls(g, ["p", "q", "r"]).solve()
        assert result.weight == pytest.approx(2.5)

    def test_missing_label_raises(self, path_graph, solver_cls):
        with pytest.raises(InfeasibleQueryError):
            solver_cls(path_graph, ["x", "ghost"]).solve()

    def test_split_labels_raise(self, solver_cls):
        g = Graph()
        g.add_node(labels=["x"])
        g.add_node(labels=["y"])
        with pytest.raises(InfeasibleQueryError):
            solver_cls(g, ["x", "y"]).solve()

    def test_disconnected_graph_uses_covering_component(
        self, disconnected_graph, solver_cls
    ):
        result = solver_cls(disconnected_graph, ["x", "y"]).solve()
        assert result.optimal
        assert result.weight == pytest.approx(5.0)
        assert result.tree.nodes == frozenset({2, 3, 4})


class TestCrossAlgorithmAgreement:
    @pytest.mark.parametrize("seed", range(15))
    def test_agree_with_brute_force(self, seed, random_graph_factory):
        g = random_graph_factory(seed, n=10, extra_edges=8, k=3)
        labels = ["q0", "q1", "q2"]
        expected, _ = brute_force_gst(g, labels)
        for solver_cls in ALL_EXACT:
            result = solver_cls(g, labels).solve()
            assert result.optimal, solver_cls.__name__
            assert result.weight == pytest.approx(expected), solver_cls.__name__
            result.tree.validate(g, labels)
            assert result.tree.weight == pytest.approx(result.weight)

    @pytest.mark.parametrize("k", [1, 2, 4, 5])
    def test_agree_across_query_sizes(self, k):
        g = generators.random_graph(
            30, 60, num_query_labels=k, label_frequency=3, seed=99
        )
        labels = [f"q{i}" for i in range(k)]
        weights = set()
        for solver_cls in ALL_EXACT:
            result = solver_cls(g, labels).solve()
            assert result.optimal
            weights.add(round(result.weight, 9))
            result.tree.validate(g, labels)
        assert len(weights) == 1

    def test_no_reopens_observed(self, random_graph_factory):
        """The consistency fix keeps the exactness safety net idle."""
        for seed in range(10):
            g = random_graph_factory(seed, n=12, extra_edges=10, k=4)
            labels = [f"q{i}" for i in range(4)]
            for solver_cls in ALL_PROGRESSIVE:
                result = solver_cls(g, labels).solve()
                assert result.stats.reopened == 0


class TestPruningEffectiveness:
    def test_state_count_ordering(self):
        """Theorems 1-2 + A*: each refinement pops fewer states."""
        g = generators.dblp_like(
            num_papers=150, num_authors=90,
            num_query_labels=12, label_frequency=5, seed=5,
        )
        labels = [f"q{i}" for i in range(4)]
        popped = {}
        for solver_cls in ALL_PROGRESSIVE:
            result = solver_cls(g, labels).solve()
            assert result.optimal
            popped[result.algorithm] = result.stats.states_popped
        assert popped["PrunedDP"] <= popped["Basic"]
        assert popped["PrunedDP+"] <= popped["PrunedDP"]
        assert popped["PrunedDP++"] <= popped["PrunedDP+"]

    def test_basic_prunes_versus_dpbf(self):
        g = generators.dblp_like(
            num_papers=120, num_authors=70,
            num_query_labels=10, label_frequency=5, seed=2,
        )
        labels = [f"q{i}" for i in range(4)]
        basic = BasicSolver(g, labels).solve()
        dpbf = DPBFSolver(g, labels).solve()
        assert basic.weight == pytest.approx(dpbf.weight)
        # Basic's best-solution pruning keeps its live state set at or
        # below DPBF's (the paper's argument for it as baseline).
        assert basic.stats.peak_live_states <= dpbf.stats.peak_live_states


class TestProgressiveProperties:
    @pytest.mark.parametrize("solver_cls", ALL_PROGRESSIVE)
    def test_trace_monotone(self, solver_cls):
        g = generators.random_graph(
            40, 80, num_query_labels=4, label_frequency=4, seed=21
        )
        labels = [f"q{i}" for i in range(4)]
        result = solver_cls(g, labels).solve()
        trace = result.trace
        assert trace, "progressive solvers must emit progress"
        for a, b in zip(trace, trace[1:]):
            assert b.best_weight <= a.best_weight + 1e-9       # UB down
            assert b.lower_bound >= a.lower_bound - 1e-9       # LB up
            assert b.elapsed >= a.elapsed - 1e-9
            if a.ratio != INF:
                assert b.ratio <= a.ratio + 1e-9               # ratio down
        assert trace[-1].ratio == pytest.approx(1.0)
        assert trace[-1].best_weight == pytest.approx(result.weight)

    @pytest.mark.parametrize("solver_cls", ALL_PROGRESSIVE)
    def test_on_progress_callback(self, solver_cls, path_graph):
        events = []
        solver_cls(path_graph, ["x", "y"], on_progress=events.append).solve()
        assert events
        assert events[-1].ratio == pytest.approx(1.0)

    def test_lower_bound_never_exceeds_optimum_during_run(self):
        g = generators.random_graph(
            12, 20, num_query_labels=3, label_frequency=2, seed=4
        )
        labels = ["q0", "q1", "q2"]
        optimum, _ = brute_force_gst(g, labels)
        for solver_cls in ALL_PROGRESSIVE:
            result = solver_cls(g, labels).solve()
            for point in result.trace:
                assert point.lower_bound <= optimum + 1e-9
                if point.best_weight != INF:
                    assert point.best_weight >= optimum - 1e-9


class TestAnytimeKnobs:
    def test_epsilon_guarantee(self):
        g = generators.dblp_like(
            num_papers=150, num_authors=90,
            num_query_labels=12, label_frequency=5, seed=5,
        )
        labels = [f"q{i}" for i in range(5)]
        exact = PrunedDPPlusPlusSolver(g, labels).solve()
        approx = PrunedDPPlusPlusSolver(g, labels, epsilon=0.5).solve()
        assert approx.weight <= (1.5 + 1e-9) * exact.weight
        assert approx.ratio <= 1.5 + 1e-9
        assert approx.stats.states_popped <= exact.stats.states_popped

    def test_epsilon_zero_still_exact(self, star_graph):
        result = PrunedDPPlusPlusSolver(
            star_graph, ["x", "y", "z"], epsilon=0.0
        ).solve()
        assert result.optimal
        assert result.weight == pytest.approx(6.0)

    def test_negative_epsilon_rejected(self, star_graph):
        from repro.core.engine import SearchEngine
        from repro.core.context import QueryContext
        from repro import GSTQuery

        ctx = QueryContext.build(star_graph, GSTQuery(["x", "y"]))
        with pytest.raises(ValueError):
            SearchEngine(ctx, algorithm_name="t", epsilon=-0.1)

    def test_time_limit_returns_sound_answer(self):
        g = generators.dblp_like(
            num_papers=200, num_authors=120,
            num_query_labels=12, label_frequency=6, seed=6,
        )
        labels = [f"q{i}" for i in range(6)]
        result = BasicSolver(g, labels, time_limit=0.02).solve()
        # Whatever it returned is a real covering tree (or nothing yet),
        # and the proven ratio is honest.
        if result.tree is not None:
            result.tree.validate(g, labels)
            exact = PrunedDPPlusPlusSolver(g, labels).solve()
            assert result.weight >= exact.weight - 1e-9
            if result.lower_bound > 0:
                assert result.weight <= result.ratio * result.lower_bound + 1e-6

    def test_max_states_return_mode(self):
        g = generators.random_graph(
            40, 80, num_query_labels=4, label_frequency=4, seed=3
        )
        labels = [f"q{i}" for i in range(4)]
        result = BasicSolver(g, labels, max_states=300).solve()
        assert result.stats.states_popped <= 300 + 256  # check interval slack

    def test_max_states_raise_mode(self):
        from repro import LimitExceededError

        g = generators.random_graph(
            60, 140, num_query_labels=4, label_frequency=5, seed=3
        )
        labels = [f"q{i}" for i in range(4)]
        with pytest.raises(LimitExceededError):
            BasicSolver(
                g, labels, max_states=10, on_limit="raise"
            ).solve()

    def test_invalid_on_limit_rejected(self, star_graph):
        from repro.core.engine import SearchEngine
        from repro.core.context import QueryContext
        from repro import GSTQuery

        ctx = QueryContext.build(star_graph, GSTQuery(["x"]))
        with pytest.raises(ValueError):
            SearchEngine(ctx, algorithm_name="t", on_limit="explode")


class TestWeightValidation:
    def test_pruned_rejects_zero_weights(self):
        g = Graph()
        a = g.add_node(labels=["x"])
        b = g.add_node(labels=["y"])
        g.add_edge(a, b, 0.0)
        with pytest.raises(GraphError):
            PrunedDPSolver(g, ["x", "y"])
        with pytest.raises(GraphError):
            PrunedDPPlusPlusSolver(g, ["x", "y"])

    def test_basic_accepts_zero_weights(self):
        g = Graph()
        a = g.add_node(labels=["x"])
        b = g.add_node(labels=["y"])
        g.add_edge(a, b, 0.0)
        result = BasicSolver(g, ["x", "y"]).solve()
        assert result.weight == 0.0
        assert result.optimal


class TestBoundAblations:
    def test_plusplus_bound_toggles_all_exact(self):
        g = generators.random_graph(
            25, 50, num_query_labels=4, label_frequency=3, seed=8
        )
        labels = [f"q{i}" for i in range(4)]
        reference = DPBFSolver(g, labels).solve().weight
        for flags in [
            dict(use_one_label=True, use_tour1=False, use_tour2=False),
            dict(use_one_label=False, use_tour1=True, use_tour2=False),
            dict(use_one_label=False, use_tour1=False, use_tour2=True),
            dict(use_one_label=True, use_tour1=True, use_tour2=False),
            dict(use_one_label=True, use_tour1=False, use_tour2=True),
        ]:
            result = PrunedDPPlusPlusSolver(g, labels, **flags).solve()
            assert result.optimal, flags
            assert result.weight == pytest.approx(reference), flags
