"""AllPaths (Algorithm 3) route-table tests, with brute-force oracle."""

from __future__ import annotations


import pytest

from repro import Graph, QueryError
from repro.core.allpaths import MAX_ALLPATHS_LABELS, RouteTables
from repro.core.bruteforce import brute_force_route
from repro.core.state import iter_bits
from repro.graph import generators

INF = float("inf")


def groups_of(graph, k):
    return [list(graph.nodes_with_label(f"q{i}")) for i in range(k)]


class TestSmallCases:
    def test_singleton_route_is_zero(self):
        g = generators.random_graph(8, 12, num_query_labels=2, seed=0)
        tables = RouteTables.build(g, groups_of(g, 2))
        assert tables.route(0, 0, 0b01) == 0.0
        assert tables.route(1, 1, 0b10) == 0.0
        assert tables.tour(0, 0b01) == 0.0

    def test_pair_route_is_virtual_distance(self):
        g = generators.random_graph(10, 18, num_query_labels=3, seed=1)
        tables = RouteTables.build(g, groups_of(g, 3))
        for i in range(3):
            for j in range(3):
                if i == j:
                    continue
                mask = (1 << i) | (1 << j)
                assert tables.route(i, j, mask) == pytest.approx(
                    tables.virtual_distance[i][j]
                )

    def test_route_requires_start_in_mask(self):
        g = generators.random_graph(8, 12, num_query_labels=2, seed=0)
        tables = RouteTables.build(g, groups_of(g, 2))
        with pytest.raises(KeyError):
            tables.route(0, 1, 0b10)
        with pytest.raises(KeyError):
            tables.tour(1, 0b01)

    def test_too_many_labels_rejected(self):
        g = generators.random_graph(
            40, 80, num_query_labels=MAX_ALLPATHS_LABELS + 1, label_frequency=2, seed=0
        )
        with pytest.raises(QueryError):
            RouteTables.build(g, groups_of(g, MAX_ALLPATHS_LABELS + 1))

    def test_num_entries_positive(self):
        g = generators.random_graph(10, 18, num_query_labels=3, seed=2)
        tables = RouteTables.build(g, groups_of(g, 3))
        assert tables.num_entries > 0
        assert tables.build_seconds >= 0.0


class TestAgainstBruteForce:
    @pytest.mark.parametrize("seed", range(6))
    def test_full_table_matches_permutation_enumeration(self, seed):
        k = 4
        g = generators.random_graph(
            14, 26, num_query_labels=k, label_frequency=2, seed=seed
        )
        tables = RouteTables.build(g, groups_of(g, k))
        dist = tables.virtual_distance
        full = (1 << k) - 1
        for mask in range(1, full + 1):
            bits = list(iter_bits(mask))
            for i in bits:
                for j in bits:
                    if i == j and len(bits) > 1:
                        continue
                    expected = brute_force_route(dist, i, j, bits)
                    got = tables.route(i, j, mask)
                    assert got == pytest.approx(expected), (mask, i, j)

    def test_tour_is_min_over_endpoints(self):
        k = 4
        g = generators.random_graph(
            14, 26, num_query_labels=k, label_frequency=2, seed=11
        )
        tables = RouteTables.build(g, groups_of(g, k))
        full = (1 << k) - 1
        for mask in range(1, full + 1):
            bits = list(iter_bits(mask))
            for i in bits:
                expected = min(tables.route_row(i, mask)[j] for j in bits)
                assert tables.tour(i, mask) == pytest.approx(expected)


class TestTriangleInequalityStructure:
    def test_route_monotone_in_mask(self):
        """Adding a required stop can never shorten the route."""
        k = 4
        g = generators.random_graph(
            16, 30, num_query_labels=k, label_frequency=2, seed=3
        )
        tables = RouteTables.build(g, groups_of(g, k))
        full = (1 << k) - 1
        for mask in range(1, full + 1):
            bits = list(iter_bits(mask))
            if len(bits) < 2:
                continue
            for i in bits:
                for extra in range(k):
                    if mask >> extra & 1:
                        continue
                    bigger = mask | (1 << extra)
                    assert tables.tour(i, bigger) >= tables.tour(i, mask) - 1e-9

    def test_disconnected_labels_give_inf(self):
        g = Graph()
        a = g.add_node(labels=["q0"])
        b = g.add_node(labels=["q1"])
        c = g.add_node(labels=["q2"])
        g.add_edge(a, b, 1.0)  # q2 disconnected
        tables = RouteTables.build(g, [[a], [b], [c]])
        assert tables.route(0, 1, 0b011) == 1.0
        assert tables.route(0, 2, 0b101) == INF
        assert tables.tour(0, 0b111) == INF
