"""Lower-bound admissibility and consistency tests (Section 4.1).

The central property (Lemmas 1-4): for every state ``(v, X)``,
``π(v, X) <= f*_T(v, X̄)`` — the optimal weight of a tree rooted at ``v``
covering the missing labels.  We compute that oracle by brute force on
small graphs: force ``v`` into the tree via a unique extra label.
"""

from __future__ import annotations

import pytest

from repro import GSTQuery
from repro.core.allpaths import RouteTables
from repro.core.bounds import LowerBounds
from repro.core.bruteforce import brute_force_gst
from repro.core.context import QueryContext
from repro.core.state import iter_bits
from repro.graph import generators

INF = float("inf")


def make_bounds(graph, labels, **kwargs):
    query = GSTQuery(labels)
    ctx = QueryContext.build(graph, query)
    routes = RouteTables.build(graph, ctx.groups)
    return ctx, LowerBounds(ctx, routes, **kwargs)


def rooted_optimum(graph, root, labels):
    """f*_T(root, labels): cheapest tree containing root covering labels."""
    marked = graph.copy()
    marked.add_labels(root, ["__root__"])
    weight, _ = brute_force_gst(marked, list(labels) + ["__root__"])
    return weight


class TestAdmissibility:
    @pytest.mark.parametrize("seed", range(6))
    def test_pi_below_rooted_optimum(self, seed):
        k = 3
        g = generators.random_graph(
            9, 14, num_query_labels=k, label_frequency=2, seed=seed
        )
        labels = [f"q{i}" for i in range(k)]
        ctx, bounds = make_bounds(g, labels)
        full = ctx.full_mask
        for v in g.nodes():
            for covered in range(full):  # every non-goal mask
                missing = full & ~covered
                missing_labels = [
                    labels[i] for i in iter_bits(missing)
                ]
                oracle = rooted_optimum(g, v, missing_labels)
                pi = bounds.pi(v, covered)
                assert pi <= oracle + 1e-9, (seed, v, covered, pi, oracle)

    def test_goal_state_bound_is_zero(self):
        g = generators.random_graph(8, 12, num_query_labels=2, seed=0)
        ctx, bounds = make_bounds(g, ["q0", "q1"])
        for v in g.nodes():
            assert bounds.pi(v, ctx.full_mask) == 0.0

    def test_individual_bounds_admissible(self):
        """Each bound alone (π₁ / π_t1 / π_t2) is admissible too."""
        k = 3
        g = generators.random_graph(
            8, 13, num_query_labels=k, label_frequency=2, seed=42
        )
        labels = [f"q{i}" for i in range(k)]
        query = GSTQuery(labels)
        ctx = QueryContext.build(g, query)
        routes = RouteTables.build(g, ctx.groups)
        variants = [
            LowerBounds(ctx, routes, use_one_label=True, use_tour1=False, use_tour2=False),
            LowerBounds(ctx, routes, use_one_label=False, use_tour1=True, use_tour2=False),
            LowerBounds(ctx, routes, use_one_label=False, use_tour1=False, use_tour2=True),
        ]
        full = ctx.full_mask
        for v in g.nodes():
            for covered in range(full):
                missing = full & ~covered
                missing_labels = [labels[i] for i in iter_bits(missing)]
                oracle = rooted_optimum(g, v, missing_labels)
                for variant in variants:
                    assert variant.pi(v, covered) <= oracle + 1e-9

    def test_combined_dominates_components(self):
        g = generators.random_graph(10, 18, num_query_labels=3, seed=7)
        labels = ["q0", "q1", "q2"]
        query = GSTQuery(labels)
        ctx = QueryContext.build(g, query)
        routes = RouteTables.build(g, ctx.groups)
        combined = LowerBounds(ctx, routes)
        only_one = LowerBounds(
            ctx, routes, use_one_label=True, use_tour1=False, use_tour2=False
        )
        for v in g.nodes():
            for covered in range(ctx.full_mask):
                assert combined.pi(v, covered) >= only_one.pi(v, covered) - 1e-12


class TestOneLabelBound:
    def test_equals_max_virtual_distance(self, star_graph):
        ctx = QueryContext.build(star_graph, GSTQuery(["x", "y", "z"]))
        bounds = LowerBounds(
            ctx,
            routes=None,
            use_one_label=True,
            use_tour1=False,
            use_tour2=False,
        )
        # From the hub (node 0), nothing covered: max dist = 3 (label z).
        assert bounds.pi(0, 0) == 3.0
        # With z covered, max over x,y = 2.
        assert bounds.pi(0, 0b100) == 2.0

    def test_requires_routes_for_tour_bounds(self, star_graph):
        ctx = QueryContext.build(star_graph, GSTQuery(["x", "y"]))
        with pytest.raises(ValueError):
            LowerBounds(ctx, routes=None, use_tour1=True)


class TestConsistency:
    @pytest.mark.parametrize("seed", range(4))
    def test_one_label_and_tour1_consistent_over_edges(self, seed):
        """Lemma 5(i)/6(i): π(u,X) + w(v,u) >= π(v,X)."""
        g = generators.random_graph(
            12, 22, num_query_labels=3, label_frequency=2, seed=seed
        )
        labels = ["q0", "q1", "q2"]
        query = GSTQuery(labels)
        ctx = QueryContext.build(g, query)
        routes = RouteTables.build(g, ctx.groups)
        bounds = LowerBounds(
            ctx, routes, use_one_label=True, use_tour1=True, use_tour2=False
        )
        for covered in range(ctx.full_mask):
            for u, v, w in g.edges():
                pu = bounds.pi(u, covered)
                pv = bounds.pi(v, covered)
                assert pu + w >= pv - 1e-9
                assert pv + w >= pu - 1e-9

    def test_raise_to_monotone_cache(self):
        g = generators.random_graph(8, 12, num_query_labels=2, seed=0)
        ctx, bounds = make_bounds(g, ["q0", "q1"])
        base = bounds.pi(0, 0)
        raised = bounds.raise_to(0, 0, base + 5.0)
        assert raised == base + 5.0
        assert bounds.pi(0, 0) == base + 5.0
        # Lower candidates never lower the cache.
        assert bounds.raise_to(0, 0, base) == base + 5.0

    def test_raise_to_goal_state_stays_zero(self):
        g = generators.random_graph(8, 12, num_query_labels=2, seed=0)
        ctx, bounds = make_bounds(g, ["q0", "q1"])
        assert bounds.raise_to(0, ctx.full_mask, 99.0) == 0.0


class TestMemoBounding:
    """The (node, mask) memo bound and its cache_info telemetry."""

    def test_cache_info_counts(self):
        g = generators.random_graph(10, 16, num_query_labels=2, seed=3)
        _, bounds = make_bounds(g, ["q0", "q1"])
        bounds.pi(0, 0)
        bounds.pi(0, 0)
        bounds.pi(1, 0)
        info = bounds.cache_info()
        assert info["size"] == 2
        assert info["hits"] == 1
        assert info["misses"] == 2
        assert info["evictions"] == 0
        assert info["max_entries"] is None

    def test_max_entries_bounds_memo(self):
        g = generators.random_graph(10, 16, num_query_labels=2, seed=3)
        _, bounds = make_bounds(g, ["q0", "q1"], max_entries=4)
        for v in range(10):
            bounds.pi(v, 0)
        info = bounds.cache_info()
        assert info["size"] <= 4
        assert info["evictions"] == 10 - 4

    def test_max_entries_validated(self):
        g = generators.random_graph(8, 12, num_query_labels=2, seed=0)
        with pytest.raises(ValueError):
            make_bounds(g, ["q0", "q1"], max_entries=0)

    def test_bounded_memo_still_admissible(self):
        """Eviction must only re-derive values, never change them."""
        g = generators.random_graph(
            9, 14, num_query_labels=3, label_frequency=2, seed=2
        )
        labels = ["q0", "q1", "q2"]
        ctx, unbounded = make_bounds(g, labels)
        _, bounded = make_bounds(g, labels, max_entries=2)
        full = ctx.full_mask
        for v in g.nodes():
            for covered in range(full):
                assert bounded.pi(v, covered) == unbounded.pi(v, covered)

    def test_solver_threads_bound_memo_limit(self):
        from repro.core import PrunedDPPlusPlusSolver

        g = generators.random_graph(
            20, 40, num_query_labels=3, label_frequency=3, seed=6
        )
        solver = PrunedDPPlusPlusSolver(
            g, ["q0", "q1", "q2"], bound_memo_limit=16
        )
        result = solver.solve()
        baseline = PrunedDPPlusPlusSolver(g, ["q0", "q1", "q2"]).solve()
        assert result.weight == pytest.approx(baseline.weight)
        assert result.optimal
