"""Tests for the brute-force oracle itself (hand-verified instances)."""

from __future__ import annotations

import pytest

from repro import Graph
from repro.core.bruteforce import (
    MAX_BRUTE_FORCE_NODES,
    brute_force_gst,
    brute_force_route,
)


class TestBruteForceGST:
    def test_path(self, path_graph):
        weight, tree = brute_force_gst(path_graph, ["x", "y"])
        assert weight == pytest.approx(3.0)
        tree.validate(path_graph, ["x", "y"])

    def test_single_node_solution(self):
        g = Graph()
        v = g.add_node(labels=["a", "b"])
        w = g.add_node()
        g.add_edge(v, w, 1.0)
        weight, tree = brute_force_gst(g, ["a", "b"])
        assert weight == 0.0
        assert tree.nodes == frozenset({v})

    def test_steiner_node_used(self, star_graph):
        weight, tree = brute_force_gst(star_graph, ["x", "y", "z"])
        assert weight == pytest.approx(6.0)
        assert 0 in tree.nodes  # hub is a Steiner (non-terminal) node

    def test_infeasible_returns_inf(self):
        g = Graph()
        g.add_node(labels=["x"])
        g.add_node(labels=["y"])
        weight, tree = brute_force_gst(g, ["x", "y"])
        assert weight == float("inf")
        assert tree is None

    def test_group_choice_matters(self):
        """Two nodes carry the label; the cheaper one must be chosen."""
        g = Graph()
        a = g.add_node(labels=["p"])
        b1 = g.add_node(labels=["t"])
        b2 = g.add_node(labels=["t"])
        g.add_edge(a, b1, 10.0)
        g.add_edge(a, b2, 1.0)
        weight, tree = brute_force_gst(g, ["p", "t"])
        assert weight == 1.0
        assert b2 in tree.nodes and b1 not in tree.nodes

    def test_size_cap(self):
        g = Graph()
        for _ in range(MAX_BRUTE_FORCE_NODES + 1):
            g.add_node(labels=["a"])
        with pytest.raises(ValueError):
            brute_force_gst(g, ["a"])


class TestBruteForceRoute:
    def test_direct_pair(self):
        dist = [[0.0, 3.0], [3.0, 0.0]]
        assert brute_force_route(dist, 0, 1, [0, 1]) == 3.0

    def test_singleton(self):
        dist = [[0.0]]
        assert brute_force_route(dist, 0, 0, [0]) == 0.0

    def test_three_stop_ordering(self):
        # 0 -> 2 -> 1 cheaper than 0 -> 1 ... wait: route must END at 1.
        dist = [
            [0.0, 10.0, 1.0],
            [10.0, 0.0, 1.0],
            [1.0, 1.0, 0.0],
        ]
        # 0 ->2 (1) -> 1 (1) = 2 vs forced orders through all of {0,1,2}.
        assert brute_force_route(dist, 0, 1, [0, 1, 2]) == 2.0
